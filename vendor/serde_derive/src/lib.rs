//! Offline stand-in for `serde_derive`.
//!
//! Generates real field-by-field `Serialize`/`Deserialize`
//! implementations for the companion vendored `serde` crate (whose
//! traits are `to_json(&self) -> Value` / `from_json(&Value)`), using
//! hand-rolled token parsing instead of `syn`/`quote` so the crate has
//! zero dependencies. Supported shapes — the ones this workspace uses:
//!
//! - structs with named fields → JSON objects;
//! - newtype (1-field tuple) structs → transparent, like upstream serde;
//! - multi-field tuple structs → JSON arrays;
//! - unit structs → `null`;
//! - enums, externally tagged: unit variants → `"Name"`, newtype
//!   variants → `{"Name": value}`, tuple variants → `{"Name": [..]}`,
//!   struct variants → `{"Name": {..}}`.
//!
//! Generic types are rejected with a `compile_error!`. `#[serde(...)]`
//! attributes are accepted and ignored; the only one appearing in the
//! workspace is `#[serde(transparent)]` on newtype structs, whose
//! behaviour is the default here anyway.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored `to_json` flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derives `serde::Deserialize` (the vendored `from_json` flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy)]
enum Which {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let code = match parse_type(input) {
        Ok(def) => match which {
            Which::Serialize => gen_serialize(&def),
            Which::Deserialize => gen_deserialize(&def),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive generated invalid code: {e}\");")
            .parse()
            .unwrap()
    })
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct TypeDef {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Struct with named fields.
    Named(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields (1 = newtype).
    Tuple(usize),
    /// Struct variant with named fields.
    Named(Vec<String>),
}

fn parse_type(input: TokenStream) -> Result<TypeDef, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    pos += 1;

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the vendored serde derive does not support generic types ({name})"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(TypeDef {
                name,
                kind: Kind::Named(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(TypeDef {
                name,
                kind: Kind::Tuple(count_tuple_fields(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(TypeDef {
                name,
                kind: Kind::Unit,
            }),
            other => Err(format!("unsupported struct body for {name}: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(TypeDef {
                name,
                kind: Kind::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("expected enum body for {name}, got {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, got `{other}`")),
    }
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // `#` and the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Extracts the field names of a named-field body (`a: T, b: U, ...`).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after field {name}, got {other:?}")),
        }
        skip_type(&tokens, &mut pos);
        fields.push(name);
        // skip_type stops at (and we consume) the separating comma
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(fields)
}

/// Advances past one type expression, stopping at a top-level `,`.
/// Tracks `<`/`>` nesting; bracketed constructs arrive as single
/// `Group` tokens so only angle brackets need counting.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if angle_depth == 0 => return,
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Counts the fields of a tuple body (`T, U, ...`). Top-level commas
/// delimit fields; a trailing comma does not add one.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        count += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_json(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Kind::Tuple(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::String(::std::string::String::from({vname:?})),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let inner = if *n == 1 {
                "::serde::Serialize::to_json(f0)".to_string()
            } else {
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_json({b})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Object(vec![\
                 (::std::string::String::from({vname:?}), {inner})]),",
                binds.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_json({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {} }} => ::serde::Value::Object(vec![\
                 (::std::string::String::from({vname:?}), \
                 ::serde::Value::Object(vec![{}]))]),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json(\
                         v.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "if !matches!(v, ::serde::Value::Object(_)) {{\n\
                     return ::core::result::Result::Err(::serde::de::Error::msg(\
                         format!(\"expected object for {name}, got {{v:?}}\")));\n\
                 }}\n\
                 ::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Tuple(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_json(v)?))")
        }
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} =>\n\
                         ::core::result::Result::Ok({name}({})),\n\
                     other => ::core::result::Result::Err(::serde::de::Error::msg(\
                         format!(\"expected {n}-element array for {name}, got {{other:?}}\"))),\n\
                 }}",
                items.join(", ")
            )
        }
        Kind::Unit => format!(
            "match v {{\n\
                 ::serde::Value::Null => ::core::result::Result::Ok({name}),\n\
                 other => ::core::result::Result::Err(::serde::de::Error::msg(\
                     format!(\"expected null for {name}, got {{other:?}}\"))),\n\
             }}"
        ),
        Kind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json(v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::de::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "{vname:?} => ::core::result::Result::Ok({name}::{vname}),",
                vname = v.name
            )
        })
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| de_tagged_arm(name, v))
        .collect();
    format!(
        "match v {{\n\
             ::serde::Value::String(tag) => match tag.as_str() {{\n\
                 {}\n\
                 _ => ::core::result::Result::Err(::serde::de::Error::msg(\
                     format!(\"unknown unit variant {{tag}} for {name}\"))),\n\
             }},\n\
             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, value) = &entries[0];\n\
                 let _ = value;\n\
                 match tag.as_str() {{\n\
                     {}\n\
                     _ => ::core::result::Result::Err(::serde::de::Error::msg(\
                         format!(\"unknown variant {{tag}} for {name}\"))),\n\
                 }}\n\
             }}\n\
             other => ::core::result::Result::Err(::serde::de::Error::msg(\
                 format!(\"expected enum value for {name}, got {{other:?}}\"))),\n\
         }}",
        unit_arms.join("\n"),
        tagged_arms.join("\n")
    )
}

fn de_tagged_arm(name: &str, v: &Variant) -> Option<String> {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => None,
        VariantKind::Tuple(1) => Some(format!(
            "{vname:?} => ::core::result::Result::Ok(\
             {name}::{vname}(::serde::Deserialize::from_json(value)?)),"
        )),
        VariantKind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json(&items[{i}])?"))
                .collect();
            Some(format!(
                "{vname:?} => match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} =>\n\
                         ::core::result::Result::Ok({name}::{vname}({})),\n\
                     other => ::core::result::Result::Err(::serde::de::Error::msg(\
                         format!(\"expected {n}-element array for {name}::{vname}, \
                         got {{other:?}}\"))),\n\
                 }},",
                items.join(", ")
            ))
        }
        VariantKind::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json(\
                         value.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            Some(format!(
                "{vname:?} => ::core::result::Result::Ok({name}::{vname} {{ {} }}),",
                inits.join(", ")
            ))
        }
    }
}
