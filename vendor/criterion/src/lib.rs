//! Offline stand-in for `criterion`.
//!
//! Provides the group/bencher API subset the workspace's benches use,
//! measuring wall-clock time with `std::time::Instant` and printing a
//! per-benchmark summary line (median / mean / spread over samples).
//! There is no statistical regression analysis or HTML report. The
//! harness honours the arguments cargo passes to `harness = false`
//! targets: `--test` (run every benchmark body once, fast) and a
//! positional substring filter.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark, split across samples.
const TARGET_TOTAL: Duration = Duration::from_millis(600);
/// Warm-up time before sampling starts.
const WARM_UP: Duration = Duration::from_millis(80);

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    /// `--test` mode: run each body once and skip measurement.
    test_mode: bool,
    /// Positional substring filter on benchmark IDs.
    filter: Option<String>,
    benchmarks_run: usize,
}

impl Criterion {
    /// Builds a harness from the process arguments (`--test`, `--bench`,
    /// an optional positional filter; other flags are ignored).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                "--sample-size" | "--warm-up-time" | "--measurement-time" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') => {
                    c.filter = Some(other.to_string());
                }
                _ => {}
            }
        }
        c
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            header_printed: false,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }

    /// Prints the closing line after all groups ran.
    pub fn final_summary(&self) {
        if self.test_mode {
            println!(
                "criterion-compat: {} benchmarks checked",
                self.benchmarks_run
            );
        }
    }

    fn wants(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An ID made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    header_printed: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        if !self.criterion.wants(&full) {
            return self;
        }
        if !self.header_printed && !self.name.is_empty() {
            println!("{}", self.name);
            self.header_printed = true;
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut bencher);
        self.criterion.benchmarks_run += 1;
        match bencher.report {
            Some(report) => println!("  {full:<40} {report}"),
            None if self.criterion.test_mode => println!("  {full:<40} ok (test mode)"),
            None => println!("  {full:<40} (no measurement: b.iter never called)"),
        }
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Measures one benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    report: Option<String>,
}

impl Bencher {
    /// Times the routine, amortizing over enough iterations per sample
    /// for `Instant` resolution not to dominate.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }

        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let per_sample = TARGET_TOTAL.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / est.max(1e-9)).round() as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let spread = samples[samples.len() - 1] - samples[0];

        let mut report = String::new();
        let _ = write!(
            report,
            "median {} mean {} spread {} ({} samples x {} iters)",
            format_time(median),
            format_time(mean),
            format_time(spread),
            self.sample_size,
            iters
        );
        self.report = Some(report);
    }
}

/// Renders a duration in engineering units.
fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into a group callable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
            benchmarks_run: 0,
        };
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10);
            group.bench_function("a", |b| b.iter(|| calls += 1));
            group.bench_with_input(BenchmarkId::new("b", 7), &3usize, |b, &n| {
                b.iter(|| calls += n)
            });
            group.finish();
        }
        assert_eq!(calls, 4);
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("match-me".into()),
            benchmarks_run: 0,
        };
        let mut ran = false;
        let mut group = c.benchmark_group("g");
        group.bench_function("skipped", |b| b.iter(|| ran = true));
        group.bench_function("match-me", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn measurement_produces_a_report() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 2,
            report: None,
        };
        b.iter(|| black_box(1 + 1));
        let report = b.report.expect("report");
        assert!(report.contains("median"), "{report}");
    }
}
