//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors
//! a minimal-but-functional replacement: serialization goes through a
//! concrete JSON [`Value`] tree instead of serde's zero-copy visitor
//! machinery. [`Serialize`]/[`Deserialize`] are single-method traits,
//! and the companion `serde_derive` proc-macros generate real
//! field-by-field implementations, so `#[derive(Serialize,
//! Deserialize)]` types round-trip faithfully (externally tagged enums,
//! transparent newtypes — the subset this workspace uses).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A JSON document: the serialization data model of this stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (integers are preserved exactly up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Value;
}

/// Deserialization errors (also reused by `serde_json`).
pub mod de {
    use std::fmt;

    /// A deserialization failure with a human-readable message.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl Error {
        /// Creates an error from a message.
        pub fn msg(m: impl Into<String>) -> Self {
            Error(m.into())
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "deserialization error: {}", self.0)
        }
    }

    impl std::error::Error for Error {}
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a JSON value.
    fn from_json(v: &Value) -> Result<Self, de::Error>;
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! serde_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(de::Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}
serde_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(de::Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string. Only sound for long-lived configuration
    /// data (tables of static labels deserialized at most a handful of
    /// times), which is the only way the workspace uses it.
    fn from_json(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(de::Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(de::Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(inner) => inner.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

macro_rules! serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(de::Error::msg(format!(
                                "expected {expected}-tuple, got {} items",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_json(&items[$idx])?,)+))
                    }
                    other => Err(de::Error::msg(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}
serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(de::Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self, None, 0)
    }
}

/// Renders a value as JSON text; `indent = Some(width)` pretty-prints.
pub fn write_value(
    out: &mut impl fmt::Write,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> fmt::Result {
    let (open_sep, item_sep, close_sep) = match indent {
        Some(w) => (
            format!("\n{}", " ".repeat(w * (depth + 1))),
            format!(",\n{}", " ".repeat(w * (depth + 1))),
            format!("\n{}", " ".repeat(w * depth)),
        ),
        None => (String::new(), ",".to_string(), String::new()),
    };
    match value {
        Value::Null => out.write_str("null"),
        Value::Bool(b) => write!(out, "{b}"),
        Value::Number(n) => {
            if !n.is_finite() {
                out.write_str("null")
            } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                write!(out, "{}", *n as i64)
            } else {
                write!(out, "{n}")
            }
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                return out.write_str("[]");
            }
            out.write_str("[")?;
            out.write_str(&open_sep)?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_str(&item_sep)?;
                }
                write_value(out, item, indent, depth + 1)?;
            }
            out.write_str(&close_sep)?;
            out.write_str("]")
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                return out.write_str("{}");
            }
            out.write_str("{")?;
            out.write_str(&open_sep)?;
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.write_str(&item_sep)?;
                }
                write_json_string(out, k)?;
                out.write_str(": ")?;
                write_value(out, v, indent, depth + 1)?;
            }
            out.write_str(&close_sep)?;
            out.write_str("}")
        }
    }
}

fn write_json_string(out: &mut impl fmt::Write, s: &str) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_impls_round_trip() {
        let original: (Vec<f64>, Option<String>, bool) =
            (vec![1.5, -2.0], Some("hi \"there\"".into()), true);
        let v = original.to_json();
        let back = <(Vec<f64>, Option<String>, bool)>::from_json(&v).unwrap();
        assert_eq!(original, back);
    }

    #[test]
    fn rendering_is_json() {
        let v = Value::Object(vec![
            ("x".into(), Value::Number(1.0)),
            (
                "y".into(),
                Value::Array(vec![Value::Null, Value::Bool(false)]),
            ),
        ]);
        assert_eq!(v.to_string(), r#"{"x": 1,"y": [null,false]}"#);
    }

    #[test]
    fn f32_values_survive_the_f64_detour() {
        for bits in [0x3f80_0001u32, 0x0000_0001, 0x7f7f_ffff, 0xc248_0a3d] {
            let x = f32::from_bits(bits);
            let text = format!("{}", x.to_json());
            let parsed: f64 = text.parse().unwrap();
            assert_eq!(parsed as f32, x, "bits {bits:#x} text {text}");
        }
    }
}
