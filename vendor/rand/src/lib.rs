//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container has no crates.io access, so the workspace vendors
//! the slice of `rand` it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `random` / `random_range` / `random_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ (not the
//! upstream ChaCha12), which is deterministic, splittable via SplitMix64
//! seeding, and easily good enough for Monte-Carlo sampling and test
//! data generation; nothing here is cryptographic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A source of random `u64`s. Object-safe core of every generator.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's full standard domain
    /// (`[0, 1)` for floats, all values for integers, fair coin for
    /// `bool`).
    fn random<T: StandardUniform>(&mut self) -> T {
        // Reborrow through `&mut Self`, which is always `Sized`, so the
        // method works for `R: Rng + ?Sized` callers.
        let mut rng = self;
        T::sample_standard(&mut rng)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut rng = self;
        range.sample_single(&mut rng)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let mut rng = self;
        f64::sample_standard(&mut rng) < p
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: expands a 64-bit seed into decorrelated state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable from a generator's "standard" distribution.
pub trait StandardUniform {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types with uniform sampling over half-open and inclusive intervals.
///
/// The single blanket [`SampleRange`] impl below (rather than one impl
/// per concrete type) matters for inference: it forces
/// `Range<A>: SampleRange<B>` to unify `A == B`, which is how upstream
/// rand lets `x + rng.random_range(-0.3..0.3)` pick up the float width
/// from surrounding context.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range");
                let u = <$t as StandardUniform>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                if v < hi { v } else { lo }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty range");
                let u = <$t as StandardUniform>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&x));
            let n: usize = rng.random_range(3..9);
            assert!((3..9).contains(&n));
            let m: u8 = rng.random_range(2..=8);
            assert!((2..=8).contains(&m));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..4096).map(|_| rng.random()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }
}
