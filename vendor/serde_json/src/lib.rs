//! Offline stand-in for `serde_json`.
//!
//! Parses and prints real JSON text over the vendored `serde` crate's
//! [`Value`] data model. Numbers are `f64` (integers exact to 2^53,
//! which covers every count and f32-promoted weight this workspace
//! serializes); floats print via Rust's shortest-round-trip formatting,
//! so finite values survive a text round trip bit-for-bit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use serde::Value;

use serde::{write_value, Deserialize, Serialize};
use std::fmt;
use std::io;

/// A serialization or parse failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.0)
    }
}

impl From<Error> for io::Error {
    fn from(e: Error) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_json(value)?)
}

/// Serializes to compact JSON text.
///
/// # Errors
///
/// Infallible in practice (string formatting cannot fail); the
/// `Result` mirrors the upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), None, 0).map_err(|e| Error(e.to_string()))?;
    Ok(out)
}

/// Serializes to 2-space-indented JSON text.
///
/// # Errors
///
/// Infallible in practice; the `Result` mirrors the upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), Some(2), 0).map_err(|e| Error(e.to_string()))?;
    Ok(out)
}

/// Serializes compact JSON into a writer.
///
/// # Errors
///
/// Returns I/O errors from the writer.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

/// Parses a typed value from JSON text.
///
/// # Errors
///
/// Returns parse errors and shape mismatches.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_json(&value)?)
}

/// Parses a typed value from a reader.
///
/// # Errors
///
/// Returns I/O errors, parse errors, and shape mismatches.
pub fn from_reader<R: io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error(e.to_string()))?;
    from_str(&text)
}

/// Builds a [`Value`] from a JSON-ish literal. Supports `null`, flat
/// and nested brace objects with literal keys, bracket arrays, and
/// arbitrary serializable expressions as scalar values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::json!($val)) ),*
        ])
    };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' at byte {}, found {other:?}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at byte {}, found {other:?}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), None | Some(b'"') | Some(b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(Error(format!(
                                "invalid escape \\{} at byte {}",
                                other as char, self.pos
                            )))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let text = std::str::from_utf8(slice).map_err(|e| Error(e.to_string()))?;
        let code = u32::from_str_radix(text, 16)
            .map_err(|_| Error(format!("invalid \\u escape {text:?}")))?;
        self.pos += 4;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let hi = self.hex4()?;
        // Surrogate pair: a second \uXXXX must follow.
        if (0xD800..0xDC00).contains(&hi) {
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.expect(b'u')?;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(code)
                        .ok_or_else(|| Error("invalid surrogate pair".into()));
                }
            }
            return Err(Error("unpaired surrogate".into()));
        }
        char::from_u32(hi).ok_or_else(|| Error(format!("invalid code point {hi:#x}")))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number {text:?} at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v: Value =
            from_str(r#"{"a": [1, -2.5e3, null, true], "b": {"c": "x\ny é 😀"}}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Array(vec![
                Value::Number(1.0),
                Value::Number(-2500.0),
                Value::Null,
                Value::Bool(true),
            ]))
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")),
            Some(&Value::String("x\ny é 😀".to_string()))
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn text_round_trip_is_exact() {
        let original = Value::Object(vec![
            ("ints".into(), Value::Array(vec![Value::Number(42.0)])),
            ("float".into(), Value::Number(0.1 + 0.2)),
            ("text".into(), Value::String("quote \" slash \\".into())),
        ]);
        let compact = to_string(&original).unwrap();
        let pretty = to_string_pretty(&original).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), original);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), original);
        assert!(pretty.contains("\"ints\": [\n"));
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"x": 1, "nested": {"y": [1, 2]}, "s": "hi"});
        assert_eq!(v.get("x"), Some(&Value::Number(1.0)));
        assert_eq!(
            v.get("nested").and_then(|n| n.get("y")),
            Some(&Value::Array(vec![Value::Number(1.0), Value::Number(2.0)]))
        );
        assert!(to_string_pretty(&json!({"x": 1}))
            .unwrap()
            .contains("\"x\": 1"));
    }
}
