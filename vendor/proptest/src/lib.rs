//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range and tuple
//! strategies, `prop::collection::vec`, `prop_flat_map`/`prop_map`, and
//! the `prop_assert*` macros. Cases are drawn from a fixed-seed
//! deterministic RNG, so failures reproduce across runs. There is no
//! shrinking — a failing case reports its inputs via the assertion
//! message instead of minimizing them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

/// A failed property case (carried by `prop_assert*` to the runner).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration and RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (`cases` is the only knob used here).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic case RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// A generator with a fixed, reproducible stream per test name.
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the test name decorrelates the per-test
            // streams while staying reproducible across runs.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

/// Strategies: composable random value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Uses a generated value to pick a dependent strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Types with a canonical whole-domain strategy, for
    /// [`any`](crate::arbitrary::any).
    pub trait ArbitraryValue {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_via_random {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.0.random()
                }
            }
        )*};
    }
    arbitrary_via_random!(bool, u8, u16, u32, u64, i8, i16, i32, i64);

    /// See [`any`](crate::arbitrary::any).
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }
    range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An exact or ranged element count for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// A strategy yielding `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Whole-domain strategies (`any::<bool>()`).
pub mod arbitrary {
    use crate::strategy::{Any, ArbitraryValue};

    /// A strategy over the full domain of `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Choice strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// See [`select`].
    pub struct Select<T: Clone>(Vec<T>);

    /// A strategy drawing uniformly from a fixed list of options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.0.random_range(0..self.0.len())].clone()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn` runs `cases` times with inputs
/// drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal muncher for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                );
                let run = || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                let outcome = run();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Fails the enclosing property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&($a), &($b));
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&($a), &($b));
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the enclosing property case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&($a), &($b));
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_compose(
            n in 2usize..6,
            x in -1.0f64..1.0,
            bits in 1u8..=4,
            (lens, scale) in (1usize..4).prop_flat_map(|k| (
                prop::collection::vec(0usize..10, k),
                prop::collection::vec((0.0f64..1.0, 1.0f64..2.0), 2..5),
            )),
        ) {
            prop_assert!((2..6).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!((1..=4).contains(&bits));
            prop_assert!(!lens.is_empty() && lens.len() < 4);
            prop_assert!(scale.len() >= 2 && scale.len() < 5);
            for (a, b) in &scale {
                prop_assert!(*a < 1.0 && *b >= 1.0, "pair ({a}, {b})");
            }
            prop_assert_eq!(lens.len(), lens.len());
        }
    }

    #[test]
    fn cases_run_and_failures_report() {
        ranges_and_vecs_compose();
        let failing = || -> Result<(), crate::TestCaseError> {
            prop_assert!(1 + 1 == 3, "math broke: {}", 2);
            Ok(())
        };
        let err = failing().unwrap_err();
        assert_eq!(err.to_string(), "math broke: 2");
    }
}
