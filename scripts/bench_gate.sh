#!/usr/bin/env bash
# Perf-regression gate (DESIGN.md §13): run the array sweep
# (probe_array), the adaptive-transient comparison (probe_adaptive),
# the batched-MAC fault sweep (probe_faults), the sparse-vs-dense
# solver sweep (probe_sparse), and the numerical-health cost/teeth
# probe (probe_health) with --trace, then
# `trace diff` each trace against its checked-in baseline under
# baselines/. Only deterministic counters (Newton iterations, step
# accept/reject, MAC job counts…) are gated — wall-clock never is — so
# the baselines are portable across machines. Baselines are the small
# `trace metrics` JSON extracts, not full traces, so they diff cleanly
# in git.
#
# The serving probe (probe_serve, DESIGN.md §16), the surrogate probe
# (probe_surrogate, DESIGN.md §17), and the observability probe
# (probe_observe, DESIGN.md §18) are gated differently: shed counts,
# wall-clock speedups, and recording overheads are load- and
# machine-dependent by design, so instead of a trace diff each
# self-gates against the hand-set *bounds* in baselines/probe_serve.json
# (max shed rate, max p99, min completions, min surrogate rate, zero
# untyped responses), baselines/probe_surrogate.json (min speedup, max
# certified envelope, zero check failures), and
# baselines/probe_observe.json (max flight-recording overhead, a
# breaker trip recovered from the incident dump, bounded tenant
# cardinality). --update never rewrites those files. probe_observe's
# incident dumps land under $OUT/flight-dumps so a failing CI run can
# attach them as artifacts.
#
# Usage: scripts/bench_gate.sh [--update]
#   --update            rewrite baselines/ from this run instead of gating
#
# Environment:
#   BENCH_GATE_SOFT=1   report regressions but exit 0 (CI soft-fail mode)
#   BENCH_GATE_OUT=dir  where traces/logs/summaries land
#                       (default target/bench-gate)
#
# Exit codes: 0 no regression (or soft mode), 1 regression, 2 harness or
# trace errors.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${BENCH_GATE_OUT:-target/bench-gate}
UPDATE=0
for arg in "$@"; do
  case "$arg" in
    --update) UPDATE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> building release benches and the trace CLI"
cargo build --release --offline -q -p ferrocim-bench -p ferrocim-serve -p ferrocim-traceview
TRACE=target/release/trace
mkdir -p "$OUT" baselines

BENCHES=(probe_array probe_adaptive probe_faults probe_sparse probe_health)
status=0
for bench in "${BENCHES[@]}"; do
  echo "==> $bench"
  "target/release/$bench" --trace "$OUT/$bench.jsonl" > "$OUT/$bench.log"
  "$TRACE" summary "$OUT/$bench.jsonl" > "$OUT/$bench.summary.txt"
  if [[ $UPDATE -eq 1 ]]; then
    "$TRACE" metrics "$OUT/$bench.jsonl" -o "baselines/$bench.json"
    echo "    baseline updated: baselines/$bench.json"
    continue
  fi
  if [[ ! -f "baselines/$bench.json" ]]; then
    echo "    missing baselines/$bench.json — run scripts/bench_gate.sh --update" >&2
    exit 2
  fi
  if "$TRACE" diff "baselines/$bench.json" "$OUT/$bench.jsonl"; then
    echo "    ok: no counter regressed past the threshold"
  else
    rc=$?
    if [[ $rc -eq 1 ]]; then
      echo "    REGRESSION in $bench (deltas above)" >&2
      status=1
    else
      exit "$rc"
    fi
  fi
done

SELF_GATED=(probe_serve probe_surrogate probe_observe)
declare -A SELF_GATED_OK=(
  [probe_serve]="serving contract held (typed responses, bounded tail, clean drain)"
  [probe_surrogate]="surrogate contract held (fast, certified, checked, domain-honest)"
  [probe_observe]="observability contract held (cheap recording, parseable dumps, bounded cardinality)"
)
declare -A SELF_GATED_ARGS=(
  [probe_observe]="--dump-dir $OUT/flight-dumps"
)
for bench in "${SELF_GATED[@]}"; do
  echo "==> $bench (self-gating against baselines/$bench.json)"
  # shellcheck disable=SC2086 — the per-bench extra args are word-split on purpose.
  if "target/release/$bench" --trace "$OUT/$bench.jsonl" \
      --gate "baselines/$bench.json" ${SELF_GATED_ARGS[$bench]:-} > "$OUT/$bench.log" 2>&1; then
    "$TRACE" summary "$OUT/$bench.jsonl" > "$OUT/$bench.summary.txt"
    echo "    ok: ${SELF_GATED_OK[$bench]}"
  else
    rc=$?
    "$TRACE" summary "$OUT/$bench.jsonl" > "$OUT/$bench.summary.txt" || true
    tail -n 20 "$OUT/$bench.log" >&2
    if [[ $rc -eq 1 ]]; then
      echo "    REGRESSION in $bench (contract violations above)" >&2
      status=1
    else
      exit "$rc"
    fi
  fi
done

if [[ $status -ne 0 && "${BENCH_GATE_SOFT:-0}" == "1" ]]; then
  echo "==> soft-fail mode: regression reported, build kept green" >&2
  exit 0
fi
if [[ $status -eq 0 && $UPDATE -eq 0 ]]; then
  echo "==> bench gate passed"
fi
exit $status
