#!/usr/bin/env bash
# Perf-regression gate (DESIGN.md §13): run the array sweep
# (probe_array), the adaptive-transient comparison (probe_adaptive),
# the batched-MAC fault sweep (probe_faults), the sparse-vs-dense
# solver sweep (probe_sparse), and the numerical-health cost/teeth
# probe (probe_health) with --trace, then
# `trace diff` each trace against its checked-in baseline under
# baselines/. Only deterministic counters (Newton iterations, step
# accept/reject, MAC job counts…) are gated — wall-clock never is — so
# the baselines are portable across machines. Baselines are the small
# `trace metrics` JSON extracts, not full traces, so they diff cleanly
# in git.
#
# The serving probe (probe_serve, DESIGN.md §16) is gated differently:
# its shed/retry counts are load-dependent by design, so instead of a
# trace diff it self-gates against the hand-set *bounds* in
# baselines/probe_serve.json (max shed rate, max p99, min completions,
# zero untyped responses). --update never rewrites that file.
#
# Usage: scripts/bench_gate.sh [--update]
#   --update            rewrite baselines/ from this run instead of gating
#
# Environment:
#   BENCH_GATE_SOFT=1   report regressions but exit 0 (CI soft-fail mode)
#   BENCH_GATE_OUT=dir  where traces/logs/summaries land
#                       (default target/bench-gate)
#
# Exit codes: 0 no regression (or soft mode), 1 regression, 2 harness or
# trace errors.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${BENCH_GATE_OUT:-target/bench-gate}
UPDATE=0
for arg in "$@"; do
  case "$arg" in
    --update) UPDATE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> building release benches and the trace CLI"
cargo build --release --offline -q -p ferrocim-bench -p ferrocim-serve -p ferrocim-traceview
TRACE=target/release/trace
mkdir -p "$OUT" baselines

BENCHES=(probe_array probe_adaptive probe_faults probe_sparse probe_health)
status=0
for bench in "${BENCHES[@]}"; do
  echo "==> $bench"
  "target/release/$bench" --trace "$OUT/$bench.jsonl" > "$OUT/$bench.log"
  "$TRACE" summary "$OUT/$bench.jsonl" > "$OUT/$bench.summary.txt"
  if [[ $UPDATE -eq 1 ]]; then
    "$TRACE" metrics "$OUT/$bench.jsonl" -o "baselines/$bench.json"
    echo "    baseline updated: baselines/$bench.json"
    continue
  fi
  if [[ ! -f "baselines/$bench.json" ]]; then
    echo "    missing baselines/$bench.json — run scripts/bench_gate.sh --update" >&2
    exit 2
  fi
  if "$TRACE" diff "baselines/$bench.json" "$OUT/$bench.jsonl"; then
    echo "    ok: no counter regressed past the threshold"
  else
    rc=$?
    if [[ $rc -eq 1 ]]; then
      echo "    REGRESSION in $bench (deltas above)" >&2
      status=1
    else
      exit "$rc"
    fi
  fi
done

echo "==> probe_serve (self-gating against baselines/probe_serve.json)"
if target/release/probe_serve --trace "$OUT/probe_serve.jsonl" \
    --gate baselines/probe_serve.json > "$OUT/probe_serve.log" 2>&1; then
  "$TRACE" summary "$OUT/probe_serve.jsonl" > "$OUT/probe_serve.summary.txt"
  echo "    ok: serving contract held (typed responses, bounded tail, clean drain)"
else
  rc=$?
  "$TRACE" summary "$OUT/probe_serve.jsonl" > "$OUT/probe_serve.summary.txt" || true
  tail -n 20 "$OUT/probe_serve.log" >&2
  if [[ $rc -eq 1 ]]; then
    echo "    REGRESSION in probe_serve (contract violations above)" >&2
    status=1
  else
    exit "$rc"
  fi
fi

if [[ $status -ne 0 && "${BENCH_GATE_SOFT:-0}" == "1" ]]; then
  echo "==> soft-fail mode: regression reported, build kept green" >&2
  exit 0
fi
if [[ $status -eq 0 && $UPDATE -eq 0 ]]; then
  echo "==> bench gate passed"
fi
exit $status
