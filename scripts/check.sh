#!/usr/bin/env bash
# Full pre-merge gate: formatting, lints, then the tier-1 build+test
# sweep from ROADMAP.md. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

echo "==> all checks passed"
