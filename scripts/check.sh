#!/usr/bin/env bash
# Full pre-merge gate: formatting, lints, then the tier-1 build+test
# sweep from ROADMAP.md. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> clippy (no unwrap/expect in units+device+telemetry+spice+cim+surrogate+nn+traceview+serve lib code)"
cargo clippy --offline --no-deps -p ferrocim-units -p ferrocim-device -p ferrocim-telemetry \
  -p ferrocim-spice -p ferrocim-cim -p ferrocim-surrogate -p ferrocim-nn -p ferrocim-traceview \
  -p ferrocim-serve \
  --lib -- -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "==> cargo doc (rustdoc warnings are errors; our crates only, not vendor/)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps \
  -p ferrocim-units -p ferrocim-device -p ferrocim-telemetry \
  -p ferrocim-spice -p ferrocim-cim -p ferrocim-surrogate -p ferrocim-nn -p ferrocim-traceview \
  -p ferrocim-serve -p ferrocim-bench -p ferrocim

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

echo "==> failure-injection suite (full backtraces)"
RUST_BACKTRACE=1 cargo test -q --offline -p ferrocim-spice --test failure_injection

echo "==> all checks passed"
