#!/usr/bin/env bash
# CI smoke test for the serving layer: boot `ferrocim-serve` on an
# ephemeral port, drive one MAC request plus /healthz and /metrics
# through its built-in TCP client, and shut down cleanly. Everything
# runs in-process via `--self-check`, so there is no curl dependency
# and no fixed port to collide on.
#
# Exit codes: 0 smoke passed, 2 boot/calibration/check failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> building ferrocim-serve"
cargo build --release --offline -q -p ferrocim-serve

echo "==> self-check: boot, MAC request, /healthz, /metrics, shutdown"
target/release/ferrocim-serve --self-check --calibration-samples 4

echo "==> serve smoke passed"
