#!/usr/bin/env bash
# CI smoke test for the serving layer: boot `ferrocim-serve` on an
# ephemeral port, drive one MAC request plus /healthz, /metrics, and
# every /debug/* introspection endpoint through its built-in TCP
# client, and shut down cleanly. Everything runs in-process via
# `--self-check`, so there is no curl dependency and no fixed port to
# collide on. The flight recorder is armed with a dump directory so
# the check also covers the /debug/flight stream; any incident dumps
# a failing run leaves behind sit under target/serve-smoke-flight for
# CI to attach as artifacts.
#
# Exit codes: 0 smoke passed, 2 boot/calibration/check failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> building ferrocim-serve"
cargo build --release --offline -q -p ferrocim-serve

echo "==> self-check: boot, MAC request, /healthz, /metrics, /debug/*, shutdown"
target/release/ferrocim-serve --self-check --flight 256 --flight-dump target/serve-smoke-flight

echo "==> serve smoke passed"
