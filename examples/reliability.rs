//! Reliability outlook: how retention and endurance interact with the
//! temperature-resilient CIM array — the deployment questions the paper
//! leaves as future work.
//!
//! ```sh
//! cargo run --release --example reliability
//! ```

use ferrocim::cim::cells::TwoTransistorOneFefet;
use ferrocim::cim::metrics::RangeTable;
use ferrocim::cim::{ArrayConfig, CimArray};
use ferrocim::device::reliability::{EnduranceModel, RetentionModel};
use ferrocim::spice::sweep::temperature_sweep;
use ferrocim::units::{Celsius, Second};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Retention: how long do the stored weights last where the array
    //    is rated to operate?
    let retention = RetentionModel::default();
    println!("retention (time to 50 % remanent polarization):");
    for temp_c in [27.0, 55.0, 85.0] {
        let t50 = retention.time_to_fraction(0.5, Celsius(temp_c));
        println!(
            "  {temp_c:>4} C: {:.1} years",
            t50.value() / (365.25 * 24.0 * 3600.0)
        );
    }
    let ten_years = Second(10.0 * 365.25 * 24.0 * 3600.0);
    println!(
        "  surviving polarization after 10 years at 85 C: {:.1} %",
        retention.surviving_fraction(ten_years, Celsius(85.0)) * 100.0
    );

    // 2. Endurance: how does write cycling erode the noise margin?
    let endurance = EnduranceModel::default();
    let temps = temperature_sweep(8);
    println!("\nendurance (memory window and array NMR_min vs write cycles):");
    println!("{:>12} {:>14} {:>12}", "cycles", "window factor", "NMR_min");
    for exp in [0, 4, 6, 8, 9, 10] {
        let cycles = 10f64.powi(exp);
        let Some(factor) = endurance.window_factor(cycles) else {
            println!("{cycles:>12.0} {:>14} {:>12}", "breakdown", "-");
            continue;
        };
        let mut cell = TwoTransistorOneFefet::paper_default();
        cell.fefet = endurance
            .age_params(&cell.fefet, cycles)
            .expect("below breakdown");
        let array = CimArray::new(cell, ArrayConfig::paper_default())?;
        let nmr = RangeTable::measure(&array, &temps)?.nmr_min().1;
        println!("{cycles:>12.0} {factor:>14.3} {nmr:>12.3}");
    }
    println!(
        "\n(the array stays overlap-free as long as NMR_min > 0; the fresh\n\
         design's margin budget is what absorbs the window fatigue)"
    );
    Ok(())
}
