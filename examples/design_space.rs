//! Design-space exploration: runs the W/L tuner on the 2T-1FeFET cell
//! and shows how the array's worst-case noise margin trades against
//! capacitor sizing — the workflow a designer would use to re-derive
//! the paper's cell for a different technology.
//!
//! ```sh
//! cargo run --release --example design_space          # quick (~2 min)
//! cargo run --release --example design_space -- 2000  # full search
//! ```

use ferrocim::cim::cells::TwoTransistorOneFefet;
use ferrocim::cim::metrics::RangeTable;
use ferrocim::cim::tune::ArrayTuneProblem;
use ferrocim::cim::{ArrayConfig, CimArray};
use ferrocim::spice::sweep::temperature_sweep;
use ferrocim::units::Farad;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(180);

    // 1. Capacitor-sizing sweep around the paper's C_acc = 8 fF.
    println!("C_acc sizing sweep (paper cell, 8-cell row, 0-85 C):");
    println!("{:>10} {:>12} {:>14}", "C_acc", "NMR_min", "gain (Eq. 1)");
    let temps = temperature_sweep(8);
    for c_acc_ff in [2.0, 4.0, 8.0, 16.0, 32.0] {
        let config = ArrayConfig {
            c_acc: Farad(c_acc_ff * 1e-15),
            ..ArrayConfig::paper_default()
        };
        let array = CimArray::new(TwoTransistorOneFefet::paper_default(), config)?;
        let table = RangeTable::measure(&array, &temps)?;
        println!(
            "{:>8.0} fF {:>12.3} {:>14.4}",
            c_acc_ff,
            table.nmr_min().1,
            config.sharing_gain()
        );
    }

    // 2. Re-run the cell tuner with a reduced budget.
    println!("\nre-deriving the cell with the multi-start tuner (budget {budget})...");
    let problem = ArrayTuneProblem::paper_default();
    let outcome = problem.run(budget)?;
    println!("variation-aware NMR_min found: {:.3}", -outcome.objective);
    for (p, v) in problem.params().iter().zip(&outcome.best) {
        println!("  {:>14} = {v:.4}", p.name);
    }
    println!(
        "(the shipped TwoTransistorOneFefet::paper_default came from this \
         search at a {}x larger budget)",
        2400 / budget.max(1)
    );
    Ok(())
}
