//! Quickstart: program a 2T-1FeFET CIM row, run a MAC, and read the
//! result back through the ADC.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ferrocim::cim::cells::TwoTransistorOneFefet;
use ferrocim::cim::transfer::Adc;
use ferrocim::cim::{ArrayConfig, CimArray, MacRequest};
use ferrocim::units::Celsius;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's tuned cell and 8-cell row geometry.
    let cell = TwoTransistorOneFefet::paper_default();
    let array = CimArray::new(cell, ArrayConfig::paper_default())?;

    // Store an 8-bit weight word and apply an 8-bit input word.
    let weights = [true, true, false, true, true, false, true, true];
    let inputs = [true, false, true, true, true, true, false, true];
    let expected: usize = weights
        .iter()
        .zip(&inputs)
        .filter(|(w, x)| **w && **x)
        .count();

    // Calibrate the readout thresholds against the full temperature
    // range (the sense-margin-aware placement the NMR analysis enables).
    let adc = Adc::calibrate_over(&array, &ferrocim::spice::sweep::temperature_sweep(8))?;

    println!("weights: {weights:?}");
    println!("inputs:  {inputs:?}");
    println!("expected MAC = {expected}\n");

    // The headline claim: the digital readout is stable from 0 to 85 C.
    for temp_c in [0.0, 27.0, 55.0, 85.0] {
        let out = array.run(
            &MacRequest::new(&inputs)
                .weights(&weights)
                .at(Celsius(temp_c)),
        )?;
        let digital = adc.quantize(out.v_acc);
        println!(
            "T = {temp_c:>4} C: V_acc = {}, readout = {digital}, energy = {}",
            out.v_acc, out.energy
        );
        assert_eq!(digital, expected, "readout must be temperature-stable");
    }
    println!("\nMAC latency: {}", array.config().latency());
    Ok(())
}
