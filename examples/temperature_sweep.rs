//! Temperature-resilience study: compares the proposed 2T-1FeFET cell
//! against both 1FeFET-1R baselines across 0–85 °C and prints the
//! normalized current curves plus the array-level noise margins —
//! a condensed version of the paper's Figs. 3, 4, 7 and 8(a).
//!
//! ```sh
//! cargo run --release --example temperature_sweep
//! ```

use ferrocim::cim::cells::{
    normalized_current_curve, CellDesign, OneFefetOneR, TwoTransistorOneFefet,
};
use ferrocim::cim::metrics::RangeTable;
use ferrocim::cim::{ArrayConfig, CimArray};
use ferrocim::spice::sweep::temperature_sweep;
use ferrocim::units::Celsius;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reference = Celsius(27.0);
    let temps = temperature_sweep(18);

    println!("normalized output current I(T)/I(27C):");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "T [C]", "2T-1FeFET", "1F1R sat", "1F1R sub"
    );
    let proposed = TwoTransistorOneFefet::paper_default();
    let sat = OneFefetOneR::saturation();
    let sub = OneFefetOneR::subthreshold();
    let curve_p = normalized_current_curve(&proposed, &temps, reference)?;
    let curve_sat = normalized_current_curve(&sat, &temps, reference)?;
    let curve_sub = normalized_current_curve(&sub, &temps, reference)?;
    for ((tp, p), ((_, s), (_, u))) in curve_p.iter().zip(curve_sat.iter().zip(curve_sub.iter())) {
        println!("{:>8.1} {:>14.3} {:>14.3} {:>14.3}", tp.value(), p, s, u);
    }

    println!("\narray-level noise margins over 0-85 C (Eq. 2-3):");
    for (name, table) in [
        (
            proposed.name(),
            RangeTable::measure(
                &CimArray::new(proposed.clone(), ArrayConfig::paper_default())?,
                &temps,
            )?,
        ),
        (
            "1FeFET-1R (subthreshold)",
            RangeTable::measure(
                &CimArray::new(sub.clone(), ArrayConfig::paper_default())?,
                &temps,
            )?,
        ),
    ] {
        let (idx, nmr) = table.nmr_min();
        println!(
            "  {name:<28} NMR_min = NMR_{idx} = {nmr:>7.3}   overlap: {}",
            table.has_overlap()
        );
    }
    Ok(())
}
