//! Hardware-in-the-loop inference: trains a small VGG on the synthetic
//! dataset, maps it onto simulated 2T-1FeFET rows, and compares clean
//! vs CIM accuracy at several temperatures — a condensed version of the
//! paper's Sec. IV-B evaluation. Runs in a couple of minutes.
//!
//! ```sh
//! cargo run --release --example vgg_inference
//! ```

use ferrocim::cim::cells::TwoTransistorOneFefet;
use ferrocim::cim::transfer::{TransferConfig, TransferModel};
use ferrocim::cim::{ArrayConfig, CimArray};
use ferrocim::nn::cim_exec::{CimMapping, CimNetwork, IdealMac};
use ferrocim::nn::data::Generator;
use ferrocim::nn::vgg::vgg_nano;
use ferrocim::nn::{train, TrainConfig};
use ferrocim::units::Celsius;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train_set = Generator::new(1).generate(1000);
    let test_set = Generator::new(999).generate(250);
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = vgg_nano(&mut rng);
    println!("training VGG-nano ({} params)...", net.parameter_count());
    let stats = train(
        &mut net,
        &train_set.images,
        &train_set.labels,
        &TrainConfig {
            epochs: 20,
            learning_rate: 0.01,
            ..TrainConfig::default()
        },
    );
    println!(
        "final train accuracy: {:.3}",
        stats.last().map(|s| s.train_accuracy).unwrap_or(0.0)
    );
    let clean = net.accuracy(&test_set.images, &test_set.labels);
    println!("clean test accuracy:          {clean:.3}");

    let cim = CimNetwork::map(&net, CimMapping::default());
    let ideal = cim.accuracy(&test_set.images, &test_set.labels, &IdealMac(8), 11);
    println!("4-bit quantized (ideal rows): {ideal:.3}");

    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )?;
    for temp_c in [0.0, 27.0, 85.0] {
        let model =
            TransferModel::measure(&array, &TransferConfig::paper_default(Celsius(temp_c)))?;
        let acc = cim.accuracy(&test_set.images, &test_set.labels, &model, 13);
        println!("CIM rows at {temp_c:>4} C:           {acc:.3}");
    }
    Ok(())
}
