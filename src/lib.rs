//! `ferrocim` — temperature-resilient subthreshold-FeFET
//! compute-in-memory, reproduced end-to-end in Rust.
//!
//! This is the façade crate of the workspace: it re-exports the five
//! member crates under stable module names so downstream users depend on
//! a single package. See the README for the architecture overview and
//! DESIGN.md for the paper-reproduction inventory.
//!
//! * [`units`] — physical-quantity newtypes (volts, amps, kelvin…).
//! * [`device`] — EKV MOSFET and Preisach FeFET compact models.
//! * [`spice`] — the MNA circuit simulator (DC, transient, Monte-Carlo).
//! * [`cim`] — the paper's contribution: 2T-1FeFET cells, arrays,
//!   noise-margin metrics, readout models, and the design tuner.
//! * [`surrogate`] — the content-addressed calibrated-curve store:
//!   certified error-bounded MAC evaluation without a live solve.
//! * [`nn`] — the CNN stack with CIM-mapped execution for the VGG
//!   accuracy evaluation.
//!
//! # Quickstart
//!
//! ```
//! use ferrocim::cim::cells::TwoTransistorOneFefet;
//! use ferrocim::cim::{ArrayConfig, CimArray, MacRequest};
//! use ferrocim::units::Celsius;
//!
//! # fn main() -> Result<(), ferrocim::cim::CimError> {
//! let array = CimArray::new(
//!     TwoTransistorOneFefet::paper_default(),
//!     ArrayConfig::paper_default(),
//! )?;
//! let weights = [true; 8];
//! let inputs = [true, true, true, false, false, false, false, false];
//! let out = array.run(&MacRequest::new(&inputs).weights(&weights).at(Celsius(27.0)))?;
//! assert_eq!(out.expected, 3);
//! assert!(out.v_acc.value() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ferrocim_cim as cim;
pub use ferrocim_device as device;
pub use ferrocim_nn as nn;
pub use ferrocim_spice as spice;
pub use ferrocim_surrogate as surrogate;
pub use ferrocim_telemetry as telemetry;
pub use ferrocim_units as units;
