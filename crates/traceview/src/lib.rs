//! Analysis of `ferrocim-telemetry` JSONL traces.
//!
//! `ferrocim-telemetry` is the producer side of observability: hot
//! loops emit [`Event`]s into a trace file. This crate is the consumer
//! side, turning those flat event streams back into something a human
//! (or a CI gate) can act on:
//!
//! * [`SpanTree`] — reconstructs the causal span tree from
//!   `SpanBegin`/`SpanEnd` pairs (network → layer → MAC batch → solve),
//!   including parents bridged across `fan_out` threads by explicit id.
//! * [`Summary`] — counts, histograms, and top spans for one trace
//!   (`trace summary`).
//! * [`diff_metrics`] — per-metric deltas between two traces with a
//!   regression threshold, driving the CI perf gate (`trace diff`,
//!   `scripts/bench_gate.sh`).
//! * [`chrome_trace`] — Chrome/Perfetto `trace_event` JSON export
//!   (`trace export --chrome`), loadable in `about:tracing` or
//!   <https://ui.perfetto.dev>.
//!
//! The `trace` binary in this crate wraps all three behind a CLI.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chrome;
mod diff;
mod summary;
mod tree;

pub use chrome::chrome_trace;
pub use diff::{
    diff_extracted, diff_metrics, extract_metrics, has_regression, metrics_from_json, metrics_json,
    render_deltas, Delta, DiffReport, DiffWarning, GATE_DEFAULT_THRESHOLD_PCT,
};
pub use summary::{tenant_rollups, top_spans, SpanRollup, Summary, TenantRollup};
pub use tree::{SpanNode, SpanTree};

// Re-exported so the bin and downstream tests name one crate.
pub use ferrocim_telemetry::{read_trace, Event, TraceError};
