//! Chrome/Perfetto `trace_event` JSON export.
//!
//! The output is the stable "JSON Array Format" subset of the Trace
//! Event spec: one complete (`"ph": "X"`) event per closed span, with
//! microsecond `ts`/`dur` and the telemetry thread id as `tid`, so
//! `about:tracing` and <https://ui.perfetto.dev> lay the span tree out
//! on per-thread tracks. Span/parent ids travel in `args` for tools
//! that want the explicit causality instead of timestamp nesting.

use crate::tree::SpanTree;
use serde_json::Value;

/// Converts a reconstructed span tree into a `trace_event` JSON
/// document. Open spans (no end event) are skipped — a viewer cannot
/// place an unbounded complete event.
pub fn chrome_trace(tree: &SpanTree) -> Value {
    let events: Vec<Value> = tree
        .nodes()
        .iter()
        .filter_map(|node| {
            let micros = node.micros?;
            Some(Value::Object(vec![
                ("name".to_string(), Value::String(node.name.clone())),
                ("ph".to_string(), Value::String("X".to_string())),
                ("ts".to_string(), Value::Number(node.ts)),
                ("dur".to_string(), Value::Number(micros)),
                ("pid".to_string(), Value::Number(1.0)),
                ("tid".to_string(), Value::Number(node.tid as f64)),
                (
                    "args".to_string(),
                    Value::Object(vec![
                        ("span_id".to_string(), Value::Number(node.id as f64)),
                        ("parent".to_string(), Value::Number(node.parent as f64)),
                    ]),
                ),
            ]))
        })
        .collect();
    Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        (
            "displayTimeUnit".to_string(),
            Value::String("ms".to_string()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrocim_telemetry::Event;

    #[test]
    fn exports_complete_events_and_skips_open_spans() {
        let events = vec![
            Event::SpanBegin {
                id: 1,
                parent: 0,
                tid: 1,
                name: "nn.forward".into(),
                ts: 10.0,
            },
            Event::SpanBegin {
                id: 2,
                parent: 1,
                tid: 1,
                name: "cim.mac_batch".into(),
                ts: 11.0,
            },
            Event::SpanEnd { id: 2, micros: 5.0 },
            Event::SpanEnd {
                id: 1,
                micros: 20.0,
            },
            Event::SpanBegin {
                id: 3,
                parent: 0,
                tid: 2,
                name: "torn".into(),
                ts: 30.0,
            },
        ];
        let doc = chrome_trace(&SpanTree::build(&events));
        let Some(Value::Array(entries)) = doc.get("traceEvents") else {
            panic!("traceEvents array missing");
        };
        assert_eq!(entries.len(), 2, "open span is skipped");
        let first = &entries[0];
        assert_eq!(first.get("ph"), Some(&Value::String("X".to_string())));
        assert_eq!(first.get("ts"), Some(&Value::Number(10.0)));
        assert_eq!(first.get("dur"), Some(&Value::Number(20.0)));
        assert_eq!(first.get("tid"), Some(&Value::Number(1.0)));
        let args = first.get("args").expect("args");
        assert_eq!(args.get("span_id"), Some(&Value::Number(1.0)));
        // The serialized document is a single JSON object a viewer can
        // load directly.
        let text = serde_json::to_string(&doc).expect("serialize");
        assert!(text.starts_with("{\"traceEvents\":"));
        assert!(text.ends_with('}'));
    }
}
