//! `trace` — analyze `ferrocim-telemetry` JSONL traces.
//!
//! ```text
//! trace summary <trace.jsonl> [--prometheus] [--tree]
//! trace diff <base> <new> [--threshold <pct>]
//! trace metrics <trace.jsonl> [-o <out.json>]
//! trace export --chrome <trace.jsonl> [-o <out.json>]
//! ```
//!
//! `diff` accepts a JSONL trace *or* a `trace metrics` baseline JSON on
//! either side — `scripts/bench_gate.sh` checks in the latter under
//! `baselines/` because it is tiny and diffs cleanly in git.
//!
//! Exit codes: 0 success (for `diff`: no regression), 1 regression
//! detected by `diff`, 2 usage or trace errors.

use ferrocim_traceview::{
    chrome_trace, diff_extracted, extract_metrics, has_regression, metrics_from_json, metrics_json,
    read_trace, render_deltas, Event, SpanTree, Summary, GATE_DEFAULT_THRESHOLD_PCT,
};
use std::process::ExitCode;

const USAGE: &str = "usage:
  trace summary <trace.jsonl> [--prometheus] [--tree]
  trace diff <base> <new> [--threshold <pct>]
  trace metrics <trace.jsonl> [-o <out.json>]
  trace export --chrome <trace.jsonl> [-o <out.json>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        Some("summary") => cmd_summary(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match outcome {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<Vec<Event>, String> {
    read_trace(path).map_err(|e| e.to_string())
}

/// Loads one `diff` operand: a `trace metrics` baseline JSON (a single
/// object covering exactly the gate metrics) or a JSONL trace. A file
/// that is neither reports the *trace* error, which carries line-level
/// corruption/mixed-version detail.
fn load_metrics(path: &str) -> Result<Vec<(&'static str, u64)>, String> {
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Ok(doc) = serde_json::from_str::<serde_json::Value>(&text) {
            if let Ok(metrics) = metrics_from_json(&doc) {
                return Ok(metrics);
            }
        }
    }
    Ok(extract_metrics(&load(path)?))
}

fn cmd_summary(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut prometheus = false;
    let mut tree = false;
    for arg in args {
        match arg.as_str() {
            "--prometheus" => prometheus = true,
            "--tree" => tree = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other => return Err(format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }
    let path = path.ok_or_else(|| USAGE.to_string())?;
    let events = load(path)?;
    let summary = Summary::of(&events);
    if prometheus {
        print!("{}", summary.render_prometheus());
    } else {
        print!("{}", summary.render_text());
    }
    if tree {
        println!("\nspan tree:");
        print!("{}", SpanTree::build(&events).render_text());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold = GATE_DEFAULT_THRESHOLD_PCT;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => {
                let value = iter.next().ok_or("--threshold needs a value")?;
                threshold = value
                    .parse::<f64>()
                    .map_err(|_| format!("bad threshold {value:?}"))?;
            }
            other if !other.starts_with('-') => paths.push(other),
            other => return Err(format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }
    let [base, new] = paths.as_slice() else {
        return Err(USAGE.to_string());
    };
    let report = diff_extracted(&load_metrics(base)?, &load_metrics(new)?, threshold);
    print!("{}", render_deltas(&report));
    if has_regression(&report) {
        eprintln!(
            "regression: a metric increased more than {threshold}%, or the \
             two sides disagree on which counters exist (see warnings above)"
        );
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_metrics(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut out_path = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-o" | "--output" => out_path = Some(iter.next().ok_or("-o needs a path")?.clone()),
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other => return Err(format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }
    let path = path.ok_or_else(|| USAGE.to_string())?;
    let doc = metrics_json(&extract_metrics(&load(path)?));
    let text = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
    match out_path {
        Some(out) => {
            std::fs::write(&out, format!("{text}\n")).map_err(|e| format!("write {out}: {e}"))?;
        }
        None => println!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_export(args: &[String]) -> Result<ExitCode, String> {
    let mut chrome = false;
    let mut path = None;
    let mut out_path = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--chrome" => chrome = true,
            "-o" | "--output" => out_path = Some(iter.next().ok_or("-o needs a path")?.clone()),
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other => return Err(format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }
    if !chrome {
        return Err(format!("export currently supports only --chrome\n{USAGE}"));
    }
    let path = path.ok_or_else(|| USAGE.to_string())?;
    let events = load(path)?;
    let doc = chrome_trace(&SpanTree::build(&events));
    let text = serde_json::to_string(&doc).map_err(|e| e.to_string())?;
    match out_path {
        Some(out) => std::fs::write(&out, text).map_err(|e| format!("write {out}: {e}"))?,
        None => println!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}
