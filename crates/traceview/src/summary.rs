//! One-trace summaries: counters, histograms, and top spans.

use crate::tree::SpanTree;
use ferrocim_telemetry::{Aggregator, Counts, Event, Recorder as _};
use std::collections::HashMap;

/// Aggregated wall-clock statistics for one span label.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRollup {
    /// The span label.
    pub name: String,
    /// Closed spans with this label.
    pub count: u64,
    /// Total wall-clock microseconds across those spans.
    pub total_micros: f64,
}

/// Rolls closed spans up by label, sorted by descending total time.
pub fn top_spans(events: &[Event]) -> Vec<SpanRollup> {
    let mut names: HashMap<u64, &str> = HashMap::new();
    let mut rollup: HashMap<&str, (u64, f64)> = HashMap::new();
    for event in events {
        match event {
            Event::SpanBegin { id, name, .. } => {
                names.insert(*id, name.as_str());
            }
            Event::SpanEnd { id, micros } => {
                if let Some(name) = names.get(id) {
                    let slot = rollup.entry(name).or_insert((0, 0.0));
                    slot.0 += 1;
                    slot.1 += micros;
                }
            }
            _ => {}
        }
    }
    let mut out: Vec<SpanRollup> = rollup
        .into_iter()
        .map(|(name, (count, total_micros))| SpanRollup {
            name: name.to_string(),
            count,
            total_micros,
        })
        .collect();
    out.sort_by(|a, b| {
        b.total_micros
            .total_cmp(&a.total_micros)
            .then(a.name.cmp(&b.name))
    });
    out
}

/// Per-tenant serve outcomes, rolled up from the trace's
/// [`Event::ServeDone`] records — the typed form of the label
/// breakdown `/metrics` exposes.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRollup {
    /// The tenant label.
    pub tenant: String,
    /// Terminal requests for this tenant.
    pub requests: u64,
    /// Requests answered `ok`.
    pub ok: u64,
    /// Requests answered from a degraded tier.
    pub degraded: u64,
    /// Requests that burned error budget (shed, deadline, error,
    /// degraded — everything [`ferrocim_telemetry::ServeOutcome`]
    /// counts against the SLO).
    pub budget_burned: u64,
    /// Total serve latency across the tenant's requests, milliseconds.
    pub total_latency_ms: f64,
}

/// Rolls [`Event::ServeDone`] records up by tenant, sorted by
/// descending request count (ties by tenant name).
pub fn tenant_rollups(events: &[Event]) -> Vec<TenantRollup> {
    let mut rollup: Vec<TenantRollup> = Vec::new();
    for event in events {
        let Event::ServeDone {
            tenant,
            outcome,
            latency_ms,
            ..
        } = event
        else {
            continue;
        };
        let idx = match rollup.iter().position(|r| r.tenant == *tenant) {
            Some(idx) => idx,
            None => {
                rollup.push(TenantRollup {
                    tenant: tenant.clone(),
                    requests: 0,
                    ok: 0,
                    degraded: 0,
                    budget_burned: 0,
                    total_latency_ms: 0.0,
                });
                rollup.len() - 1
            }
        };
        let slot = &mut rollup[idx];
        slot.requests += 1;
        slot.total_latency_ms += latency_ms;
        if *outcome == ferrocim_telemetry::ServeOutcome::Ok {
            slot.ok += 1;
        }
        if *outcome == ferrocim_telemetry::ServeOutcome::Degraded {
            slot.degraded += 1;
        }
        if outcome.burns_error_budget() {
            slot.budget_burned += 1;
        }
    }
    rollup.sort_by(|a, b| b.requests.cmp(&a.requests).then(a.tenant.cmp(&b.tenant)));
    rollup
}

/// The `trace summary` payload for one trace.
#[derive(Debug)]
pub struct Summary {
    /// Total events in the trace (including span begin/ends).
    pub events: usize,
    /// Counter snapshot from replaying the trace into an [`Aggregator`].
    pub counts: Counts,
    /// Span labels by descending total wall-clock time.
    pub top_spans: Vec<SpanRollup>,
    /// Per-tenant serve outcomes (empty for non-serve traces).
    pub tenants: Vec<TenantRollup>,
    /// Spans whose end never made it into the trace.
    pub open_spans: usize,
    /// The replayed aggregator (for `--prometheus` output).
    aggregator: Aggregator,
}

impl Summary {
    /// Replays `events` into counters, histograms, and span rollups.
    pub fn of(events: &[Event]) -> Summary {
        let aggregator = Aggregator::new();
        for event in events {
            aggregator.record(event);
        }
        let tree = SpanTree::build(events);
        Summary {
            events: events.len(),
            counts: aggregator.counts(),
            top_spans: top_spans(events),
            tenants: tenant_rollups(events),
            open_spans: tree.open_spans(),
            aggregator,
        }
    }

    /// The Prometheus text exposition of the replayed trace.
    pub fn render_prometheus(&self) -> String {
        self.aggregator.render_prometheus()
    }

    /// Renders the human-readable summary (the `trace summary` output).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let c = &self.counts;
        let mut out = String::new();
        let _ = writeln!(out, "events                {}", self.events);
        let mut count = |name: &str, value: u64| {
            if value > 0 {
                let _ = writeln!(out, "{name:<22}{value}");
            }
        };
        count("newton_iters", c.newton_iters);
        count("newton_residuals", c.newton_residuals);
        count("newton_converged", c.newton_converged);
        count("steps_accepted", c.steps_accepted);
        count("steps_rejected", c.steps_rejected);
        count("rescue_attempts", c.rescue_attempts);
        count("rescues_succeeded", c.rescues_succeeded);
        count("budget_newton", c.budget_newton);
        count("budget_steps", c.budget_steps);
        count("mc_runs_started", c.mc_runs_started);
        count("mc_runs_ok", c.mc_runs_ok);
        count("mc_runs_failed", c.mc_runs_failed);
        count("mac_jobs", c.mac_jobs);
        count("mac_solves", c.mac_solves);
        count("faults_substituted", c.faults_substituted);
        count("epochs_done", c.epochs_done);
        count("spans", c.spans);
        count("manifests", c.manifests);
        count("serve_admitted", c.serve_admitted);
        count("serve_shed", c.serve_shed);
        count("serve_retries", c.serve_retries);
        count("serve_degraded", c.serve_degraded);
        count("serve_breaker_open", c.serve_breaker_open);
        count("serve_done", c.serve_done);
        count("slo_breaches", c.slo_breaches);
        count("surrogate_hits", c.surrogate_hits);
        count("surrogate_misses", c.surrogate_misses);
        count("surrogate_checks", c.surrogate_checks);
        count("surrogate_check_failures", c.surrogate_check_failures);
        if self.open_spans > 0 {
            let _ = writeln!(out, "open_spans            {}", self.open_spans);
        }
        if !self.tenants.is_empty() {
            let _ = writeln!(out, "\nserve outcomes by tenant:");
            for t in self.tenants.iter().take(10) {
                let mean_ms = t.total_latency_ms / t.requests.max(1) as f64;
                let _ = writeln!(
                    out,
                    "  {:<20} {:>6} req  {:>5} ok  {:>5} degraded  {:>5} burned  {:>9.2}ms mean",
                    t.tenant, t.requests, t.ok, t.degraded, t.budget_burned, mean_ms
                );
            }
        }
        let newton = self.aggregator.newton_histogram();
        if newton.total() > 0 {
            let _ = writeln!(out, "\nnewton iterations per converged solve:");
            let counts = newton.counts();
            for (bound, n) in newton.bounds().iter().zip(&counts) {
                if *n > 0 {
                    let _ = writeln!(out, "  <= {bound:<8} {n}");
                }
            }
            if let Some(overflow) = counts.last() {
                if *overflow > 0 {
                    let _ = writeln!(out, "  >  last     {overflow}");
                }
            }
        }
        if !self.top_spans.is_empty() {
            let _ = writeln!(out, "\ntop spans by total wall-clock:");
            for span in self.top_spans.iter().take(10) {
                let _ = writeln!(
                    out,
                    "  {:<20} {:>8}x {:>14.1}us",
                    span.name, span.count, span.total_micros
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_counts_and_ranks_spans() {
        let events = vec![
            Event::NewtonIter { iteration: 1 },
            Event::NewtonConverged { iterations: 1 },
            Event::SpanBegin {
                id: 1,
                parent: 0,
                tid: 1,
                name: "slow".into(),
                ts: 0.0,
            },
            Event::SpanEnd {
                id: 1,
                micros: 100.0,
            },
            Event::SpanBegin {
                id: 2,
                parent: 0,
                tid: 1,
                name: "fast".into(),
                ts: 1.0,
            },
            Event::SpanEnd { id: 2, micros: 5.0 },
            Event::SpanBegin {
                id: 3,
                parent: 0,
                tid: 1,
                name: "open".into(),
                ts: 2.0,
            },
        ];
        let summary = Summary::of(&events);
        assert_eq!(summary.events, 7);
        assert_eq!(summary.counts.newton_iters, 1);
        assert_eq!(summary.counts.spans, 2);
        assert_eq!(summary.open_spans, 1);
        assert_eq!(summary.top_spans[0].name, "slow");
        assert_eq!(summary.top_spans[1].name, "fast");
        let text = summary.render_text();
        assert!(text.contains("newton_iters"));
        assert!(text.contains("top spans"));
        assert!(summary
            .render_prometheus()
            .contains("ferrocim_newton_iterations_total 1"));
    }

    #[test]
    fn serve_traces_roll_up_by_tenant() {
        use ferrocim_telemetry::{ServeBackendKind, ServeOutcome};
        let done = |tenant: &str, outcome: ServeOutcome, latency_ms: f64| Event::ServeDone {
            request_id: 7,
            tenant: tenant.to_string(),
            outcome,
            backend: ServeBackendKind::Live,
            latency_ms,
        };
        let events = vec![
            done("acme", ServeOutcome::Ok, 10.0),
            done("acme", ServeOutcome::Degraded, 30.0),
            done("acme", ServeOutcome::Shed, 2.0),
            done("zeta", ServeOutcome::Ok, 1.0),
            Event::SloBreach {
                window: 8,
                bad: 5,
                burn_pct: 62.5,
            },
        ];
        let summary = Summary::of(&events);
        assert_eq!(summary.counts.serve_done, 4);
        assert_eq!(summary.counts.slo_breaches, 1);
        assert_eq!(summary.tenants.len(), 2);
        let acme = &summary.tenants[0];
        assert_eq!(acme.tenant, "acme", "sorted by descending requests");
        assert_eq!(acme.requests, 3);
        assert_eq!(acme.ok, 1);
        assert_eq!(acme.degraded, 1);
        assert_eq!(acme.budget_burned, 2, "degraded + shed burn budget");
        assert!((acme.total_latency_ms - 42.0).abs() < 1e-12);
        assert_eq!(summary.tenants[1].tenant, "zeta");
        let text = summary.render_text();
        assert!(text.contains("serve_done"));
        assert!(text.contains("slo_breaches"));
        assert!(text.contains("serve outcomes by tenant:"));
        assert!(text.contains("acme"));
    }
}
