//! One-trace summaries: counters, histograms, and top spans.

use crate::tree::SpanTree;
use ferrocim_telemetry::{Aggregator, Counts, Event, Recorder as _};
use std::collections::HashMap;

/// Aggregated wall-clock statistics for one span label.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRollup {
    /// The span label.
    pub name: String,
    /// Closed spans with this label.
    pub count: u64,
    /// Total wall-clock microseconds across those spans.
    pub total_micros: f64,
}

/// Rolls closed spans up by label, sorted by descending total time.
pub fn top_spans(events: &[Event]) -> Vec<SpanRollup> {
    let mut names: HashMap<u64, &str> = HashMap::new();
    let mut rollup: HashMap<&str, (u64, f64)> = HashMap::new();
    for event in events {
        match event {
            Event::SpanBegin { id, name, .. } => {
                names.insert(*id, name.as_str());
            }
            Event::SpanEnd { id, micros } => {
                if let Some(name) = names.get(id) {
                    let slot = rollup.entry(name).or_insert((0, 0.0));
                    slot.0 += 1;
                    slot.1 += micros;
                }
            }
            _ => {}
        }
    }
    let mut out: Vec<SpanRollup> = rollup
        .into_iter()
        .map(|(name, (count, total_micros))| SpanRollup {
            name: name.to_string(),
            count,
            total_micros,
        })
        .collect();
    out.sort_by(|a, b| {
        b.total_micros
            .total_cmp(&a.total_micros)
            .then(a.name.cmp(&b.name))
    });
    out
}

/// The `trace summary` payload for one trace.
#[derive(Debug)]
pub struct Summary {
    /// Total events in the trace (including span begin/ends).
    pub events: usize,
    /// Counter snapshot from replaying the trace into an [`Aggregator`].
    pub counts: Counts,
    /// Span labels by descending total wall-clock time.
    pub top_spans: Vec<SpanRollup>,
    /// Spans whose end never made it into the trace.
    pub open_spans: usize,
    /// The replayed aggregator (for `--prometheus` output).
    aggregator: Aggregator,
}

impl Summary {
    /// Replays `events` into counters, histograms, and span rollups.
    pub fn of(events: &[Event]) -> Summary {
        let aggregator = Aggregator::new();
        for event in events {
            aggregator.record(event);
        }
        let tree = SpanTree::build(events);
        Summary {
            events: events.len(),
            counts: aggregator.counts(),
            top_spans: top_spans(events),
            open_spans: tree.open_spans(),
            aggregator,
        }
    }

    /// The Prometheus text exposition of the replayed trace.
    pub fn render_prometheus(&self) -> String {
        self.aggregator.render_prometheus()
    }

    /// Renders the human-readable summary (the `trace summary` output).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let c = &self.counts;
        let mut out = String::new();
        let _ = writeln!(out, "events                {}", self.events);
        let mut count = |name: &str, value: u64| {
            if value > 0 {
                let _ = writeln!(out, "{name:<22}{value}");
            }
        };
        count("newton_iters", c.newton_iters);
        count("newton_residuals", c.newton_residuals);
        count("newton_converged", c.newton_converged);
        count("steps_accepted", c.steps_accepted);
        count("steps_rejected", c.steps_rejected);
        count("rescue_attempts", c.rescue_attempts);
        count("rescues_succeeded", c.rescues_succeeded);
        count("budget_newton", c.budget_newton);
        count("budget_steps", c.budget_steps);
        count("mc_runs_started", c.mc_runs_started);
        count("mc_runs_ok", c.mc_runs_ok);
        count("mc_runs_failed", c.mc_runs_failed);
        count("mac_jobs", c.mac_jobs);
        count("mac_solves", c.mac_solves);
        count("faults_substituted", c.faults_substituted);
        count("epochs_done", c.epochs_done);
        count("spans", c.spans);
        count("manifests", c.manifests);
        if self.open_spans > 0 {
            let _ = writeln!(out, "open_spans            {}", self.open_spans);
        }
        let newton = self.aggregator.newton_histogram();
        if newton.total() > 0 {
            let _ = writeln!(out, "\nnewton iterations per converged solve:");
            let counts = newton.counts();
            for (bound, n) in newton.bounds().iter().zip(&counts) {
                if *n > 0 {
                    let _ = writeln!(out, "  <= {bound:<8} {n}");
                }
            }
            if let Some(overflow) = counts.last() {
                if *overflow > 0 {
                    let _ = writeln!(out, "  >  last     {overflow}");
                }
            }
        }
        if !self.top_spans.is_empty() {
            let _ = writeln!(out, "\ntop spans by total wall-clock:");
            for span in self.top_spans.iter().take(10) {
                let _ = writeln!(
                    out,
                    "  {:<20} {:>8}x {:>14.1}us",
                    span.name, span.count, span.total_micros
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_counts_and_ranks_spans() {
        let events = vec![
            Event::NewtonIter { iteration: 1 },
            Event::NewtonConverged { iterations: 1 },
            Event::SpanBegin {
                id: 1,
                parent: 0,
                tid: 1,
                name: "slow".into(),
                ts: 0.0,
            },
            Event::SpanEnd {
                id: 1,
                micros: 100.0,
            },
            Event::SpanBegin {
                id: 2,
                parent: 0,
                tid: 1,
                name: "fast".into(),
                ts: 1.0,
            },
            Event::SpanEnd { id: 2, micros: 5.0 },
            Event::SpanBegin {
                id: 3,
                parent: 0,
                tid: 1,
                name: "open".into(),
                ts: 2.0,
            },
        ];
        let summary = Summary::of(&events);
        assert_eq!(summary.events, 7);
        assert_eq!(summary.counts.newton_iters, 1);
        assert_eq!(summary.counts.spans, 2);
        assert_eq!(summary.open_spans, 1);
        assert_eq!(summary.top_spans[0].name, "slow");
        assert_eq!(summary.top_spans[1].name, "fast");
        let text = summary.render_text();
        assert!(text.contains("newton_iters"));
        assert!(text.contains("top spans"));
        assert!(summary
            .render_prometheus()
            .contains("ferrocim_newton_iterations_total 1"));
    }
}
