//! Two-trace comparison with a regression threshold (the CI perf gate).
//!
//! Only deterministic *count* metrics are gated: Newton iterations,
//! step accept/rejects, rescues, MAC job/solve counts, and linear-solver
//! factorization counts. Wall-clock span
//! times vary run-to-run and machine-to-machine, so they are reported
//! by `trace summary` but never gated — a baseline trace recorded on
//! one host must gate identically on another.
//!
//! Baselines don't have to be full traces: [`metrics_json`] renders the
//! extracted counters as a small standalone JSON object (the format
//! `trace metrics` emits and `scripts/bench_gate.sh` checks in under
//! `baselines/`), and [`metrics_from_json`] reads it back for `trace
//! diff`, which accepts either representation on each side.

use ferrocim_telemetry::{Aggregator, Counts, Event, Recorder as _};
use serde_json::Value;

/// Default regression threshold (percent increase) for
/// `scripts/bench_gate.sh` and `trace diff` without `--threshold`.
pub const GATE_DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// One per-metric comparison between a baseline and a new trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Metric name (matches the `Counts` field).
    pub metric: String,
    /// Baseline value.
    pub base: u64,
    /// New value.
    pub new: u64,
    /// Percent change relative to the baseline (`+` = more work).
    pub pct: f64,
    /// Whether the increase exceeds the threshold. Every gated metric
    /// counts solver *work*, so only increases regress; a decrease is
    /// an improvement and never fails the gate.
    pub regressed: bool,
}

/// The deterministic count metrics the gate compares, in render order.
pub fn extract_metrics(events: &[Event]) -> Vec<(&'static str, u64)> {
    let agg = Aggregator::new();
    for event in events {
        agg.record(event);
    }
    let c: Counts = agg.counts();
    vec![
        ("newton_iters", c.newton_iters),
        ("newton_converged", c.newton_converged),
        ("steps_accepted", c.steps_accepted),
        ("steps_rejected", c.steps_rejected),
        ("rescue_attempts", c.rescue_attempts),
        ("rescues_succeeded", c.rescues_succeeded),
        ("mc_runs_started", c.mc_runs_started),
        ("mc_runs_failed", c.mc_runs_failed),
        ("mac_jobs", c.mac_jobs),
        ("mac_solves", c.mac_solves),
        ("faults_substituted", c.faults_substituted),
        // Linear-solver work: total factor+solve passes, and how many of
        // them re-ran a sparse symbolic analysis. A symbolic increase
        // means pattern reuse broke (every Newton iteration re-analyzing
        // the matrix), which is exactly the regression the gate exists
        // to catch.
        ("solver_solves", c.solver_solves),
        ("solver_symbolic", c.solver_symbolic),
        // Numerical-health work: refinement passes mean solves came back
        // over the residual tolerance, degradations mean a whole solver
        // configuration was abandoned mid-run. A rise in either says the
        // change made systems harder to solve, even if wall-clock and
        // Newton counts look flat.
        ("solves_refined", c.solves_refined),
        ("solves_degraded", c.solves_degraded),
    ]
}

/// Renders extracted metrics as the standalone baseline JSON object
/// (`trace metrics` / `baselines/*.json`), keys in gate order.
pub fn metrics_json(metrics: &[(&'static str, u64)]) -> Value {
    Value::Object(
        metrics
            .iter()
            .map(|&(name, value)| (name.to_string(), Value::Number(value as f64)))
            .collect(),
    )
}

/// Parses a baseline JSON object back into gate metrics. Every known
/// metric must be present with a non-negative integer value and no
/// unknown keys are tolerated, so a stale baseline fails loudly when
/// the gate's metric set changes.
///
/// # Errors
///
/// Returns a description of the first missing, unknown, or non-integer
/// entry.
pub fn metrics_from_json(doc: &Value) -> Result<Vec<(&'static str, u64)>, String> {
    let Value::Object(entries) = doc else {
        return Err("metrics baseline must be a JSON object".to_string());
    };
    let known = extract_metrics(&[]);
    for (key, _) in entries {
        if !known.iter().any(|&(name, _)| name == key) {
            return Err(format!(
                "unknown metric {key:?} — regenerate the baseline with \
                 scripts/bench_gate.sh --update"
            ));
        }
    }
    known
        .iter()
        .map(|&(name, _)| {
            let value = doc
                .get(name)
                .ok_or_else(|| format!("metric {name:?} missing from the baseline"))?;
            match value {
                Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Ok((name, *n as u64)),
                other => Err(format!("metric {name:?} must be a count, got {other:?}")),
            }
        })
        .collect()
}

/// Compares two event streams metric-by-metric. `threshold_pct` is the
/// largest tolerated increase; a metric appearing from a zero baseline
/// is only a regression if the new value is itself nonzero.
pub fn diff_metrics(base: &[Event], new: &[Event], threshold_pct: f64) -> Vec<Delta> {
    diff_extracted(&extract_metrics(base), &extract_metrics(new), threshold_pct)
}

/// [`diff_metrics`] over already-extracted metric lists (either side
/// may come from [`metrics_from_json`] instead of a trace).
pub fn diff_extracted(
    base: &[(&'static str, u64)],
    new: &[(&'static str, u64)],
    threshold_pct: f64,
) -> Vec<Delta> {
    base.iter()
        .copied()
        .zip(new.iter().copied())
        .map(|((metric, base), (_, new))| {
            let pct = if base == 0 {
                if new == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (new as f64 - base as f64) / base as f64 * 100.0
            };
            Delta {
                metric: metric.to_string(),
                base,
                new,
                pct,
                regressed: pct > threshold_pct,
            }
        })
        .collect()
}

/// Whether any metric in `deltas` regressed (the gate's exit status).
pub fn has_regression(deltas: &[Delta]) -> bool {
    deltas.iter().any(|d| d.regressed)
}

/// Renders the diff table (the `trace diff` output).
pub fn render_deltas(deltas: &[Delta]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>12} {:>12} {:>9}",
        "metric", "base", "new", "change"
    );
    for d in deltas {
        let marker = if d.regressed { "  REGRESSED" } else { "" };
        let pct = if d.pct.is_infinite() {
            "new".to_string()
        } else {
            format!("{:+.1}%", d.pct)
        };
        let _ = writeln!(
            out,
            "{:<20} {:>12} {:>12} {:>9}{marker}",
            d.metric, d.base, d.new, pct
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iters(n: u64) -> Vec<Event> {
        (1..=n)
            .map(|i| Event::NewtonIter { iteration: i })
            .collect()
    }

    #[test]
    fn identical_traces_never_regress() {
        let a = iters(20);
        let deltas = diff_metrics(&a, &a, GATE_DEFAULT_THRESHOLD_PCT);
        assert!(!has_regression(&deltas));
        assert!(deltas.iter().all(|d| d.pct == 0.0));
    }

    #[test]
    fn ten_percent_increase_trips_the_default_gate() {
        let base = iters(100);
        let regressed = iters(111); // +11% > 10% threshold
        let deltas = diff_metrics(&base, &regressed, GATE_DEFAULT_THRESHOLD_PCT);
        assert!(has_regression(&deltas));
        let newton = deltas.iter().find(|d| d.metric == "newton_iters").unwrap();
        assert!(newton.regressed);
        assert!((newton.pct - 11.0).abs() < 1e-9);
        // Exactly at the threshold passes: the gate is strict-greater.
        let at = diff_metrics(&iters(100), &iters(110), GATE_DEFAULT_THRESHOLD_PCT);
        assert!(!has_regression(&at));
    }

    #[test]
    fn improvements_and_zero_baselines_behave() {
        // Fewer iterations: improvement, not a regression.
        let deltas = diff_metrics(&iters(100), &iters(50), 10.0);
        assert!(!has_regression(&deltas));
        // Zero baseline, nonzero new: infinite increase, regression.
        let appeared = diff_metrics(&[], &[Event::StepRejected { time: 0.0, dt: 1.0 }], 10.0);
        assert!(has_regression(&appeared));
        // Zero to zero: clean.
        let empty = diff_metrics(&[], &[], 10.0);
        assert!(!has_regression(&empty));
    }

    #[test]
    fn metrics_round_trip_through_the_baseline_json() {
        let metrics = extract_metrics(&iters(42));
        let doc = metrics_json(&metrics);
        let text = serde_json::to_string_pretty(&doc).expect("serialize");
        let back = metrics_from_json(&serde_json::from_str(&text).expect("parse")).expect("valid");
        assert_eq!(back, metrics);
        // Diffing a trace against its own extracted baseline is clean.
        assert!(!has_regression(&diff_extracted(
            &back,
            &extract_metrics(&iters(42)),
            GATE_DEFAULT_THRESHOLD_PCT
        )));
    }

    #[test]
    fn stale_or_malformed_baselines_are_rejected() {
        let mut doc = metrics_json(&extract_metrics(&[]));
        let Value::Object(entries) = &mut doc else {
            unreachable!()
        };
        entries.push(("warp_factor".to_string(), Value::Number(9.0)));
        assert!(metrics_from_json(&doc)
            .expect_err("unknown key")
            .contains("warp_factor"));
        let Value::Object(entries) = &mut doc else {
            unreachable!()
        };
        entries.pop();
        entries.retain(|(k, _)| k != "newton_iters");
        assert!(metrics_from_json(&doc)
            .expect_err("missing key")
            .contains("newton_iters"));
        assert!(metrics_from_json(&Value::Array(Vec::new())).is_err());
    }

    #[test]
    fn render_marks_regressions() {
        let text = render_deltas(&diff_metrics(&iters(10), &iters(20), 10.0));
        assert!(text.contains("newton_iters"));
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("+100.0%"));
    }
}
