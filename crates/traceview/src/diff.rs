//! Two-trace comparison with a regression threshold (the CI perf gate).
//!
//! Only deterministic *count* metrics are gated: Newton iterations,
//! step accept/rejects, rescues, MAC job/solve counts, and linear-solver
//! factorization counts. Wall-clock span
//! times vary run-to-run and machine-to-machine, so they are reported
//! by `trace summary` but never gated — a baseline trace recorded on
//! one host must gate identically on another.
//!
//! Baselines don't have to be full traces: [`metrics_json`] renders the
//! extracted counters as a small standalone JSON object (the format
//! `trace metrics` emits and `scripts/bench_gate.sh` checks in under
//! `baselines/`), and [`metrics_from_json`] reads it back for `trace
//! diff`, which accepts either representation on each side.

use ferrocim_telemetry::{Aggregator, Counts, Event, Recorder as _};
use serde_json::Value;

/// Default regression threshold (percent increase) for
/// `scripts/bench_gate.sh` and `trace diff` without `--threshold`.
pub const GATE_DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// One per-metric comparison between a baseline and a new trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Metric name (matches the `Counts` field).
    pub metric: String,
    /// Baseline value.
    pub base: u64,
    /// New value.
    pub new: u64,
    /// Percent change relative to the baseline (`+` = more work).
    pub pct: f64,
    /// Whether the increase exceeds the threshold. Every gated metric
    /// counts solver *work*, so only increases regress; a decrease is
    /// an improvement and never fails the gate.
    pub regressed: bool,
}

/// A typed structural mismatch between the two metric sets being
/// diffed. Counter sets can drift when one side is an extract written
/// by an older (or newer) `trace` binary; a plain zip used to drop the
/// unmatched counters silently, so a baseline counter with no candidate
/// measurement read as a pass.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffWarning {
    /// A counter present in the baseline has no measurement in the
    /// candidate. This always fails the gate: the baseline promised
    /// work that the candidate never measured, which is
    /// indistinguishable from the instrumentation silently breaking.
    MissingCounter {
        /// The unmatched metric name.
        metric: String,
        /// Its baseline value.
        base: u64,
    },
    /// A counter present in the candidate has no baseline entry. Fails
    /// the gate only when the candidate value is nonzero (unaccounted
    /// new work — the same rule as a nonzero rise from a zero
    /// baseline); a zero merely warns that the baseline is stale.
    UnknownCounter {
        /// The unmatched metric name.
        metric: String,
        /// Its candidate value.
        new: u64,
    },
}

impl std::fmt::Display for DiffWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffWarning::MissingCounter { metric, base } => write!(
                f,
                "MissingCounter: baseline has {metric} = {base} but the candidate \
                 did not measure it"
            ),
            DiffWarning::UnknownCounter { metric, new } => write!(
                f,
                "UnknownCounter: candidate measured {metric} = {new} but the \
                 baseline has no entry — regenerate with scripts/bench_gate.sh --update"
            ),
        }
    }
}

/// The full result of one metric diff: per-metric deltas over the
/// counters both sides measured, plus typed warnings for the counters
/// only one side has.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Per-metric comparisons over the matched counters.
    pub deltas: Vec<Delta>,
    /// Structural mismatches between the two counter sets.
    pub warnings: Vec<DiffWarning>,
}

/// The deterministic count metrics the gate compares, in render order.
pub fn extract_metrics(events: &[Event]) -> Vec<(&'static str, u64)> {
    let agg = Aggregator::new();
    for event in events {
        agg.record(event);
    }
    let c: Counts = agg.counts();
    vec![
        ("newton_iters", c.newton_iters),
        ("newton_converged", c.newton_converged),
        ("steps_accepted", c.steps_accepted),
        ("steps_rejected", c.steps_rejected),
        ("rescue_attempts", c.rescue_attempts),
        ("rescues_succeeded", c.rescues_succeeded),
        ("mc_runs_started", c.mc_runs_started),
        ("mc_runs_failed", c.mc_runs_failed),
        ("mac_jobs", c.mac_jobs),
        ("mac_solves", c.mac_solves),
        ("faults_substituted", c.faults_substituted),
        // Linear-solver work: total factor+solve passes, and how many of
        // them re-ran a sparse symbolic analysis. A symbolic increase
        // means pattern reuse broke (every Newton iteration re-analyzing
        // the matrix), which is exactly the regression the gate exists
        // to catch.
        ("solver_solves", c.solver_solves),
        ("solver_symbolic", c.solver_symbolic),
        // Numerical-health work: refinement passes mean solves came back
        // over the residual tolerance, degradations mean a whole solver
        // configuration was abandoned mid-run. A rise in either says the
        // change made systems harder to solve, even if wall-clock and
        // Newton counts look flat.
        ("solves_refined", c.solves_refined),
        ("solves_degraded", c.solves_degraded),
        // Serving-layer robustness outcomes: admissions, typed sheds,
        // backoff retries, degraded fallbacks, and breaker trips. These
        // gate the serve smoke traces; on solver-only probes they are
        // simply zero on both sides.
        ("serve_admitted", c.serve_admitted),
        ("serve_shed", c.serve_shed),
        ("serve_retries", c.serve_retries),
        ("serve_degraded", c.serve_degraded),
        ("serve_breaker_open", c.serve_breaker_open),
        ("serve_done", c.serve_done),
        ("slo_breaches", c.slo_breaches),
        // Surrogate fast-path outcomes: cache hits/misses plus the
        // check-mode subsample and its envelope violations. A hit count
        // falling (or a miss count rising) means the content-addressed
        // keys stopped matching; any check failure means the certified
        // error envelope was violated in production.
        ("surrogate_hits", c.surrogate_hits),
        ("surrogate_misses", c.surrogate_misses),
        ("surrogate_checks", c.surrogate_checks),
        ("surrogate_check_failures", c.surrogate_check_failures),
    ]
}

/// Renders extracted metrics as the standalone baseline JSON object
/// (`trace metrics` / `baselines/*.json`), keys in gate order.
pub fn metrics_json(metrics: &[(&'static str, u64)]) -> Value {
    Value::Object(
        metrics
            .iter()
            .map(|&(name, value)| (name.to_string(), Value::Number(value as f64)))
            .collect(),
    )
}

/// Parses a baseline JSON object back into gate metrics. Every entry
/// must be a known metric with a non-negative integer value (unknown
/// keys fail loudly, so an arbitrary JSON object is never mistaken for
/// a baseline), but a known metric may be *absent* — extracts written
/// before a gate counter existed still parse, and [`diff_extracted`]
/// reports the gap as a typed [`DiffWarning::MissingCounter`] /
/// [`DiffWarning::UnknownCounter`] instead of this function guessing a
/// zero.
///
/// # Errors
///
/// Returns a description of the first unknown or non-integer entry, or
/// of an object containing no known metric at all.
pub fn metrics_from_json(doc: &Value) -> Result<Vec<(&'static str, u64)>, String> {
    let Value::Object(entries) = doc else {
        return Err("metrics baseline must be a JSON object".to_string());
    };
    let known = extract_metrics(&[]);
    for (key, _) in entries {
        if !known.iter().any(|&(name, _)| name == key) {
            return Err(format!(
                "unknown metric {key:?} — regenerate the baseline with \
                 scripts/bench_gate.sh --update"
            ));
        }
    }
    let mut metrics = Vec::new();
    for &(name, _) in &known {
        let Some(value) = doc.get(name) else {
            continue;
        };
        match value {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => metrics.push((name, *n as u64)),
            other => return Err(format!("metric {name:?} must be a count, got {other:?}")),
        }
    }
    if metrics.is_empty() {
        return Err("metrics baseline contains no known metric".to_string());
    }
    Ok(metrics)
}

/// Compares two event streams metric-by-metric. `threshold_pct` is the
/// largest tolerated increase; a metric appearing from a zero baseline
/// is only a regression if the new value is itself nonzero.
pub fn diff_metrics(base: &[Event], new: &[Event], threshold_pct: f64) -> DiffReport {
    diff_extracted(&extract_metrics(base), &extract_metrics(new), threshold_pct)
}

/// [`diff_metrics`] over already-extracted metric lists (either side
/// may come from [`metrics_from_json`] instead of a trace). Counters
/// are matched *by name*, not by position: a counter present on only
/// one side becomes a typed [`DiffWarning`] instead of being silently
/// dropped or read as zero.
pub fn diff_extracted(
    base: &[(&'static str, u64)],
    new: &[(&'static str, u64)],
    threshold_pct: f64,
) -> DiffReport {
    let mut deltas = Vec::new();
    let mut warnings = Vec::new();
    for &(metric, base_value) in base {
        let Some(&(_, new_value)) = new.iter().find(|&&(name, _)| name == metric) else {
            warnings.push(DiffWarning::MissingCounter {
                metric: metric.to_string(),
                base: base_value,
            });
            continue;
        };
        let pct = if base_value == 0 {
            if new_value == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (new_value as f64 - base_value as f64) / base_value as f64 * 100.0
        };
        deltas.push(Delta {
            metric: metric.to_string(),
            base: base_value,
            new: new_value,
            pct,
            regressed: pct > threshold_pct,
        });
    }
    for &(metric, new_value) in new {
        if !base.iter().any(|&(name, _)| name == metric) {
            warnings.push(DiffWarning::UnknownCounter {
                metric: metric.to_string(),
                new: new_value,
            });
        }
    }
    DiffReport { deltas, warnings }
}

/// Whether the report fails the gate: a matched metric regressed, a
/// baseline counter went unmeasured ([`DiffWarning::MissingCounter`]),
/// or an unbaselined counter measured nonzero work.
pub fn has_regression(report: &DiffReport) -> bool {
    report.deltas.iter().any(|d| d.regressed)
        || report.warnings.iter().any(|w| match w {
            DiffWarning::MissingCounter { .. } => true,
            DiffWarning::UnknownCounter { new, .. } => *new > 0,
        })
}

/// Renders the diff table plus any typed warnings (the `trace diff`
/// output).
pub fn render_deltas(report: &DiffReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>12} {:>12} {:>9}",
        "metric", "base", "new", "change"
    );
    for d in &report.deltas {
        let marker = if d.regressed { "  REGRESSED" } else { "" };
        let pct = if d.pct.is_infinite() {
            "new".to_string()
        } else {
            format!("{:+.1}%", d.pct)
        };
        let _ = writeln!(
            out,
            "{:<20} {:>12} {:>12} {:>9}{marker}",
            d.metric, d.base, d.new, pct
        );
    }
    for warning in &report.warnings {
        let _ = writeln!(out, "warning: {warning}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iters(n: u64) -> Vec<Event> {
        (1..=n)
            .map(|i| Event::NewtonIter { iteration: i })
            .collect()
    }

    #[test]
    fn identical_traces_never_regress() {
        let a = iters(20);
        let report = diff_metrics(&a, &a, GATE_DEFAULT_THRESHOLD_PCT);
        assert!(!has_regression(&report));
        assert!(report.warnings.is_empty());
        assert!(report.deltas.iter().all(|d| d.pct == 0.0));
    }

    #[test]
    fn ten_percent_increase_trips_the_default_gate() {
        let base = iters(100);
        let regressed = iters(111); // +11% > 10% threshold
        let report = diff_metrics(&base, &regressed, GATE_DEFAULT_THRESHOLD_PCT);
        assert!(has_regression(&report));
        let newton = report
            .deltas
            .iter()
            .find(|d| d.metric == "newton_iters")
            .unwrap();
        assert!(newton.regressed);
        assert!((newton.pct - 11.0).abs() < 1e-9);
        // Exactly at the threshold passes: the gate is strict-greater.
        let at = diff_metrics(&iters(100), &iters(110), GATE_DEFAULT_THRESHOLD_PCT);
        assert!(!has_regression(&at));
    }

    #[test]
    fn improvements_and_zero_baselines_behave() {
        // Fewer iterations: improvement, not a regression.
        let deltas = diff_metrics(&iters(100), &iters(50), 10.0);
        assert!(!has_regression(&deltas));
        // Zero baseline, nonzero new: infinite increase, regression.
        let appeared = diff_metrics(&[], &[Event::StepRejected { time: 0.0, dt: 1.0 }], 10.0);
        assert!(has_regression(&appeared));
        // Zero to zero: clean.
        let empty = diff_metrics(&[], &[], 10.0);
        assert!(!has_regression(&empty));
    }

    #[test]
    fn metrics_round_trip_through_the_baseline_json() {
        let metrics = extract_metrics(&iters(42));
        let doc = metrics_json(&metrics);
        let text = serde_json::to_string_pretty(&doc).expect("serialize");
        let back = metrics_from_json(&serde_json::from_str(&text).expect("parse")).expect("valid");
        assert_eq!(back, metrics);
        // Diffing a trace against its own extracted baseline is clean.
        assert!(!has_regression(&diff_extracted(
            &back,
            &extract_metrics(&iters(42)),
            GATE_DEFAULT_THRESHOLD_PCT
        )));
    }

    #[test]
    fn stale_or_malformed_baselines_are_rejected() {
        let mut doc = metrics_json(&extract_metrics(&[]));
        let Value::Object(entries) = &mut doc else {
            unreachable!()
        };
        entries.push(("warp_factor".to_string(), Value::Number(9.0)));
        assert!(metrics_from_json(&doc)
            .expect_err("unknown key")
            .contains("warp_factor"));
        let Value::Object(entries) = &mut doc else {
            unreachable!()
        };
        entries.pop();
        entries.retain(|(k, _)| k != "newton_iters");
        entries.push(("newton_iters".to_string(), Value::Number(1.5)));
        assert!(metrics_from_json(&doc)
            .expect_err("non-integer value")
            .contains("newton_iters"));
        assert!(metrics_from_json(&Value::Array(Vec::new())).is_err());
        assert!(metrics_from_json(&Value::Object(Vec::new())).is_err());
    }

    #[test]
    fn extracts_missing_known_keys_still_parse() {
        // An extract written before a gate counter existed parses into
        // the subset it carries; the gap is reported by the diff, not
        // invented as a zero here.
        let mut doc = metrics_json(&extract_metrics(&iters(7)));
        let Value::Object(entries) = &mut doc else {
            unreachable!()
        };
        entries.retain(|(k, _)| k != "newton_iters");
        let parsed = metrics_from_json(&doc).expect("missing known key is tolerated");
        assert!(!parsed.iter().any(|&(name, _)| name == "newton_iters"));
        assert_eq!(parsed.len(), extract_metrics(&[]).len() - 1);
    }

    #[test]
    fn baseline_only_counter_is_a_missing_counter_failure() {
        // Direction 1 of the satellite: a counter present in the
        // baseline but absent from the candidate used to be silently
        // dropped by the positional zip; it must now fail typed.
        let base = extract_metrics(&iters(5));
        let candidate: Vec<(&'static str, u64)> = base
            .iter()
            .copied()
            .filter(|&(name, _)| name != "newton_iters")
            .collect();
        let report = diff_extracted(&base, &candidate, GATE_DEFAULT_THRESHOLD_PCT);
        assert_eq!(
            report.warnings,
            vec![DiffWarning::MissingCounter {
                metric: "newton_iters".to_string(),
                base: 5,
            }]
        );
        assert!(has_regression(&report), "MissingCounter always fails");
        // The matched counters still produce clean deltas.
        assert_eq!(report.deltas.len(), base.len() - 1);
        assert!(report.deltas.iter().all(|d| !d.regressed));
    }

    #[test]
    fn candidate_only_counter_is_an_unknown_counter() {
        // Direction 2: a candidate counter with no baseline entry warns,
        // and fails only when it measured nonzero work (the same rule as
        // a nonzero rise from a zero baseline).
        let candidate = extract_metrics(&iters(5));
        let base: Vec<(&'static str, u64)> = candidate
            .iter()
            .copied()
            .filter(|&(name, _)| name != "serve_shed")
            .collect();
        let zero = diff_extracted(&base, &candidate, GATE_DEFAULT_THRESHOLD_PCT);
        assert_eq!(
            zero.warnings,
            vec![DiffWarning::UnknownCounter {
                metric: "serve_shed".to_string(),
                new: 0,
            }]
        );
        assert!(
            !has_regression(&zero),
            "a zero unknown counter warns without failing"
        );
        let mut shedding = candidate.clone();
        for entry in &mut shedding {
            if entry.0 == "serve_shed" {
                entry.1 = 3;
            }
        }
        let nonzero = diff_extracted(&base, &shedding, GATE_DEFAULT_THRESHOLD_PCT);
        assert_eq!(
            nonzero.warnings,
            vec![DiffWarning::UnknownCounter {
                metric: "serve_shed".to_string(),
                new: 3,
            }]
        );
        assert!(has_regression(&nonzero), "nonzero unknown work fails");
    }

    #[test]
    fn render_marks_regressions() {
        let text = render_deltas(&diff_metrics(&iters(10), &iters(20), 10.0));
        assert!(text.contains("newton_iters"));
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("+100.0%"));
        // Warnings render with their typed names.
        let base = extract_metrics(&iters(5));
        let candidate: Vec<(&'static str, u64)> = base
            .iter()
            .copied()
            .filter(|&(name, _)| name != "newton_iters")
            .collect();
        let warned = render_deltas(&diff_extracted(&base, &candidate, 10.0));
        assert!(warned.contains("warning: MissingCounter"));
        assert!(warned.contains("newton_iters"));
    }
}
