//! Span-tree reconstruction from flat `SpanBegin`/`SpanEnd` streams.

use ferrocim_telemetry::Event;
use std::collections::HashMap;

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Process-unique span id from the trace.
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Sequential id of the emitting thread.
    pub tid: u64,
    /// Span label (`nn.forward`, `cim.mac_batch`, `spice.transient`, …).
    pub name: String,
    /// Begin timestamp, microseconds since the trace epoch.
    pub ts: f64,
    /// Wall-clock duration in microseconds; `None` for a span whose
    /// end never made it into the trace (crashed or truncated run).
    pub micros: Option<f64>,
    /// Arena indices of child spans, in begin order.
    pub children: Vec<usize>,
}

/// The causal span forest of one trace (an arena of [`SpanNode`]s).
///
/// Begin/end events are matched by id; a `parent` id that never begins
/// in the trace (e.g. the trace was filtered) demotes the child to a
/// root rather than dropping it.
#[derive(Debug, Default)]
pub struct SpanTree {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
    orphan_ends: usize,
}

impl SpanTree {
    /// Builds the forest from an event stream.
    pub fn build(events: &[Event]) -> SpanTree {
        let mut nodes: Vec<SpanNode> = Vec::new();
        let mut index_of: HashMap<u64, usize> = HashMap::new();
        let mut orphan_ends = 0usize;
        for event in events {
            match event {
                Event::SpanBegin {
                    id,
                    parent,
                    tid,
                    name,
                    ts,
                } => {
                    let index = nodes.len();
                    nodes.push(SpanNode {
                        id: *id,
                        parent: *parent,
                        tid: *tid,
                        name: name.clone(),
                        ts: *ts,
                        micros: None,
                        children: Vec::new(),
                    });
                    index_of.insert(*id, index);
                }
                Event::SpanEnd { id, micros } => match index_of.get(id) {
                    Some(&index) => nodes[index].micros = Some(*micros),
                    None => orphan_ends += 1,
                },
                _ => {}
            }
        }
        let mut roots = Vec::new();
        for index in 0..nodes.len() {
            let parent = nodes[index].parent;
            match (parent != 0).then(|| index_of.get(&parent)).flatten() {
                Some(&p) => nodes[p].children.push(index),
                None => roots.push(index),
            }
        }
        SpanTree {
            nodes,
            roots,
            orphan_ends,
        }
    }

    /// All spans, in begin order.
    pub fn nodes(&self) -> &[SpanNode] {
        &self.nodes
    }

    /// Arena indices of root spans (no parent in this trace).
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// `SpanEnd` events whose begin never appeared (filtered or torn
    /// traces).
    pub fn orphan_ends(&self) -> usize {
        self.orphan_ends
    }

    /// Spans missing their end event (open at crash/truncation).
    pub fn open_spans(&self) -> usize {
        self.nodes.iter().filter(|n| n.micros.is_none()).count()
    }

    /// Renders the forest as an indented text tree, depth-first in
    /// begin order (the `trace summary` span section).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut stack: Vec<(usize, usize)> = self.roots.iter().rev().map(|&i| (i, 0)).collect();
        while let Some((index, depth)) = stack.pop() {
            let node = &self.nodes[index];
            let dur = match node.micros {
                Some(us) => format!("{us:.1}us"),
                None => "open".to_string(),
            };
            let _ = writeln!(
                out,
                "{:indent$}{} [{}] tid={} ts={:.1}us",
                "",
                node.name,
                dur,
                node.tid,
                node.ts,
                indent = depth * 2
            );
            for &child in node.children.iter().rev() {
                stack.push((child, depth + 1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(id: u64, parent: u64, tid: u64, name: &str, ts: f64) -> Event {
        Event::SpanBegin {
            id,
            parent,
            tid,
            name: name.to_string(),
            ts,
        }
    }

    fn end(id: u64, micros: f64) -> Event {
        Event::SpanEnd { id, micros }
    }

    #[test]
    fn builds_nested_tree_with_cross_thread_parent() {
        let events = vec![
            begin(1, 0, 1, "nn.forward", 0.0),
            begin(2, 1, 1, "cim.mac_batch", 1.0),
            // Worker on another thread, parented explicitly by id.
            begin(3, 2, 2, "cim.row_solve", 2.0),
            end(3, 5.0),
            end(2, 8.0),
            end(1, 10.0),
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.nodes().len(), 3);
        assert_eq!(tree.roots(), &[0]);
        let root = &tree.nodes()[0];
        assert_eq!(root.name, "nn.forward");
        assert_eq!(root.children, vec![1]);
        let batch = &tree.nodes()[1];
        assert_eq!(batch.children, vec![2]);
        let solve = &tree.nodes()[tree.nodes()[1].children[0]];
        assert_eq!(solve.tid, 2);
        assert_eq!(solve.micros, Some(5.0));
        assert_eq!(tree.open_spans(), 0);
        assert_eq!(tree.orphan_ends(), 0);
    }

    #[test]
    fn missing_parent_demotes_to_root_and_torn_spans_are_counted() {
        let events = vec![
            begin(7, 99, 1, "child_of_filtered", 0.0),
            end(8, 1.0), // end without begin
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.roots(), &[0]);
        assert_eq!(tree.open_spans(), 1);
        assert_eq!(tree.orphan_ends(), 1);
    }

    #[test]
    fn render_text_indents_children() {
        let events = vec![
            begin(1, 0, 1, "outer", 0.0),
            begin(2, 1, 1, "inner", 1.0),
            end(2, 2.0),
            end(1, 4.0),
        ];
        let text = SpanTree::build(&events).render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("outer"));
        assert!(lines[1].starts_with("  inner"));
    }
}
