//! End-to-end tests of the `trace` binary: summary, diff exit codes,
//! and Chrome export on real JSONL traces written by `JsonlSink`.

use ferrocim_telemetry::{Event, JsonlSink, Recorder as _};
use std::path::PathBuf;
use std::process::Command;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ferrocim-trace-cli-{name}-{}", std::process::id()))
}

fn write_trace(name: &str, newton_iters: u64) -> PathBuf {
    let path = temp_path(name);
    let sink = JsonlSink::create(&path).expect("create");
    sink.record(&Event::SpanBegin {
        id: 1,
        parent: 0,
        tid: 1,
        name: "nn.forward".into(),
        ts: 0.0,
    });
    sink.record(&Event::SpanBegin {
        id: 2,
        parent: 1,
        tid: 1,
        name: "cim.mac_batch".into(),
        ts: 1.0,
    });
    for i in 1..=newton_iters {
        sink.record(&Event::NewtonIter { iteration: i });
    }
    sink.record(&Event::NewtonConverged {
        iterations: newton_iters,
    });
    sink.record(&Event::SpanEnd { id: 2, micros: 8.0 });
    sink.record(&Event::SpanEnd {
        id: 1,
        micros: 10.0,
    });
    sink.finish().expect("finish");
    path
}

fn trace_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trace"))
}

#[test]
fn summary_reports_counts_and_tree() {
    let path = write_trace("summary", 4);
    let out = trace_bin()
        .args(["summary", path.to_str().expect("utf8"), "--tree"])
        .output()
        .expect("run trace");
    let _ = std::fs::remove_file(&path);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("newton_iters          4"));
    assert!(stdout.contains("nn.forward"));
    assert!(stdout.contains("  cim.mac_batch"), "tree is indented");
}

#[test]
fn diff_is_zero_on_identical_and_nonzero_on_regression() {
    let base = write_trace("diff-base", 10);
    let same = write_trace("diff-same", 10);
    let worse = write_trace("diff-worse", 12); // +20% > 10% default
    let ok = trace_bin()
        .args([
            "diff",
            base.to_str().expect("utf8"),
            same.to_str().expect("utf8"),
        ])
        .output()
        .expect("run trace");
    assert!(ok.status.success(), "identical traces must pass the gate");
    let bad = trace_bin()
        .args([
            "diff",
            base.to_str().expect("utf8"),
            worse.to_str().expect("utf8"),
        ])
        .output()
        .expect("run trace");
    assert_eq!(bad.status.code(), Some(1), "regression exits 1");
    let stdout = String::from_utf8(bad.stdout).expect("utf8");
    assert!(stdout.contains("REGRESSED"));
    // A generous threshold lets the same pair pass.
    let lenient = trace_bin()
        .args([
            "diff",
            base.to_str().expect("utf8"),
            worse.to_str().expect("utf8"),
            "--threshold",
            "50",
        ])
        .output()
        .expect("run trace");
    assert!(lenient.status.success());
    for p in [base, same, worse] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn diff_accepts_a_metrics_baseline_on_either_side() {
    let base_trace = write_trace("metrics-base", 10);
    let baseline = temp_path("metrics-base.json");
    let out = trace_bin()
        .args([
            "metrics",
            base_trace.to_str().expect("utf8"),
            "-o",
            baseline.to_str().expect("utf8"),
        ])
        .output()
        .expect("run trace");
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(text.contains("\"newton_iters\": 10"));

    // Metrics baseline vs the trace it came from: clean.
    let same = trace_bin()
        .args([
            "diff",
            baseline.to_str().expect("utf8"),
            base_trace.to_str().expect("utf8"),
        ])
        .output()
        .expect("run trace");
    assert!(same.status.success(), "self-diff must pass the gate");
    // Metrics baseline vs a regressed trace: gate trips.
    let worse = write_trace("metrics-worse", 12);
    let bad = trace_bin()
        .args([
            "diff",
            baseline.to_str().expect("utf8"),
            worse.to_str().expect("utf8"),
        ])
        .output()
        .expect("run trace");
    assert_eq!(bad.status.code(), Some(1), "regression exits 1");
    for p in [base_trace, baseline, worse] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn diff_rejects_mixed_version_traces() {
    let base = write_trace("mixed-base", 5);
    let forged = temp_path("mixed-forged");
    let mut raw = std::fs::read_to_string(&base).expect("read base");
    raw.push_str("{\"format\":\"ferrocim-trace-v2\"}\n");
    std::fs::write(&forged, raw).expect("write forged");
    let out = trace_bin()
        .args([
            "diff",
            base.to_str().expect("utf8"),
            forged.to_str().expect("utf8"),
        ])
        .output()
        .expect("run trace");
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&forged);
    assert_eq!(out.status.code(), Some(2), "trace errors exit 2");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("mixed-version"),
        "typed mixed-version message, got: {stderr}"
    );
}

#[test]
fn export_chrome_writes_loadable_trace_event_json() {
    let path = write_trace("chrome", 3);
    let out_json = temp_path("chrome-out.json");
    let out = trace_bin()
        .args([
            "export",
            "--chrome",
            path.to_str().expect("utf8"),
            "-o",
            out_json.to_str().expect("utf8"),
        ])
        .output()
        .expect("run trace");
    let _ = std::fs::remove_file(&path);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = std::fs::read_to_string(&out_json).expect("chrome json written");
    let _ = std::fs::remove_file(&out_json);
    let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let serde_json::Value::Array(events) = doc.get("traceEvents").expect("traceEvents").clone()
    else {
        panic!("traceEvents is an array");
    };
    assert_eq!(events.len(), 2);
    assert_eq!(
        events[0].get("ph"),
        Some(&serde_json::Value::String("X".to_string()))
    );
}
