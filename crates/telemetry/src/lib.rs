//! Zero-overhead-when-off observability for the `ferrocim` stack.
//!
//! The paper's evaluation is a fleet of long-running sweeps (Monte-Carlo
//! over device variation, 0–85 °C temperature grids, VGG/CIFAR-10
//! inference through simulated rows). This crate is the substrate for
//! watching those runs without slowing them down:
//!
//! * [`Event`] — the typed vocabulary emitted by the hot loops of
//!   `ferrocim-spice` (Newton iterations, adaptive-step accept/reject,
//!   rescue-ladder rungs, budget spend, Monte-Carlo runs),
//!   `ferrocim-cim` (batched MAC issues, fault substitutions), and
//!   `ferrocim-nn` (training epochs).
//! * [`Recorder`] — the sink trait; [`NoopRecorder`], [`Aggregator`]
//!   (atomic counters + fixed-bucket histograms, mergeable across
//!   `fan_out` threads, with a Prometheus-style text exposition), and
//!   [`JsonlSink`] (buffered JSONL stream with a versioned schema and
//!   atomic tmp+rename close) implement it. [`Tee`] fans one event
//!   stream out to several sinks.
//! * [`Telemetry`] — the cheap clone-shared handle plumbed through the
//!   simulation builders (the same way `Budget` is). The default
//!   handle is enum-dispatched to a no-op: when telemetry is off, an
//!   instrumentation site costs one discriminant check and the event
//!   is never even constructed. An on handle records at a
//!   [`DetailLevel`]; [`DetailLevel::Iterations`] adds per-iteration
//!   Newton residual/damping diagnostics ([`Event::NewtonResidual`]).
//! * [`FlightRecorder`] — the always-on retroactive sink: a
//!   fixed-capacity ring (per-thread segments stitched by a global
//!   epoch) retaining the last N events, whose snapshot is a valid
//!   `ferrocim-trace-v1` document, with [`DumpOn`] trigger hooks that
//!   write atomic dumps when a breaker trips or the SLO burn-rate
//!   monitor (in [`Aggregator`]) latches a breach.
//! * [`Span`] — scoped wall-clock timers forming a causal tree: each
//!   span gets a process-unique [`SpanId`] and a parent (the innermost
//!   open span on the thread, or an explicit id via
//!   [`Telemetry::span_under`] for cross-thread work), emitting
//!   [`Event::SpanBegin`] on open and [`Event::SpanEnd`] on drop. When
//!   telemetry is off, no id is allocated and the clock is never read.
//!
//! # Example
//!
//! ```
//! use ferrocim_telemetry::{Aggregator, Event, Telemetry};
//! use std::sync::Arc;
//!
//! let agg = Arc::new(Aggregator::new());
//! let tele = Telemetry::new(agg.clone());
//! tele.emit(|| Event::StepAccepted { time: 0.0, dt: 1e-12 });
//! {
//!     let _timer = tele.span("solve");
//! } // emits Event::SpanBegin on open, Event::SpanEnd on drop
//! assert_eq!(agg.counts().steps_accepted, 1);
//! assert_eq!(agg.counts().spans, 1);
//!
//! // The default handle is off: the closure is never run.
//! let off = Telemetry::off();
//! off.emit(|| unreachable!("not constructed when telemetry is off"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod aggregate;
mod event;
mod flight;
mod recorder;
mod sink;

pub use aggregate::{
    Aggregator, Counts, Histogram, LabeledCount, LabeledCounts, SloBreachInfo, SloPolicy,
};
pub use event::{
    DegradeStageKind, Event, ResourceKind, RungKind, ServeBackendKind, ServeOutcome, SolverBackend,
    TRACE_FORMAT,
};
pub use flight::{DumpOn, FlightEntry, FlightRecorder};
pub use recorder::{DetailLevel, NoopRecorder, Recorder, Span, SpanId, Tee, Telemetry};
pub use sink::{read_trace, render_trace, write_trace, JsonlSink, TraceError};
