//! The typed event vocabulary shared by every instrumented layer.

use serde::{Deserialize, Serialize};

/// Schema version string carried by the header line of every JSONL
/// trace (see [`crate::JsonlSink`]), mirroring the versioned
/// `ferrocim-mc-checkpoint-v1` convention of `McCheckpoint`.
pub const TRACE_FORMAT: &str = "ferrocim-trace-v1";

/// Which budgeted resource a [`Event::BudgetSpend`] charge drew from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Newton–Raphson iterations (`Budget::charge_newton`).
    NewtonIterations,
    /// Transient/sweep/batch steps (`Budget::charge_steps`).
    Steps,
}

/// Which rung of the convergence-rescue ladder an attempt ran on.
///
/// Mirrors `ferrocim_spice::RescueRung` without the rung parameters, so
/// the event stays `Copy` and allocation-free on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RungKind {
    /// The plain Newton retry from the last good state.
    PlainNewton,
    /// Newton with a tighter damping clamp.
    Damping,
    /// Gmin stepping (conductance ladder).
    GminStepping,
    /// Source stepping (supplies ramped from zero).
    SourceStepping,
}

/// Which linear-solver backend performed a [`Event::SolverSolved`]
/// solve.
///
/// Mirrors `ferrocim_spice`'s solver selection without the solver
/// internals, so the event stays `Copy` and allocation-free on the hot
/// path (the same convention as [`RungKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverBackend {
    /// Dense LU with partial pivoting.
    Dense,
    /// Sparse KLU-style LU (symbolic analysis reused across solves).
    Sparse,
}

/// Which rung of the solver degradation ladder a
/// [`Event::SolveDegraded`] escalation landed on.
///
/// Mirrors the ladder in `ferrocim_spice`'s workspace without the
/// solver internals, so the event stays `Copy` and allocation-free on
/// the hot path (the same convention as [`RungKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeStageKind {
    /// The sparse backend discarded its symbolic analysis and re-ran
    /// the fused symbolic + numeric factorization.
    FreshSymbolic,
    /// The sparse backend was rebuilt with the alternate fill ordering.
    AlternateOrdering,
    /// The system fell back to the dense LU backend.
    DenseFallback,
}

/// How one `ferrocim-serve` request terminated, as carried by
/// [`Event::ServeDone`].
///
/// The taxonomy mirrors the typed response bodies of the serve API:
/// every terminal answer the service can produce maps onto exactly one
/// variant, which is what makes per-tenant outcome counting and the SLO
/// error budget well-defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServeOutcome {
    /// A `200` answered live or by the certified surrogate fast path.
    Ok,
    /// A `200` answered by the degraded fallback tier.
    Degraded,
    /// A typed `429` shed (queue full, tenant quota, or draining).
    Shed,
    /// A typed `504` deadline expiry (queued or mid-solve).
    Deadline,
    /// A typed `400`: the client's request never entered the solve
    /// path. Rejections do not burn the SLO error budget.
    Rejected,
    /// A typed `500` (fatal solver misuse or a contained worker panic).
    Error,
}

impl ServeOutcome {
    /// The lowercase label used for Prometheus `outcome` label values.
    pub fn label(self) -> &'static str {
        match self {
            ServeOutcome::Ok => "ok",
            ServeOutcome::Degraded => "degraded",
            ServeOutcome::Shed => "shed",
            ServeOutcome::Deadline => "deadline",
            ServeOutcome::Rejected => "rejected",
            ServeOutcome::Error => "error",
        }
    }

    /// Whether this outcome burns the SLO error budget (shed, degraded,
    /// deadline, and internal errors do; successes and client-side
    /// rejections do not).
    pub fn burns_error_budget(self) -> bool {
        matches!(
            self,
            ServeOutcome::Degraded
                | ServeOutcome::Shed
                | ServeOutcome::Deadline
                | ServeOutcome::Error
        )
    }
}

/// Which tier produced the answer carried by an [`Event::ServeDone`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServeBackendKind {
    /// A live solve through the full solver stack.
    Live,
    /// The certified surrogate fast path.
    Surrogate,
    /// The degraded fallback curve.
    Fallback,
    /// No tier ran (sheds, rejections, queued deadline expiries).
    None,
}

impl ServeBackendKind {
    /// The lowercase label used for Prometheus `backend` label values.
    pub fn label(self) -> &'static str {
        match self {
            ServeBackendKind::Live => "live",
            ServeBackendKind::Surrogate => "surrogate",
            ServeBackendKind::Fallback => "fallback",
            ServeBackendKind::None => "none",
        }
    }
}

/// One observation from an instrumented hot loop.
///
/// Events are deliberately flat and (except for [`Event::SpanBegin`] and
/// [`Event::Manifest`]) allocation-free, so constructing one costs a
/// handful of register writes; sites behind a disabled [`crate::Telemetry`]
/// handle never construct them at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// One Newton–Raphson iteration ran (converged or not).
    NewtonIter {
        /// 1-based iteration index within the enclosing solve.
        iteration: u64,
    },
    /// Per-iteration Newton diagnostics, emitted only at
    /// [`crate::DetailLevel::Iterations`]: the residual norm (largest
    /// damped update applied to any unknown, in volts) and the damping
    /// factor the clamp applied (1.0 = undamped).
    NewtonResidual {
        /// 1-based iteration index within the enclosing solve.
        iteration: u64,
        /// Largest absolute damped Newton update this iteration (V).
        residual: f64,
        /// `min(1, max_step / raw_update)`: 1.0 means the step was not
        /// clamped, smaller values mean the damping limiter engaged.
        damping: f64,
    },
    /// A Newton solve converged.
    NewtonConverged {
        /// Iterations the solve needed.
        iterations: u64,
    },
    /// One linear system was factored and solved (one per Newton
    /// iteration). `symbolic` is true when the solve had to run a fresh
    /// symbolic analysis first — for the sparse backend on a fixed
    /// topology this happens exactly once, so a trace showing
    /// `solver_solves = N, solver_symbolic = 1` proves the KLU-style
    /// pattern reuse is working.
    SolverSolved {
        /// The backend that performed the solve.
        backend: SolverBackend,
        /// Whether a symbolic analysis ran as part of this solve.
        symbolic: bool,
    },
    /// A certified solve needed iterative refinement to reach the
    /// residual tolerance (see `ferrocim_spice`'s `HealthPolicy`).
    SolveRefined {
        /// Refinement passes applied.
        passes: u64,
        /// Relative backward error after the final pass.
        residual: f64,
    },
    /// A certified solve failed refinement and escalated one rung down
    /// the solver degradation ladder.
    SolveDegraded {
        /// The ladder stage the solve escalated to.
        stage: DegradeStageKind,
        /// The relative backward error that triggered the escalation.
        residual: f64,
    },
    /// An adaptive (or fixed-grid) transient step was accepted.
    StepAccepted {
        /// Simulation time at the end of the step, in seconds.
        time: f64,
        /// The accepted step size, in seconds.
        dt: f64,
    },
    /// An adaptive transient step was rejected (LTE too large or the
    /// solve diverged above the `dt_min` floor).
    StepRejected {
        /// Simulation time at the start of the rejected step, in seconds.
        time: f64,
        /// The rejected step size, in seconds.
        dt: f64,
    },
    /// One rung of the convergence-rescue ladder was attempted.
    RescueAttempt {
        /// The ladder rung.
        rung: RungKind,
        /// Newton iterations the rung consumed.
        iterations: u64,
        /// Whether the rung converged (ending the ladder).
        converged: bool,
    },
    /// A limited `Budget` was charged.
    BudgetSpend {
        /// The resource pool charged.
        resource: ResourceKind,
        /// Units charged.
        amount: u64,
    },
    /// A Monte-Carlo run started.
    McRunStarted {
        /// The deterministic run index.
        run: u64,
    },
    /// A Monte-Carlo run finished.
    McRunDone {
        /// The deterministic run index.
        run: u64,
        /// Whether the run produced a sample (`false` = failed/skipped).
        ok: bool,
    },
    /// A batch of row MACs was issued to the array engine.
    MacIssued {
        /// Jobs requested by the caller.
        jobs: u64,
        /// Transients actually solved after duplicate collapsing.
        solves: u64,
    },
    /// A fault-tolerant oracle substituted a fallback value for a
    /// panicked CIM read.
    FaultSubstituted {
        /// The substituted read-out count.
        substitute: u64,
    },
    /// A training epoch (forward+backward over the set, plus the
    /// post-epoch accuracy pass) completed.
    EpochDone {
        /// 0-based epoch index.
        epoch: u64,
        /// Mean training loss over the epoch.
        loss: f64,
        /// Training-set accuracy measured after the epoch.
        accuracy: f64,
    },
    /// A scoped timer opened (see [`crate::Span`]). Paired with the
    /// [`Event::SpanEnd`] carrying the same `id`; the `parent`/`id`
    /// links form the span tree (network → layer → MAC batch → solve).
    SpanBegin {
        /// Process-unique span id (never 0).
        id: u64,
        /// Id of the enclosing span, or 0 for a root span.
        parent: u64,
        /// Small sequential id of the emitting thread (first-use order,
        /// starting at 1), for trace viewers that lay out tracks.
        tid: u64,
        /// The span label.
        name: String,
        /// Begin timestamp: microseconds since the process trace epoch.
        ts: f64,
    },
    /// A scoped timer closed (see [`crate::Span`]).
    SpanEnd {
        /// Id matching the paired [`Event::SpanBegin`].
        id: u64,
        /// Elapsed wall-clock time in microseconds.
        micros: f64,
    },
    /// A run manifest: which binary produced this trace, with what
    /// command line. Emitted once at the head of `--trace` files.
    Manifest {
        /// Binary name.
        bin: String,
        /// Command-line arguments (excluding the binary path).
        args: Vec<String>,
    },
    /// `ferrocim-serve` admitted a request into the worker queue.
    ServeAdmitted {
        /// Queue depth observed right after the push.
        queue_depth: u64,
        /// The seeded per-request id echoed (as hex) in the response
        /// body, joining this event to the client-observed answer.
        /// Absent (0) in traces written before request ids existed.
        #[serde(default)]
        request_id: u64,
    },
    /// `ferrocim-serve` shed a request (admission queue full or a
    /// per-tenant concurrency quota exhausted) with a typed `429`.
    ServeShed {
        /// Queue depth observed at the shed decision.
        queue_depth: u64,
        /// The `retry_after_ms` hint returned to the client.
        retry_after_ms: u64,
        /// The seeded per-request id (0 in pre-request-id traces).
        #[serde(default)]
        request_id: u64,
        /// The shed tenant; empty when the shed happened before the
        /// request was parsed (acceptor-side queue-full sheds).
        #[serde(default)]
        tenant: String,
    },
    /// `ferrocim-serve` retried a transiently-failed solve after a
    /// backoff sleep.
    ServeRetry {
        /// 1-based retry attempt (the first retry is 1).
        attempt: u64,
        /// The jittered backoff slept before this attempt, in
        /// milliseconds.
        backoff_ms: u64,
        /// The seeded per-request id (0 in pre-request-id traces).
        #[serde(default)]
        request_id: u64,
    },
    /// `ferrocim-serve` answered a request from the calibrated
    /// transfer-curve fallback instead of a live solve (`degraded:
    /// true` in the response body).
    ServeDegraded {
        /// Whether the tenant's circuit breaker was open (as opposed to
        /// an in-request retry ladder exhausting its attempts).
        breaker_open: bool,
        /// The seeded per-request id (0 in pre-request-id traces).
        #[serde(default)]
        request_id: u64,
        /// The degraded tenant (empty in pre-request-id traces).
        #[serde(default)]
        tenant: String,
    },
    /// A tenant's circuit breaker tripped from closed to open.
    ServeBreakerOpen {
        /// Failures observed in the sliding window at the trip.
        window_failures: u64,
        /// Total outcomes in the sliding window at the trip.
        window_size: u64,
        /// The request whose recorded outcome tripped the breaker
        /// (0 in pre-request-id traces).
        #[serde(default)]
        request_id: u64,
        /// The tenant whose breaker tripped (empty in pre-request-id
        /// traces).
        #[serde(default)]
        tenant: String,
    },
    /// One `ferrocim-serve` request reached a terminal outcome. Emitted
    /// exactly once per answered request (a vanished client is the only
    /// path with no `ServeDone`), carrying the labels behind the
    /// per-tenant dimensional metrics and the SLO error budget.
    ServeDone {
        /// The seeded per-request id echoed (as hex) in the response.
        request_id: u64,
        /// The requesting tenant (`"unknown"` when the request was shed
        /// before parsing).
        tenant: String,
        /// How the request terminated.
        outcome: ServeOutcome,
        /// Which tier produced the answer.
        backend: ServeBackendKind,
        /// Admission-to-response latency in milliseconds.
        latency_ms: f64,
    },
    /// The serve SLO burn-rate monitor crossed its windowed
    /// error-budget threshold (see `Aggregator::take_slo_breach`). This
    /// event is the `DumpOn::SloBreach` flight-recorder trigger.
    SloBreach {
        /// Outcomes in the sliding window at the breach.
        window: u64,
        /// Budget-burning outcomes (shed + degraded + deadline + error)
        /// in the window.
        bad: u64,
        /// The burn rate at the breach, in percent of the window.
        burn_pct: f64,
    },
    /// A surrogate store was consulted for a MAC evaluation.
    SurrogateLookup {
        /// Whether a calibrated curve answered the query (`false` = the
        /// key missed and a live calibration had to run).
        hit: bool,
    },
    /// A check-mode subsample re-solved one surrogate-answered query
    /// through the live solver and compared it to the certified
    /// envelope.
    SurrogateCheck {
        /// Whether the deviation stayed within the certified envelope.
        ok: bool,
        /// Absolute deviation between the surrogate answer and the live
        /// solve, in volts.
        deviation: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event::NewtonIter { iteration: 3 },
            Event::NewtonResidual {
                iteration: 3,
                residual: 1.5e-7,
                damping: 0.25,
            },
            Event::NewtonConverged { iterations: 4 },
            Event::SolverSolved {
                backend: SolverBackend::Sparse,
                symbolic: true,
            },
            Event::SolverSolved {
                backend: SolverBackend::Dense,
                symbolic: false,
            },
            Event::SolveRefined {
                passes: 2,
                residual: 3.5e-12,
            },
            Event::SolveDegraded {
                stage: DegradeStageKind::DenseFallback,
                residual: 1.2e-3,
            },
            Event::StepAccepted {
                time: 1e-9,
                dt: 2e-12,
            },
            Event::StepRejected {
                time: 2e-9,
                dt: 4e-12,
            },
            Event::RescueAttempt {
                rung: RungKind::GminStepping,
                iterations: 17,
                converged: true,
            },
            Event::BudgetSpend {
                resource: ResourceKind::Steps,
                amount: 1,
            },
            Event::McRunStarted { run: 7 },
            Event::McRunDone { run: 7, ok: false },
            Event::MacIssued {
                jobs: 16,
                solves: 2,
            },
            Event::FaultSubstituted { substitute: 5 },
            Event::EpochDone {
                epoch: 0,
                loss: 2.3,
                accuracy: 0.11,
            },
            Event::SpanBegin {
                id: 9,
                parent: 3,
                tid: 1,
                name: "solve".into(),
                ts: 4521.25,
            },
            Event::SpanEnd {
                id: 9,
                micros: 12.5,
            },
            Event::Manifest {
                bin: "probe_telemetry".into(),
                args: vec!["--overhead".into()],
            },
            Event::ServeAdmitted {
                queue_depth: 3,
                request_id: 0x5EED_0001,
            },
            Event::ServeShed {
                queue_depth: 16,
                retry_after_ms: 120,
                request_id: 0x5EED_0002,
                tenant: "t1".into(),
            },
            Event::ServeRetry {
                attempt: 2,
                backoff_ms: 40,
                request_id: 0x5EED_0003,
            },
            Event::ServeDegraded {
                breaker_open: true,
                request_id: 0x5EED_0004,
                tenant: "t1".into(),
            },
            Event::ServeBreakerOpen {
                window_failures: 7,
                window_size: 10,
                request_id: 0x5EED_0005,
                tenant: "t1".into(),
            },
            Event::ServeDone {
                request_id: 0x5EED_0006,
                tenant: "t1".into(),
                outcome: ServeOutcome::Degraded,
                backend: ServeBackendKind::Fallback,
                latency_ms: 12.5,
            },
            Event::SloBreach {
                window: 64,
                bad: 40,
                burn_pct: 62.5,
            },
            Event::SurrogateLookup { hit: true },
            Event::SurrogateCheck {
                ok: false,
                deviation: 2.5e-4,
            },
        ];
        for event in events {
            let text = serde_json::to_string(&event).expect("serialize");
            let back: Event = serde_json::from_str(&text).expect("deserialize");
            assert_eq!(back, event);
        }
    }
}
