//! Streaming JSONL trace files with a versioned schema.

use crate::event::{Event, TRACE_FORMAT};
use crate::recorder::Recorder;
use serde_json::Value;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead as _, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A buffered [`Recorder`] streaming one JSON object per line.
///
/// The file layout is versioned like `McCheckpoint`: the first line is
/// a header object carrying [`TRACE_FORMAT`], each following line is
/// one [`Event`]. Writes go to `<path>.tmp`; [`JsonlSink::finish`]
/// flushes and atomically renames it onto `path`, so a crashed run
/// never leaves a half-written file at the advertised location.
///
/// `record` cannot return an error, so I/O failures are latched and
/// surfaced by `finish` (taking the write path down mid-run would
/// poison the simulation it is observing).
pub struct JsonlSink {
    path: PathBuf,
    tmp: PathBuf,
    state: Mutex<SinkState>,
}

struct SinkState {
    writer: Option<BufWriter<File>>,
    /// First latched write/serialize error, reported by `finish`.
    error: Option<String>,
    events: u64,
}

impl JsonlSink {
    /// Opens `<path>.tmp` for writing and emits the versioned header
    /// line. Parent directories are created as needed.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from directory creation, file creation, or
    /// the header write.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<JsonlSink> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = tmp_path(&path);
        let mut writer = BufWriter::new(File::create(&tmp)?);
        writeln!(writer, "{{\"format\":\"{TRACE_FORMAT}\"}}")?;
        Ok(JsonlSink {
            path,
            tmp,
            state: Mutex::new(SinkState {
                writer: Some(writer),
                error: None,
                events: 0,
            }),
        })
    }

    /// The final trace path (valid after [`JsonlSink::finish`]).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of events written so far.
    pub fn events_written(&self) -> u64 {
        self.state.lock().map(|s| s.events).unwrap_or(0)
    }

    /// Flushes the buffer, fsyncs the temporary file, and atomically
    /// renames it onto the final path (fsyncing the parent directory so
    /// the rename itself is durable). Idempotent: a second call is a
    /// no-op returning the path.
    ///
    /// # Errors
    ///
    /// Returns the first latched write error, or flush/sync/rename
    /// failures.
    pub fn finish(&self) -> io::Result<PathBuf> {
        let mut state = self
            .state
            .lock()
            .map_err(|_| io::Error::other("telemetry sink lock poisoned"))?;
        if let Some(message) = state.error.take() {
            return Err(io::Error::other(message));
        }
        if let Some(mut writer) = state.writer.take() {
            writer.flush()?;
            writer.get_ref().sync_all()?;
            drop(writer);
            std::fs::rename(&self.tmp, &self.path)?;
            if let Some(parent) = self.path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::File::open(parent).and_then(|dir| dir.sync_all())?;
            }
        }
        Ok(self.path.clone())
    }
}

impl Recorder for JsonlSink {
    fn record(&self, event: &Event) {
        let Ok(mut state) = self.state.lock() else {
            return;
        };
        if state.error.is_some() {
            return;
        }
        let Some(writer) = state.writer.as_mut() else {
            return;
        };
        let outcome = serde_json::to_string(event)
            .map_err(|e| e.to_string())
            .and_then(|line| writeln!(writer, "{line}").map_err(|e| e.to_string()));
        match outcome {
            Ok(()) => state.events += 1,
            Err(message) => state.error = Some(message),
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        // Best-effort close for sinks dropped without `finish`; errors
        // here have nowhere to go.
        let _ = self.finish();
    }
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JsonlSink({})", self.path.display())
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    PathBuf::from(tmp)
}

/// Renders an event sequence as an in-memory `ferrocim-trace-v1` JSONL
/// document: the versioned header line followed by one event per line,
/// byte-identical to what [`JsonlSink`] would have written. Events that
/// fail to serialize (unreachable for the closed [`Event`] set) are
/// skipped rather than corrupting the document.
pub fn render_trace(events: &[Event]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"format\":\"{TRACE_FORMAT}\"}}\n"));
    for event in events {
        if let Ok(line) = serde_json::to_string(event) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Writes an event sequence to `path` as a finished JSONL trace via
/// [`JsonlSink`] — same header, same atomic tmp+rename durability.
///
/// # Errors
///
/// Returns sink-creation and finish (flush/sync/rename) failures.
pub fn write_trace(path: impl Into<PathBuf>, events: &[Event]) -> io::Result<PathBuf> {
    let sink = JsonlSink::create(path)?;
    for event in events {
        sink.record(event);
    }
    sink.finish()
}

/// Typed failures of [`read_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The file could not be opened or read.
    Io {
        /// The trace path.
        path: String,
        /// The underlying error message.
        message: String,
    },
    /// A line failed to parse, or the header was malformed.
    Corrupt {
        /// The trace path.
        path: String,
        /// 1-based line number of the offending line.
        line: u64,
        /// What went wrong.
        detail: String,
    },
    /// The header declared an unsupported format version.
    BadFormat {
        /// The trace path.
        path: String,
        /// The declared format string.
        found: String,
    },
    /// A second header line appeared mid-file (e.g. two traces of
    /// different versions concatenated). Rejected with a typed error
    /// instead of deserializing the tail as garbage events.
    MixedVersion {
        /// The trace path.
        path: String,
        /// 1-based line number of the unexpected header.
        line: u64,
        /// The format string the mid-file header declared.
        found: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { path, message } => write!(f, "trace {path}: {message}"),
            TraceError::Corrupt { path, line, detail } => {
                write!(f, "trace {path} line {line}: {detail}")
            }
            TraceError::BadFormat { path, found } => write!(
                f,
                "trace {path}: format {found:?} (expected {TRACE_FORMAT:?})"
            ),
            TraceError::MixedVersion { path, line, found } => write!(
                f,
                "trace {path} line {line}: unexpected mid-file header \
                 with format {found:?} (mixed-version trace rejected)"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// Reads a finished JSONL trace back into its event sequence,
/// validating the versioned header.
///
/// # Errors
///
/// See [`TraceError`].
pub fn read_trace(path: impl AsRef<Path>) -> Result<Vec<Event>, TraceError> {
    let path = path.as_ref();
    let display = path.display().to_string();
    let io_err = |e: io::Error| TraceError::Io {
        path: display.clone(),
        message: e.to_string(),
    };
    let file = File::open(path).map_err(io_err)?;
    let mut events = Vec::new();
    let mut header_seen = false;
    for (index, line) in io::BufReader::new(file).lines().enumerate() {
        let line = line.map_err(io_err)?;
        let number = index as u64 + 1;
        if line.trim().is_empty() {
            continue;
        }
        if !header_seen {
            let header: Value = serde_json::from_str(&line).map_err(|e| TraceError::Corrupt {
                path: display.clone(),
                line: number,
                detail: format!("bad header: {e}"),
            })?;
            match header.get("format") {
                Some(Value::String(format)) if format == TRACE_FORMAT => {}
                Some(Value::String(format)) => {
                    return Err(TraceError::BadFormat {
                        path: display,
                        found: format.clone(),
                    });
                }
                _ => {
                    return Err(TraceError::Corrupt {
                        path: display,
                        line: number,
                        detail: "header is missing the format field".to_string(),
                    });
                }
            }
            header_seen = true;
            continue;
        }
        let event: Event = serde_json::from_str(&line).map_err(|e| {
            // A line that is not an Event but *is* a header object
            // means two traces were concatenated (possibly of different
            // schema versions): reject with a typed error instead of
            // misreporting the tail as corruption.
            if let Ok(value) = serde_json::from_str::<Value>(&line) {
                if let Some(Value::String(found)) = value.get("format") {
                    return TraceError::MixedVersion {
                        path: display.clone(),
                        line: number,
                        found: found.clone(),
                    };
                }
            }
            TraceError::Corrupt {
                path: display.clone(),
                line: number,
                detail: e.to_string(),
            }
        })?;
        events.push(event);
    }
    if !header_seen {
        return Err(TraceError::Corrupt {
            path: display,
            line: 0,
            detail: "empty trace (no header line)".to_string(),
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Telemetry;

    fn temp_trace(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ferrocim-telemetry-{name}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn trace_round_trips_and_renames_atomically() {
        let path = temp_trace("roundtrip");
        let sink = JsonlSink::create(&path).expect("create");
        let tele = Telemetry::to(sink);
        let events = vec![
            Event::McRunStarted { run: 0 },
            Event::StepAccepted {
                time: 1e-9,
                dt: 2e-12,
            },
            Event::McRunDone { run: 0, ok: true },
        ];
        for event in &events {
            tele.record(event);
        }
        // Until finish, only the .tmp file exists.
        assert!(!path.exists());
        drop(tele); // Drop finishes the sink.
        assert!(path.exists());
        assert!(!tmp_path(&path).exists());
        let back = read_trace(&path).expect("read");
        assert_eq!(back, events);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn finish_is_idempotent_and_counts_events() {
        let path = temp_trace("finish");
        let sink = JsonlSink::create(&path).expect("create");
        sink.record(&Event::NewtonIter { iteration: 1 });
        assert_eq!(sink.events_written(), 1);
        let first = sink.finish().expect("finish");
        let second = sink.finish().expect("finish again");
        assert_eq!(first, second);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_trace_and_render_trace_match_the_sink_format() {
        let path = temp_trace("write-helper");
        let events = vec![
            Event::NewtonIter { iteration: 1 },
            Event::McRunDone { run: 0, ok: true },
        ];
        let written = write_trace(&path, &events).expect("write_trace");
        assert_eq!(written, path);
        let back = read_trace(&path).expect("read");
        assert_eq!(back, events);
        let on_disk = std::fs::read_to_string(&path).expect("read file");
        assert_eq!(render_trace(&events), on_disk);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_rejects_bad_format_and_garbage() {
        let path = temp_trace("garbage");
        std::fs::write(&path, "{\"format\":\"other-v9\"}\n").expect("write");
        assert!(matches!(
            read_trace(&path),
            Err(TraceError::BadFormat { found, .. }) if found == "other-v9"
        ));
        std::fs::write(&path, "{\"format\":\"ferrocim-trace-v1\"}\nnot json\n").expect("write");
        assert!(matches!(
            read_trace(&path),
            Err(TraceError::Corrupt { line: 2, .. })
        ));
        std::fs::write(&path, "").expect("write");
        assert!(matches!(read_trace(&path), Err(TraceError::Corrupt { .. })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_rejects_mixed_version_traces_with_typed_error() {
        let path = temp_trace("mixed");
        // A valid v1 trace with a forged v2 header concatenated
        // mid-file: typed MixedVersion, not generic Corrupt.
        std::fs::write(
            &path,
            "{\"format\":\"ferrocim-trace-v1\"}\n\
             {\"NewtonIter\":{\"iteration\":1}}\n\
             {\"format\":\"ferrocim-trace-v2\"}\n\
             {\"NewtonIter\":{\"iteration\":2}}\n",
        )
        .expect("write");
        match read_trace(&path) {
            Err(TraceError::MixedVersion { line, found, .. }) => {
                assert_eq!(line, 3);
                assert_eq!(found, "ferrocim-trace-v2");
            }
            other => panic!("expected MixedVersion, got {other:?}"),
        }
        // Even a same-version duplicate header is a mixed trace.
        std::fs::write(
            &path,
            "{\"format\":\"ferrocim-trace-v1\"}\n{\"format\":\"ferrocim-trace-v1\"}\n",
        )
        .expect("write");
        assert!(matches!(
            read_trace(&path),
            Err(TraceError::MixedVersion { line: 2, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }
}
