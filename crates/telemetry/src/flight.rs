//! The flight recorder: a fixed-capacity, always-on event ring that
//! makes the recent past retroactively inspectable.
//!
//! JSONL tracing ([`JsonlSink`](crate::JsonlSink)) is pay-always: either
//! the run was started with a trace file, or the evidence is gone. The
//! [`FlightRecorder`] inverts that trade: every event is retained in a
//! bounded in-memory ring at near-zero cost, and only when something
//! interesting happens — a breaker trip, an SLO breach, an explicit
//! signal — is the ring dumped as a valid `ferrocim-trace-v1` document
//! that the `trace` CLI can summarize and diff like any other trace.
//!
//! # Design: per-thread segments + epoch stitch
//!
//! Writers never share a ring. Each recording thread gets its own
//! *segment* (a small mutex-guarded ring only that thread pushes to, so
//! the lock is uncontended in steady state), and every event is stamped
//! with a globally increasing *epoch* allocated under the segment lock.
//! A snapshot locks the segment registry (stalling new-thread
//! registration), then every segment ring at once, so no epoch can be
//! allocated mid-read; stitching is a sort by epoch. Eviction maintains
//! a global watermark — the highest evicted epoch plus one — and the
//! snapshot drops entries below it, which makes the result *gap-free*:
//! it is exactly the contiguous epoch range `[watermark, latest]`.

use crate::event::{Event, ServeOutcome};
use crate::recorder::Recorder;
use crate::sink::{render_trace, write_trace};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Weak};

/// Locks a mutex, recovering from poisoning: the ring structures stay
/// consistent under a panicking writer (at worst one event is missing),
/// so a post-mortem snapshot — the whole point of a flight recorder —
/// must still be possible afterwards.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Conditions on which a configured [`FlightRecorder`] writes an
/// automatic dump of its ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpOn {
    /// A request finished in an error-shaped outcome
    /// ([`Event::ServeDone`] with `error`/`deadline`) or a surrogate
    /// certification check failed ([`Event::SurrogateCheck`] with
    /// `ok: false`).
    Error,
    /// The circuit breaker tripped open ([`Event::ServeBreakerOpen`]).
    BreakerOpen,
    /// The SLO burn-rate monitor latched a breach
    /// ([`Event::SloBreach`]).
    SloBreach,
    /// An explicit operator request via [`FlightRecorder::trigger`]
    /// (the process-signal hook: the binary's signal handler calls
    /// `trigger`, the recorder never installs OS handlers itself).
    Signal,
}

impl DumpOn {
    /// The reason slug embedded in auto-dump file names.
    pub fn label(self) -> &'static str {
        match self {
            DumpOn::Error => "error",
            DumpOn::BreakerOpen => "breaker_open",
            DumpOn::SloBreach => "slo_breach",
            DumpOn::Signal => "signal",
        }
    }
}

/// One stitched entry from a [`FlightRecorder::snapshot_entries`] call:
/// the event and the global epoch it was recorded at.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEntry {
    /// The globally ordered record index (consecutive entries of a
    /// snapshot have consecutive epochs).
    pub epoch: u64,
    /// The recorded event.
    pub event: Event,
}

/// One thread's private ring.
#[derive(Debug, Default)]
struct Segment {
    ring: Mutex<VecDeque<(u64, Event)>>,
}

/// Allocator for process-unique recorder ids (the thread-local segment
/// registry is keyed on them, so two recorders never share segments).
static NEXT_FLIGHT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's segment per live recorder id.
    static THREAD_SEGMENTS: RefCell<Vec<(u64, Weak<Segment>)>> = const { RefCell::new(Vec::new()) };
}

/// Default cap on automatic dumps per recorder (see
/// [`FlightRecorder::with_max_dumps`]).
const MAX_DUMPS: usize = 8;

/// A fixed-capacity, per-thread-segmented event ring implementing
/// [`Recorder`]: always on, bounded memory, retroactive dumps.
///
/// `capacity` bounds each writer thread's segment; the stitched
/// snapshot is the contiguous range of global epochs still retained by
/// every segment (older entries fall below the eviction watermark and
/// are dropped, exactly like a hardware flight recorder's loop tape).
///
/// # Example
///
/// ```
/// use ferrocim_telemetry::{Event, FlightRecorder, Recorder, Telemetry};
///
/// let flight = std::sync::Arc::new(FlightRecorder::new(128));
/// let tele = Telemetry::new(flight.clone());
/// tele.record(&Event::NewtonIter { iteration: 1 });
/// assert_eq!(flight.snapshot().len(), 1);
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    id: u64,
    capacity: usize,
    /// Next global epoch; allocated under a segment lock so a snapshot
    /// holding every segment lock observes a stable frontier.
    epoch: AtomicU64,
    /// Eviction watermark: one past the highest epoch ever evicted.
    evicted: AtomicU64,
    segments: Mutex<Vec<Arc<Segment>>>,
    dump_dir: Option<PathBuf>,
    triggers: Vec<DumpOn>,
    max_dumps: usize,
    dump_seq: AtomicU64,
    dump_errors: AtomicU64,
    last_dump: Mutex<Option<PathBuf>>,
}

impl FlightRecorder {
    /// A recorder retaining up to `capacity` events per writer thread
    /// (clamped to at least one), with no dump triggers configured.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            id: NEXT_FLIGHT_ID.fetch_add(1, Ordering::Relaxed),
            capacity: capacity.max(1),
            epoch: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            segments: Mutex::new(Vec::new()),
            dump_dir: None,
            triggers: Vec::new(),
            max_dumps: MAX_DUMPS,
            dump_seq: AtomicU64::new(0),
            dump_errors: AtomicU64::new(0),
            last_dump: Mutex::new(None),
        }
    }

    /// Enables automatic dumps into `dir` whenever an event matching
    /// one of `triggers` is recorded. Dump files are named
    /// `flight-<seq>-<reason>.jsonl` and written with the same atomic
    /// tmp+rename discipline as [`JsonlSink`](crate::JsonlSink).
    pub fn with_dump_dir(mut self, dir: impl Into<PathBuf>, triggers: &[DumpOn]) -> FlightRecorder {
        self.dump_dir = Some(dir.into());
        self.triggers = triggers.to_vec();
        self
    }

    /// Caps automatic dumps (default 8): once reached, triggers stop
    /// writing files so a flapping breaker cannot fill the disk.
    pub fn with_max_dumps(mut self, max_dumps: usize) -> FlightRecorder {
        self.max_dumps = max_dumps;
        self
    }

    /// The per-thread ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// This thread's segment, registering one on first use.
    fn segment(&self) -> Arc<Segment> {
        THREAD_SEGMENTS.with(|cell| {
            let mut map = cell.borrow_mut();
            if let Some(segment) = map
                .iter()
                .find(|(id, _)| *id == self.id)
                .and_then(|(_, weak)| weak.upgrade())
            {
                return segment;
            }
            // First event from this thread (or the recorder that owned
            // a stale slot is gone): register a fresh segment.
            map.retain(|(id, weak)| *id != self.id && weak.strong_count() > 0);
            let segment = Arc::new(Segment::default());
            lock(&self.segments).push(segment.clone());
            map.push((self.id, Arc::downgrade(&segment)));
            segment
        })
    }

    /// The stitched ring contents in epoch order: the contiguous range
    /// of global epochs above the eviction watermark.
    pub fn snapshot_entries(&self) -> Vec<FlightEntry> {
        let registry = lock(&self.segments);
        // Holding the registry lock (no new segments) plus every ring
        // lock (no in-flight epoch allocations) freezes the frontier;
        // see the module docs for why this makes the result gap-free.
        let guards: Vec<MutexGuard<'_, VecDeque<(u64, Event)>>> =
            registry.iter().map(|segment| lock(&segment.ring)).collect();
        let watermark = self.evicted.load(Ordering::Acquire);
        let mut entries: Vec<FlightEntry> = guards
            .iter()
            .flat_map(|ring| ring.iter())
            .filter(|(epoch, _)| *epoch >= watermark)
            .map(|(epoch, event)| FlightEntry {
                epoch: *epoch,
                event: event.clone(),
            })
            .collect();
        drop(guards);
        drop(registry);
        entries.sort_by_key(|entry| entry.epoch);
        entries
    }

    /// The stitched ring contents in record order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.snapshot_entries()
            .into_iter()
            .map(|entry| entry.event)
            .collect()
    }

    /// Number of events a snapshot would currently return.
    pub fn len(&self) -> usize {
        self.snapshot_entries().len()
    }

    /// Whether the ring holds no retained events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the current snapshot as an in-memory
    /// `ferrocim-trace-v1` JSONL document (the `/debug/flight` body).
    pub fn render(&self) -> String {
        render_trace(&self.snapshot())
    }

    /// Dumps the current snapshot to `path` as a finished trace file
    /// (atomic tmp+rename, readable by `trace summary`).
    ///
    /// # Errors
    ///
    /// Returns file-creation and flush/sync/rename failures.
    pub fn dump_to(&self, path: impl Into<PathBuf>) -> io::Result<PathBuf> {
        write_trace(path, &self.snapshot())
    }

    /// Forces a dump now, named for `reason`, if a dump directory is
    /// configured and the dump cap has room. This is the hook a signal
    /// handler (or an operator endpoint) calls for [`DumpOn::Signal`];
    /// it does not require `reason` to be among the configured
    /// triggers. Returns the written path, or `None` when not
    /// configured, capped out, or failed (failures are counted in
    /// [`FlightRecorder::dump_errors`] — this path must never panic).
    pub fn trigger(&self, reason: DumpOn) -> Option<PathBuf> {
        let dir = self.dump_dir.as_ref()?;
        let seq = self
            .dump_seq
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |seq| {
                (seq < self.max_dumps as u64).then_some(seq + 1)
            })
            .ok()?;
        let path = dir.join(format!("flight-{seq:03}-{}.jsonl", reason.label()));
        match self.dump_to(&path) {
            Ok(path) => {
                *lock(&self.last_dump) = Some(path.clone());
                Some(path)
            }
            Err(_) => {
                self.dump_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Automatic dumps written so far.
    pub fn dumps_written(&self) -> u64 {
        let attempted = self.dump_seq.load(Ordering::Relaxed);
        attempted.saturating_sub(self.dump_errors.load(Ordering::Relaxed))
    }

    /// Dump attempts that failed with an I/O error (latched, never
    /// raised: `record` must not panic).
    pub fn dump_errors(&self) -> u64 {
        self.dump_errors.load(Ordering::Relaxed)
    }

    /// The most recently written dump path, if any.
    pub fn last_dump(&self) -> Option<PathBuf> {
        lock(&self.last_dump).clone()
    }

    /// The configured dump directory, if any.
    pub fn dump_dir(&self) -> Option<&Path> {
        self.dump_dir.as_deref()
    }

    /// Maps an event to the auto-dump trigger it fires, if any.
    fn trigger_for(event: &Event) -> Option<DumpOn> {
        match event {
            Event::ServeBreakerOpen { .. } => Some(DumpOn::BreakerOpen),
            Event::SloBreach { .. } => Some(DumpOn::SloBreach),
            Event::ServeDone {
                outcome: ServeOutcome::Error | ServeOutcome::Deadline,
                ..
            } => Some(DumpOn::Error),
            Event::SurrogateCheck { ok: false, .. } => Some(DumpOn::Error),
            _ => None,
        }
    }
}

impl Recorder for FlightRecorder {
    fn record(&self, event: &Event) {
        let segment = self.segment();
        {
            let mut ring = lock(&segment.ring);
            // Epoch allocation happens under the ring lock so a
            // snapshot holding every ring lock sees a frozen frontier
            // (no allocated-but-unpushed epochs).
            let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);
            ring.push_back((epoch, event.clone()));
            if ring.len() > self.capacity {
                if let Some((evicted_epoch, _)) = ring.pop_front() {
                    self.evicted.fetch_max(evicted_epoch + 1, Ordering::AcqRel);
                }
            }
        }
        // The ring lock is released before dumping: a dump snapshots
        // every segment, including this one.
        if let Some(reason) = FlightRecorder::trigger_for(event) {
            if self.triggers.contains(&reason) {
                self.trigger(reason);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ServeBackendKind;
    use crate::sink::read_trace;

    fn iter_event(i: u64) -> Event {
        Event::NewtonIter { iteration: i }
    }

    #[test]
    fn ring_retains_the_last_capacity_events_in_order() {
        let flight = FlightRecorder::new(4);
        for i in 0..10 {
            flight.record(&iter_event(i));
        }
        let entries = flight.snapshot_entries();
        assert_eq!(entries.len(), 4);
        let epochs: Vec<u64> = entries.iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![6, 7, 8, 9]);
        assert_eq!(
            flight.snapshot(),
            (6..10).map(iter_event).collect::<Vec<_>>()
        );
        assert_eq!(flight.len(), 4);
        assert!(!flight.is_empty());
    }

    #[test]
    fn capacity_is_clamped_to_at_least_one() {
        let flight = FlightRecorder::new(0);
        assert_eq!(flight.capacity(), 1);
        flight.record(&iter_event(1));
        flight.record(&iter_event(2));
        assert_eq!(flight.snapshot(), vec![iter_event(2)]);
    }

    #[test]
    fn render_is_a_valid_trace_document() {
        let flight = FlightRecorder::new(8);
        flight.record(&iter_event(1));
        let text = flight.render();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("{\"format\":\"ferrocim-trace-v1\"}"));
        let expected = serde_json::to_string(&iter_event(1)).expect("serialize");
        assert_eq!(lines.next(), Some(expected.as_str()));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn breaker_open_trigger_writes_a_readable_dump() {
        let dir = std::env::temp_dir().join(format!("ferrocim-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let flight = FlightRecorder::new(16).with_dump_dir(&dir, &[DumpOn::BreakerOpen]);
        flight.record(&iter_event(1));
        flight.record(&Event::ServeBreakerOpen {
            window_failures: 5,
            window_size: 8,
            request_id: 7,
            tenant: "t".into(),
        });
        assert_eq!(flight.dumps_written(), 1);
        let path = flight.last_dump().expect("dump path");
        assert!(path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("file name")
            .contains("breaker_open"));
        let events = read_trace(&path).expect("dump is a valid trace");
        assert_eq!(events.len(), 2);
        assert!(matches!(events[1], Event::ServeBreakerOpen { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unconfigured_triggers_do_not_dump_and_caps_hold() {
        let dir = std::env::temp_dir().join(format!("ferrocim-flight-cap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Error events are not in the trigger set: no dump.
        let flight = FlightRecorder::new(8).with_dump_dir(&dir, &[DumpOn::SloBreach]);
        flight.record(&Event::ServeDone {
            request_id: 1,
            tenant: "t".into(),
            outcome: ServeOutcome::Error,
            backend: ServeBackendKind::None,
            latency_ms: 1.0,
        });
        assert_eq!(flight.dumps_written(), 0);
        // Manual triggers bypass the configured set but honor the cap.
        let flight = FlightRecorder::new(8)
            .with_dump_dir(&dir, &[])
            .with_max_dumps(2);
        flight.record(&iter_event(1));
        assert!(flight.trigger(DumpOn::Signal).is_some());
        assert!(flight.trigger(DumpOn::Signal).is_some());
        assert!(flight.trigger(DumpOn::Signal).is_none(), "cap reached");
        assert_eq!(flight.dumps_written(), 2);
        assert_eq!(flight.dump_errors(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_dump_dir_means_trigger_is_a_noop() {
        let flight = FlightRecorder::new(8);
        flight.record(&iter_event(1));
        assert!(flight.trigger(DumpOn::Signal).is_none());
        assert_eq!(flight.dumps_written(), 0);
    }
}
