//! In-memory aggregation: atomic counters, fixed-bucket histograms,
//! and a Prometheus-style text exposition.

use crate::event::Event;
use crate::recorder::Recorder;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Adds `value` into an `AtomicU64` holding `f64` bits, lock-free.
fn atomic_f64_add(cell: &AtomicU64, value: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + value).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

/// A fixed-bucket histogram with atomic counts.
///
/// Bucket `i` counts observations `value <= bounds[i]` (the smallest
/// such bound wins, Prometheus `le` semantics); one extra overflow
/// bucket catches everything above the last bound. Recording is
/// lock-free, and two histograms with identical bounds can be merged
/// bucket-wise (the `fan_out` per-thread pattern).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    /// Sum of observed values, stored as `f64` bits.
    sum: AtomicU64,
}

impl Histogram {
    /// Builds a histogram over ascending upper bounds. Out-of-order
    /// bounds are sorted; an empty bound list yields a single overflow
    /// bucket.
    pub fn new(bounds: &[f64]) -> Histogram {
        let mut bounds = bounds.to_vec();
        bounds.sort_by(f64::total_cmp);
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// The bucket upper bounds (ascending, exclusive of the overflow
    /// bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one observation.
    pub fn record(&self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum, value);
    }

    /// Per-bucket counts (the last entry is the overflow bucket).
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Ordering::Relaxed))
    }

    /// Adds `other`'s buckets into `self`. When the bucket bounds
    /// differ, `other`'s observations land in the overflow bucket (the
    /// totals and sums stay exact; only their placement degrades).
    pub fn merge_from(&self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (mine, theirs) in self.counts.iter().zip(&other.counts) {
                mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        } else if let Some(overflow) = self.counts.last() {
            overflow.fetch_add(other.total(), Ordering::Relaxed);
        }
        atomic_f64_add(&self.sum, other.sum());
    }

    /// Renders the histogram in Prometheus text exposition format.
    fn render_prometheus_into(&self, name: &str, help: &str, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in self.bounds.iter().zip(&self.counts) {
            cumulative += count.load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let total = self.total();
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
        let _ = writeln!(out, "{name}_sum {}", self.sum());
        let _ = writeln!(out, "{name}_count {total}");
    }
}

/// A point-in-time snapshot of every [`Aggregator`] counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counts {
    /// Newton iterations run ([`Event::NewtonIter`]).
    pub newton_iters: u64,
    /// Per-iteration residual diagnostics ([`Event::NewtonResidual`],
    /// emitted only at `DetailLevel::Iterations`).
    pub newton_residuals: u64,
    /// Newton solves that converged ([`Event::NewtonConverged`]).
    pub newton_converged: u64,
    /// Linear systems factored and solved ([`Event::SolverSolved`]).
    pub solver_solves: u64,
    /// Solves that ran a fresh symbolic analysis first
    /// ([`Event::SolverSolved`] with `symbolic: true`). On a fixed
    /// topology the sparse backend reports exactly one of these no
    /// matter how many numeric solves follow.
    pub solver_symbolic: u64,
    /// Certified solves that needed iterative refinement
    /// ([`Event::SolveRefined`]).
    pub solves_refined: u64,
    /// Solver degradation-ladder escalations ([`Event::SolveDegraded`]).
    pub solves_degraded: u64,
    /// Transient steps accepted ([`Event::StepAccepted`]).
    pub steps_accepted: u64,
    /// Transient steps rejected ([`Event::StepRejected`]).
    pub steps_rejected: u64,
    /// Rescue-ladder rung attempts ([`Event::RescueAttempt`]).
    pub rescue_attempts: u64,
    /// Rescue-ladder attempts that converged (one per rescued solve).
    pub rescues_succeeded: u64,
    /// Newton iterations charged to a limited budget.
    pub budget_newton: u64,
    /// Steps charged to a limited budget.
    pub budget_steps: u64,
    /// Monte-Carlo runs started ([`Event::McRunStarted`]).
    pub mc_runs_started: u64,
    /// Monte-Carlo runs that produced a sample.
    pub mc_runs_ok: u64,
    /// Monte-Carlo runs that failed or were skipped.
    pub mc_runs_failed: u64,
    /// MAC jobs requested across all batches ([`Event::MacIssued`]).
    pub mac_jobs: u64,
    /// MAC transients actually solved after duplicate collapsing.
    pub mac_solves: u64,
    /// Fault substitutions ([`Event::FaultSubstituted`]).
    pub faults_substituted: u64,
    /// Training epochs completed ([`Event::EpochDone`]).
    pub epochs_done: u64,
    /// Scoped timers closed ([`Event::SpanEnd`]).
    pub spans: u64,
    /// Run manifests seen ([`Event::Manifest`]).
    pub manifests: u64,
    /// Requests admitted by `ferrocim-serve` ([`Event::ServeAdmitted`]).
    pub serve_admitted: u64,
    /// Requests shed with a typed `429` ([`Event::ServeShed`]).
    pub serve_shed: u64,
    /// Backoff retries of transient solve failures
    /// ([`Event::ServeRetry`]).
    pub serve_retries: u64,
    /// Responses answered from the degraded transfer-curve fallback
    /// ([`Event::ServeDegraded`]).
    pub serve_degraded: u64,
    /// Circuit-breaker closed-to-open trips
    /// ([`Event::ServeBreakerOpen`]).
    pub serve_breaker_open: u64,
    /// Surrogate-store lookups answered from a calibrated curve
    /// ([`Event::SurrogateLookup`] with `hit: true`).
    pub surrogate_hits: u64,
    /// Surrogate-store lookups that missed and triggered a live
    /// calibration ([`Event::SurrogateLookup`] with `hit: false`).
    pub surrogate_misses: u64,
    /// Check-mode live re-solves of surrogate-answered queries
    /// ([`Event::SurrogateCheck`]).
    pub surrogate_checks: u64,
    /// Check-mode re-solves whose deviation exceeded the certified
    /// envelope ([`Event::SurrogateCheck`] with `ok: false`).
    pub surrogate_check_failures: u64,
}

/// A lock-free in-memory [`Recorder`]: atomic counters per event kind
/// plus fixed-bucket histograms of Newton iterations per converged
/// solve and span latencies.
///
/// The aggregator is `Sync`, so one instance can be shared across
/// `fan_out` worker threads directly; alternatively, give each thread
/// its own and combine them with [`Aggregator::merge_from`].
#[derive(Debug)]
pub struct Aggregator {
    newton_iters: AtomicU64,
    newton_residuals: AtomicU64,
    newton_converged: AtomicU64,
    solver_solves: AtomicU64,
    solver_symbolic: AtomicU64,
    solves_refined: AtomicU64,
    solves_degraded: AtomicU64,
    steps_accepted: AtomicU64,
    steps_rejected: AtomicU64,
    rescue_attempts: AtomicU64,
    rescues_succeeded: AtomicU64,
    budget_newton: AtomicU64,
    budget_steps: AtomicU64,
    mc_runs_started: AtomicU64,
    mc_runs_ok: AtomicU64,
    mc_runs_failed: AtomicU64,
    mac_jobs: AtomicU64,
    mac_solves: AtomicU64,
    faults_substituted: AtomicU64,
    epochs_done: AtomicU64,
    spans: AtomicU64,
    manifests: AtomicU64,
    serve_admitted: AtomicU64,
    serve_shed: AtomicU64,
    serve_retries: AtomicU64,
    serve_degraded: AtomicU64,
    serve_breaker_open: AtomicU64,
    surrogate_hits: AtomicU64,
    surrogate_misses: AtomicU64,
    surrogate_checks: AtomicU64,
    surrogate_check_failures: AtomicU64,
    newton_histogram: Histogram,
    span_histogram: Histogram,
}

/// Upper bounds (iterations) for the Newton-per-solve histogram.
const NEWTON_BOUNDS: &[f64] = &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0];

/// Upper bounds (microseconds) for the span-latency histogram.
const SPAN_BOUNDS: &[f64] = &[1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8];

impl Aggregator {
    /// An empty aggregator with the default histogram buckets.
    pub fn new() -> Aggregator {
        Aggregator {
            newton_iters: AtomicU64::new(0),
            newton_residuals: AtomicU64::new(0),
            newton_converged: AtomicU64::new(0),
            solver_solves: AtomicU64::new(0),
            solver_symbolic: AtomicU64::new(0),
            solves_refined: AtomicU64::new(0),
            solves_degraded: AtomicU64::new(0),
            steps_accepted: AtomicU64::new(0),
            steps_rejected: AtomicU64::new(0),
            rescue_attempts: AtomicU64::new(0),
            rescues_succeeded: AtomicU64::new(0),
            budget_newton: AtomicU64::new(0),
            budget_steps: AtomicU64::new(0),
            mc_runs_started: AtomicU64::new(0),
            mc_runs_ok: AtomicU64::new(0),
            mc_runs_failed: AtomicU64::new(0),
            mac_jobs: AtomicU64::new(0),
            mac_solves: AtomicU64::new(0),
            faults_substituted: AtomicU64::new(0),
            epochs_done: AtomicU64::new(0),
            spans: AtomicU64::new(0),
            manifests: AtomicU64::new(0),
            serve_admitted: AtomicU64::new(0),
            serve_shed: AtomicU64::new(0),
            serve_retries: AtomicU64::new(0),
            serve_degraded: AtomicU64::new(0),
            serve_breaker_open: AtomicU64::new(0),
            surrogate_hits: AtomicU64::new(0),
            surrogate_misses: AtomicU64::new(0),
            surrogate_checks: AtomicU64::new(0),
            surrogate_check_failures: AtomicU64::new(0),
            newton_histogram: Histogram::new(NEWTON_BOUNDS),
            span_histogram: Histogram::new(SPAN_BOUNDS),
        }
    }

    /// Snapshot of every counter.
    pub fn counts(&self) -> Counts {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        Counts {
            newton_iters: load(&self.newton_iters),
            newton_residuals: load(&self.newton_residuals),
            newton_converged: load(&self.newton_converged),
            solver_solves: load(&self.solver_solves),
            solver_symbolic: load(&self.solver_symbolic),
            solves_refined: load(&self.solves_refined),
            solves_degraded: load(&self.solves_degraded),
            steps_accepted: load(&self.steps_accepted),
            steps_rejected: load(&self.steps_rejected),
            rescue_attempts: load(&self.rescue_attempts),
            rescues_succeeded: load(&self.rescues_succeeded),
            budget_newton: load(&self.budget_newton),
            budget_steps: load(&self.budget_steps),
            mc_runs_started: load(&self.mc_runs_started),
            mc_runs_ok: load(&self.mc_runs_ok),
            mc_runs_failed: load(&self.mc_runs_failed),
            mac_jobs: load(&self.mac_jobs),
            mac_solves: load(&self.mac_solves),
            faults_substituted: load(&self.faults_substituted),
            epochs_done: load(&self.epochs_done),
            spans: load(&self.spans),
            manifests: load(&self.manifests),
            serve_admitted: load(&self.serve_admitted),
            serve_shed: load(&self.serve_shed),
            serve_retries: load(&self.serve_retries),
            serve_degraded: load(&self.serve_degraded),
            serve_breaker_open: load(&self.serve_breaker_open),
            surrogate_hits: load(&self.surrogate_hits),
            surrogate_misses: load(&self.surrogate_misses),
            surrogate_checks: load(&self.surrogate_checks),
            surrogate_check_failures: load(&self.surrogate_check_failures),
        }
    }

    /// The histogram of Newton iterations per converged solve.
    pub fn newton_histogram(&self) -> &Histogram {
        &self.newton_histogram
    }

    /// The histogram of span latencies (microseconds).
    pub fn span_histogram(&self) -> &Histogram {
        &self.span_histogram
    }

    /// Adds `other`'s counters and histograms into `self` (the
    /// per-thread `fan_out` merge pattern).
    pub fn merge_from(&self, other: &Aggregator) {
        let add = |mine: &AtomicU64, theirs: &AtomicU64| {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        };
        add(&self.newton_iters, &other.newton_iters);
        add(&self.newton_residuals, &other.newton_residuals);
        add(&self.newton_converged, &other.newton_converged);
        add(&self.solver_solves, &other.solver_solves);
        add(&self.solver_symbolic, &other.solver_symbolic);
        add(&self.solves_refined, &other.solves_refined);
        add(&self.solves_degraded, &other.solves_degraded);
        add(&self.steps_accepted, &other.steps_accepted);
        add(&self.steps_rejected, &other.steps_rejected);
        add(&self.rescue_attempts, &other.rescue_attempts);
        add(&self.rescues_succeeded, &other.rescues_succeeded);
        add(&self.budget_newton, &other.budget_newton);
        add(&self.budget_steps, &other.budget_steps);
        add(&self.mc_runs_started, &other.mc_runs_started);
        add(&self.mc_runs_ok, &other.mc_runs_ok);
        add(&self.mc_runs_failed, &other.mc_runs_failed);
        add(&self.mac_jobs, &other.mac_jobs);
        add(&self.mac_solves, &other.mac_solves);
        add(&self.faults_substituted, &other.faults_substituted);
        add(&self.epochs_done, &other.epochs_done);
        add(&self.spans, &other.spans);
        add(&self.manifests, &other.manifests);
        add(&self.serve_admitted, &other.serve_admitted);
        add(&self.serve_shed, &other.serve_shed);
        add(&self.serve_retries, &other.serve_retries);
        add(&self.serve_degraded, &other.serve_degraded);
        add(&self.serve_breaker_open, &other.serve_breaker_open);
        add(&self.surrogate_hits, &other.surrogate_hits);
        add(&self.surrogate_misses, &other.surrogate_misses);
        add(&self.surrogate_checks, &other.surrogate_checks);
        add(
            &self.surrogate_check_failures,
            &other.surrogate_check_failures,
        );
        self.newton_histogram.merge_from(&other.newton_histogram);
        self.span_histogram.merge_from(&other.span_histogram);
    }

    /// Renders every counter and histogram in the Prometheus text
    /// exposition format (`# TYPE` + sample lines), for future serving.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let counts = self.counts();
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "ferrocim_newton_iterations_total",
            "Newton-Raphson iterations run.",
            counts.newton_iters,
        );
        counter(
            "ferrocim_newton_residuals_total",
            "Per-iteration residual diagnostics recorded.",
            counts.newton_residuals,
        );
        counter(
            "ferrocim_newton_converged_total",
            "Newton solves that converged.",
            counts.newton_converged,
        );
        counter(
            "ferrocim_solver_solves_total",
            "Linear systems factored and solved.",
            counts.solver_solves,
        );
        counter(
            "ferrocim_solver_symbolic_total",
            "Solves that ran a fresh symbolic analysis.",
            counts.solver_symbolic,
        );
        counter(
            "ferrocim_solves_refined_total",
            "Certified solves that needed iterative refinement.",
            counts.solves_refined,
        );
        counter(
            "ferrocim_solves_degraded_total",
            "Solver degradation-ladder escalations.",
            counts.solves_degraded,
        );
        counter(
            "ferrocim_steps_accepted_total",
            "Transient steps accepted.",
            counts.steps_accepted,
        );
        counter(
            "ferrocim_steps_rejected_total",
            "Transient steps rejected.",
            counts.steps_rejected,
        );
        counter(
            "ferrocim_rescue_attempts_total",
            "Convergence-rescue rung attempts.",
            counts.rescue_attempts,
        );
        counter(
            "ferrocim_rescues_succeeded_total",
            "Rescue rungs that converged.",
            counts.rescues_succeeded,
        );
        counter(
            "ferrocim_budget_newton_total",
            "Newton iterations charged to a limited budget.",
            counts.budget_newton,
        );
        counter(
            "ferrocim_budget_steps_total",
            "Steps charged to a limited budget.",
            counts.budget_steps,
        );
        counter(
            "ferrocim_mc_runs_started_total",
            "Monte-Carlo runs started.",
            counts.mc_runs_started,
        );
        counter(
            "ferrocim_mc_runs_ok_total",
            "Monte-Carlo runs that produced a sample.",
            counts.mc_runs_ok,
        );
        counter(
            "ferrocim_mc_runs_failed_total",
            "Monte-Carlo runs that failed or were skipped.",
            counts.mc_runs_failed,
        );
        counter(
            "ferrocim_mac_jobs_total",
            "Row-MAC jobs requested.",
            counts.mac_jobs,
        );
        counter(
            "ferrocim_mac_solves_total",
            "Row-MAC transients solved after dedup.",
            counts.mac_solves,
        );
        counter(
            "ferrocim_faults_substituted_total",
            "Fault-tolerant oracle substitutions.",
            counts.faults_substituted,
        );
        counter(
            "ferrocim_epochs_done_total",
            "Training epochs completed.",
            counts.epochs_done,
        );
        counter(
            "ferrocim_spans_total",
            "Scoped timers closed.",
            counts.spans,
        );
        counter(
            "ferrocim_manifests_total",
            "Run manifests seen.",
            counts.manifests,
        );
        counter(
            "ferrocim_serve_admitted_total",
            "Requests admitted into the serve worker queue.",
            counts.serve_admitted,
        );
        counter(
            "ferrocim_serve_shed_total",
            "Requests shed with a typed 429 Overloaded.",
            counts.serve_shed,
        );
        counter(
            "ferrocim_serve_retries_total",
            "Backoff retries of transient solve failures.",
            counts.serve_retries,
        );
        counter(
            "ferrocim_serve_degraded_total",
            "Responses answered from the degraded transfer-curve fallback.",
            counts.serve_degraded,
        );
        counter(
            "ferrocim_serve_breaker_open_total",
            "Circuit-breaker closed-to-open trips.",
            counts.serve_breaker_open,
        );
        counter(
            "ferrocim_surrogate_hits_total",
            "Surrogate lookups answered from a calibrated curve.",
            counts.surrogate_hits,
        );
        counter(
            "ferrocim_surrogate_misses_total",
            "Surrogate lookups that triggered a live calibration.",
            counts.surrogate_misses,
        );
        counter(
            "ferrocim_surrogate_checks_total",
            "Check-mode live re-solves of surrogate answers.",
            counts.surrogate_checks,
        );
        counter(
            "ferrocim_surrogate_check_failures_total",
            "Check-mode deviations exceeding the certified envelope.",
            counts.surrogate_check_failures,
        );
        self.newton_histogram.render_prometheus_into(
            "ferrocim_newton_iterations_per_solve",
            "Newton iterations needed per converged solve.",
            &mut out,
        );
        self.span_histogram.render_prometheus_into(
            "ferrocim_span_micros",
            "Scoped-timer latencies in microseconds.",
            &mut out,
        );
        out
    }
}

impl Default for Aggregator {
    fn default() -> Self {
        Aggregator::new()
    }
}

impl Recorder for Aggregator {
    fn record(&self, event: &Event) {
        match event {
            Event::NewtonIter { .. } => {
                self.newton_iters.fetch_add(1, Ordering::Relaxed);
            }
            Event::NewtonResidual { .. } => {
                self.newton_residuals.fetch_add(1, Ordering::Relaxed);
            }
            Event::NewtonConverged { iterations } => {
                self.newton_converged.fetch_add(1, Ordering::Relaxed);
                self.newton_histogram.record(*iterations as f64);
            }
            Event::SolverSolved { symbolic, .. } => {
                self.solver_solves.fetch_add(1, Ordering::Relaxed);
                if *symbolic {
                    self.solver_symbolic.fetch_add(1, Ordering::Relaxed);
                }
            }
            Event::SolveRefined { .. } => {
                self.solves_refined.fetch_add(1, Ordering::Relaxed);
            }
            Event::SolveDegraded { .. } => {
                self.solves_degraded.fetch_add(1, Ordering::Relaxed);
            }
            Event::StepAccepted { .. } => {
                self.steps_accepted.fetch_add(1, Ordering::Relaxed);
            }
            Event::StepRejected { .. } => {
                self.steps_rejected.fetch_add(1, Ordering::Relaxed);
            }
            Event::RescueAttempt { converged, .. } => {
                self.rescue_attempts.fetch_add(1, Ordering::Relaxed);
                if *converged {
                    self.rescues_succeeded.fetch_add(1, Ordering::Relaxed);
                }
            }
            Event::BudgetSpend { resource, amount } => match resource {
                crate::event::ResourceKind::NewtonIterations => {
                    self.budget_newton.fetch_add(*amount, Ordering::Relaxed);
                }
                crate::event::ResourceKind::Steps => {
                    self.budget_steps.fetch_add(*amount, Ordering::Relaxed);
                }
            },
            Event::McRunStarted { .. } => {
                self.mc_runs_started.fetch_add(1, Ordering::Relaxed);
            }
            Event::McRunDone { ok, .. } => {
                if *ok {
                    self.mc_runs_ok.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.mc_runs_failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            Event::MacIssued { jobs, solves } => {
                self.mac_jobs.fetch_add(*jobs, Ordering::Relaxed);
                self.mac_solves.fetch_add(*solves, Ordering::Relaxed);
            }
            Event::FaultSubstituted { .. } => {
                self.faults_substituted.fetch_add(1, Ordering::Relaxed);
            }
            Event::EpochDone { .. } => {
                self.epochs_done.fetch_add(1, Ordering::Relaxed);
            }
            // Only the close is counted: a SpanEnd proves the full
            // begin/end pair, and its duration feeds the histogram.
            Event::SpanBegin { .. } => {}
            Event::SpanEnd { micros, .. } => {
                self.spans.fetch_add(1, Ordering::Relaxed);
                self.span_histogram.record(*micros);
            }
            Event::Manifest { .. } => {
                self.manifests.fetch_add(1, Ordering::Relaxed);
            }
            Event::ServeAdmitted { .. } => {
                self.serve_admitted.fetch_add(1, Ordering::Relaxed);
            }
            Event::ServeShed { .. } => {
                self.serve_shed.fetch_add(1, Ordering::Relaxed);
            }
            Event::ServeRetry { .. } => {
                self.serve_retries.fetch_add(1, Ordering::Relaxed);
            }
            Event::ServeDegraded { .. } => {
                self.serve_degraded.fetch_add(1, Ordering::Relaxed);
            }
            Event::ServeBreakerOpen { .. } => {
                self.serve_breaker_open.fetch_add(1, Ordering::Relaxed);
            }
            Event::SurrogateLookup { hit } => {
                if *hit {
                    self.surrogate_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.surrogate_misses.fetch_add(1, Ordering::Relaxed);
                }
            }
            Event::SurrogateCheck { ok, .. } => {
                self.surrogate_checks.fetch_add(1, Ordering::Relaxed);
                if !*ok {
                    self.surrogate_check_failures
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ResourceKind, RungKind};

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(1.0); // le="1" (inclusive)
        h.record(5.0);
        h.record(100.0); // overflow
        assert_eq!(h.counts(), vec![2, 1, 1]);
        assert_eq!(h.total(), 4);
        assert!((h.sum() - 106.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_same_shape_is_bucketwise() {
        let a = Histogram::new(&[1.0, 10.0]);
        let b = Histogram::new(&[1.0, 10.0]);
        a.record(0.5);
        b.record(5.0);
        b.record(50.0);
        a.merge_from(&b);
        assert_eq!(a.counts(), vec![1, 1, 1]);
        assert!((a.sum() - 55.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_shape_mismatch_keeps_totals() {
        let a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        b.record(0.5);
        b.record(3.0);
        a.merge_from(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.counts(), vec![0, 2]);
    }

    #[test]
    fn aggregator_counts_every_event_kind() {
        let agg = Aggregator::new();
        agg.record(&Event::NewtonIter { iteration: 1 });
        agg.record(&Event::NewtonIter { iteration: 2 });
        agg.record(&Event::NewtonResidual {
            iteration: 2,
            residual: 1e-6,
            damping: 1.0,
        });
        agg.record(&Event::NewtonConverged { iterations: 2 });
        agg.record(&Event::SolverSolved {
            backend: crate::SolverBackend::Sparse,
            symbolic: true,
        });
        agg.record(&Event::SolverSolved {
            backend: crate::SolverBackend::Sparse,
            symbolic: false,
        });
        agg.record(&Event::SolveRefined {
            passes: 1,
            residual: 1e-12,
        });
        agg.record(&Event::SolveDegraded {
            stage: crate::DegradeStageKind::FreshSymbolic,
            residual: 1e-3,
        });
        agg.record(&Event::StepAccepted { time: 0.0, dt: 1.0 });
        agg.record(&Event::StepRejected { time: 0.0, dt: 1.0 });
        agg.record(&Event::RescueAttempt {
            rung: RungKind::PlainNewton,
            iterations: 3,
            converged: false,
        });
        agg.record(&Event::RescueAttempt {
            rung: RungKind::GminStepping,
            iterations: 9,
            converged: true,
        });
        agg.record(&Event::BudgetSpend {
            resource: ResourceKind::NewtonIterations,
            amount: 4,
        });
        agg.record(&Event::BudgetSpend {
            resource: ResourceKind::Steps,
            amount: 2,
        });
        agg.record(&Event::McRunStarted { run: 0 });
        agg.record(&Event::McRunDone { run: 0, ok: true });
        agg.record(&Event::McRunDone { run: 1, ok: false });
        agg.record(&Event::MacIssued {
            jobs: 16,
            solves: 2,
        });
        agg.record(&Event::FaultSubstituted { substitute: 4 });
        agg.record(&Event::EpochDone {
            epoch: 0,
            loss: 1.0,
            accuracy: 0.5,
        });
        agg.record(&Event::SpanBegin {
            id: 1,
            parent: 0,
            tid: 1,
            name: "x".into(),
            ts: 0.0,
        });
        agg.record(&Event::SpanEnd { id: 1, micros: 5.0 });
        agg.record(&Event::ServeAdmitted { queue_depth: 1 });
        agg.record(&Event::ServeAdmitted { queue_depth: 2 });
        agg.record(&Event::ServeShed {
            queue_depth: 8,
            retry_after_ms: 100,
        });
        agg.record(&Event::ServeRetry {
            attempt: 1,
            backoff_ms: 20,
        });
        agg.record(&Event::ServeDegraded {
            breaker_open: false,
        });
        agg.record(&Event::ServeBreakerOpen {
            window_failures: 5,
            window_size: 8,
        });
        agg.record(&Event::SurrogateLookup { hit: true });
        agg.record(&Event::SurrogateLookup { hit: true });
        agg.record(&Event::SurrogateLookup { hit: false });
        agg.record(&Event::SurrogateCheck {
            ok: true,
            deviation: 1e-5,
        });
        agg.record(&Event::SurrogateCheck {
            ok: false,
            deviation: 1e-2,
        });
        let c = agg.counts();
        assert_eq!(c.newton_iters, 2);
        assert_eq!(c.newton_residuals, 1);
        assert_eq!(c.newton_converged, 1);
        assert_eq!(c.solver_solves, 2);
        assert_eq!(c.solver_symbolic, 1);
        assert_eq!(c.solves_refined, 1);
        assert_eq!(c.solves_degraded, 1);
        assert_eq!(c.steps_accepted, 1);
        assert_eq!(c.steps_rejected, 1);
        assert_eq!(c.rescue_attempts, 2);
        assert_eq!(c.rescues_succeeded, 1);
        assert_eq!(c.budget_newton, 4);
        assert_eq!(c.budget_steps, 2);
        assert_eq!(c.mc_runs_started, 1);
        assert_eq!(c.mc_runs_ok, 1);
        assert_eq!(c.mc_runs_failed, 1);
        assert_eq!(c.mac_jobs, 16);
        assert_eq!(c.mac_solves, 2);
        assert_eq!(c.faults_substituted, 1);
        assert_eq!(c.epochs_done, 1);
        assert_eq!(c.spans, 1, "only SpanEnd counts as a closed span");
        assert_eq!(c.serve_admitted, 2);
        assert_eq!(c.serve_shed, 1);
        assert_eq!(c.serve_retries, 1);
        assert_eq!(c.serve_degraded, 1);
        assert_eq!(c.serve_breaker_open, 1);
        assert_eq!(c.surrogate_hits, 2);
        assert_eq!(c.surrogate_misses, 1);
        assert_eq!(c.surrogate_checks, 2);
        assert_eq!(c.surrogate_check_failures, 1);
        assert_eq!(agg.newton_histogram().total(), 1);
        assert_eq!(agg.span_histogram().total(), 1);
    }

    #[test]
    fn merge_from_adds_counters_and_histograms() {
        let a = Aggregator::new();
        let b = Aggregator::new();
        a.record(&Event::StepAccepted { time: 0.0, dt: 1.0 });
        b.record(&Event::StepAccepted { time: 1.0, dt: 1.0 });
        b.record(&Event::NewtonConverged { iterations: 3 });
        a.merge_from(&b);
        assert_eq!(a.counts().steps_accepted, 2);
        assert_eq!(a.counts().newton_converged, 1);
        assert_eq!(a.newton_histogram().total(), 1);
    }

    #[test]
    fn prometheus_exposition_has_counters_and_buckets() {
        let agg = Aggregator::new();
        agg.record(&Event::StepAccepted { time: 0.0, dt: 1.0 });
        agg.record(&Event::NewtonConverged { iterations: 5 });
        let text = agg.render_prometheus();
        assert!(text.contains("# TYPE ferrocim_steps_accepted_total counter"));
        assert!(text.contains("ferrocim_steps_accepted_total 1"));
        assert!(text.contains("# TYPE ferrocim_solves_refined_total counter"));
        assert!(text.contains("# TYPE ferrocim_solves_degraded_total counter"));
        assert!(text.contains("# HELP ferrocim_newton_iterations_per_solve "));
        assert!(text.contains("# TYPE ferrocim_newton_iterations_per_solve histogram"));
        assert!(text.contains("ferrocim_newton_iterations_per_solve_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("ferrocim_newton_iterations_per_solve_count 1"));
    }
}
