//! In-memory aggregation: atomic counters, fixed-bucket histograms,
//! and a Prometheus-style text exposition.

use crate::event::Event;
use crate::recorder::Recorder;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, recovering the data from a poisoned lock: every
/// structure in this module stays internally consistent under panic
/// (counters may at worst miss the increment that panicked), so
/// observing after a poisoning is always safe.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Escapes a label value for the Prometheus text exposition format
/// (backslash, double quote, and newline are the only specials).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Adds `value` into an `AtomicU64` holding `f64` bits, lock-free.
fn atomic_f64_add(cell: &AtomicU64, value: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + value).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

/// A fixed-bucket histogram with atomic counts.
///
/// Bucket `i` counts observations `value <= bounds[i]` (the smallest
/// such bound wins, Prometheus `le` semantics); one extra overflow
/// bucket catches everything above the last bound. Recording is
/// lock-free, and two histograms with identical bounds can be merged
/// bucket-wise (the `fan_out` per-thread pattern).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    /// Sum of observed values, stored as `f64` bits.
    sum: AtomicU64,
}

impl Histogram {
    /// Builds a histogram over ascending upper bounds. Out-of-order
    /// bounds are sorted; an empty bound list yields a single overflow
    /// bucket.
    pub fn new(bounds: &[f64]) -> Histogram {
        let mut bounds = bounds.to_vec();
        bounds.sort_by(f64::total_cmp);
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// The bucket upper bounds (ascending, exclusive of the overflow
    /// bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one observation.
    pub fn record(&self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum, value);
    }

    /// Per-bucket counts (the last entry is the overflow bucket).
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Ordering::Relaxed))
    }

    /// Adds `other`'s buckets into `self`. When the bucket bounds
    /// differ, `other`'s observations land in the overflow bucket (the
    /// totals and sums stay exact; only their placement degrades).
    pub fn merge_from(&self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (mine, theirs) in self.counts.iter().zip(&other.counts) {
                mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        } else if let Some(overflow) = self.counts.last() {
            overflow.fetch_add(other.total(), Ordering::Relaxed);
        }
        atomic_f64_add(&self.sum, other.sum());
    }

    /// Renders the histogram in Prometheus text exposition format.
    fn render_prometheus_into(&self, name: &str, help: &str, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in self.bounds.iter().zip(&self.counts) {
            cumulative += count.load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let total = self.total();
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
        let _ = writeln!(out, "{name}_sum {}", self.sum());
        let _ = writeln!(out, "{name}_count {total}");
    }
}

/// One sample from a [`LabeledCounts`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledCount {
    /// Tenant label (overflow tenants collapse to `"other"`).
    pub tenant: String,
    /// Request-outcome label (see
    /// [`ServeOutcome::label`](crate::ServeOutcome::label)).
    pub outcome: String,
    /// Answering-backend label (see
    /// [`ServeBackendKind::label`](crate::ServeBackendKind::label)).
    pub backend: String,
    /// Requests observed with this label set.
    pub value: u64,
}

/// One (tenant, outcome, backend) key in a [`LabeledCounts`] family.
type LabelKey = (String, String, String);

/// A bounded-cardinality counter family keyed on small label sets:
/// (tenant, outcome, backend).
///
/// Tenant labels are client-controlled, so the family caps how many
/// distinct tenants it tracks; once the cap is reached, new tenants
/// collapse into the `"other"` label (at most `cap + 1` tenant labels
/// ever exist, never unbounded growth). Outcome and backend labels come
/// from the closed [`ServeOutcome`](crate::ServeOutcome) /
/// [`ServeBackendKind`](crate::ServeBackendKind) sets and need no cap.
#[derive(Debug)]
pub struct LabeledCounts {
    tenant_cap: usize,
    cells: Mutex<Vec<(LabelKey, u64)>>,
}

impl LabeledCounts {
    /// An empty family tracking at most `tenant_cap` distinct tenants
    /// (plus the `"other"` overflow label).
    pub fn new(tenant_cap: usize) -> LabeledCounts {
        LabeledCounts {
            tenant_cap,
            cells: Mutex::new(Vec::new()),
        }
    }

    /// Increments the (tenant, outcome, backend) cell by one.
    pub fn add(&self, tenant: &str, outcome: &str, backend: &str) {
        self.add_n(tenant, outcome, backend, 1);
    }

    fn add_n(&self, tenant: &str, outcome: &str, backend: &str, n: u64) {
        let mut cells = lock(&self.cells);
        let tenant = if cells.iter().any(|((t, _, _), _)| t == tenant) {
            tenant
        } else {
            let mut distinct: Vec<&str> = cells.iter().map(|((t, _, _), _)| t.as_str()).collect();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() >= self.tenant_cap {
                "other"
            } else {
                tenant
            }
        };
        if let Some((_, value)) = cells
            .iter_mut()
            .find(|((t, o, b), _)| t == tenant && o == outcome && b == backend)
        {
            *value += n;
        } else {
            cells.push((
                (tenant.to_string(), outcome.to_string(), backend.to_string()),
                n,
            ));
        }
    }

    /// A sorted snapshot of every cell.
    pub fn snapshot(&self) -> Vec<LabeledCount> {
        let mut cells: Vec<LabeledCount> = lock(&self.cells)
            .iter()
            .map(|((tenant, outcome, backend), value)| LabeledCount {
                tenant: tenant.clone(),
                outcome: outcome.clone(),
                backend: backend.clone(),
                value: *value,
            })
            .collect();
        cells.sort_by(|a, b| {
            (&a.tenant, &a.outcome, &a.backend).cmp(&(&b.tenant, &b.outcome, &b.backend))
        });
        cells
    }

    /// Sum over every cell.
    pub fn total(&self) -> u64 {
        lock(&self.cells).iter().map(|(_, v)| v).sum()
    }

    /// Adds `other`'s cells into `self`, re-applying `self`'s tenant
    /// cap (the per-thread merge pattern).
    pub fn merge_from(&self, other: &LabeledCounts) {
        for cell in other.snapshot() {
            self.add_n(&cell.tenant, &cell.outcome, &cell.backend, cell.value);
        }
    }
}

/// Policy for the serve SLO burn-rate monitor: a sliding window of
/// request outcomes in which shed, degraded, deadline-missed, and
/// errored answers burn error budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Sliding-window length in requests.
    pub window: usize,
    /// Minimum observations before a breach can latch (protects the
    /// first few requests from tripping on a tiny denominator).
    pub min_samples: usize,
    /// Burn fraction (`bad / window`) at or above which a breach
    /// latches.
    pub burn_threshold: f64,
}

impl Default for SloPolicy {
    fn default() -> SloPolicy {
        SloPolicy {
            window: 64,
            min_samples: 16,
            burn_threshold: 0.5,
        }
    }
}

/// A latched SLO breach: the window statistics at the moment the burn
/// rate crossed the policy threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloBreachInfo {
    /// Observations in the window when the breach latched.
    pub window: u64,
    /// Budget-burning observations among them.
    pub bad: u64,
    /// The burn fraction `bad / window` (0..=1).
    pub burn: f64,
}

/// The SLO monitor's sliding window. Edge-triggered: a breach latches
/// once when the burn rate crosses the threshold and re-arms only
/// after the rate drops back below it, so a sustained breach produces
/// one dump trigger rather than one per request.
#[derive(Debug, Default)]
struct SloState {
    recent: VecDeque<bool>,
    latched: bool,
    pending: Option<SloBreachInfo>,
}

/// A point-in-time snapshot of every [`Aggregator`] counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counts {
    /// Newton iterations run ([`Event::NewtonIter`]).
    pub newton_iters: u64,
    /// Per-iteration residual diagnostics ([`Event::NewtonResidual`],
    /// emitted only at `DetailLevel::Iterations`).
    pub newton_residuals: u64,
    /// Newton solves that converged ([`Event::NewtonConverged`]).
    pub newton_converged: u64,
    /// Linear systems factored and solved ([`Event::SolverSolved`]).
    pub solver_solves: u64,
    /// Solves that ran a fresh symbolic analysis first
    /// ([`Event::SolverSolved`] with `symbolic: true`). On a fixed
    /// topology the sparse backend reports exactly one of these no
    /// matter how many numeric solves follow.
    pub solver_symbolic: u64,
    /// Certified solves that needed iterative refinement
    /// ([`Event::SolveRefined`]).
    pub solves_refined: u64,
    /// Solver degradation-ladder escalations ([`Event::SolveDegraded`]).
    pub solves_degraded: u64,
    /// Transient steps accepted ([`Event::StepAccepted`]).
    pub steps_accepted: u64,
    /// Transient steps rejected ([`Event::StepRejected`]).
    pub steps_rejected: u64,
    /// Rescue-ladder rung attempts ([`Event::RescueAttempt`]).
    pub rescue_attempts: u64,
    /// Rescue-ladder attempts that converged (one per rescued solve).
    pub rescues_succeeded: u64,
    /// Newton iterations charged to a limited budget.
    pub budget_newton: u64,
    /// Steps charged to a limited budget.
    pub budget_steps: u64,
    /// Monte-Carlo runs started ([`Event::McRunStarted`]).
    pub mc_runs_started: u64,
    /// Monte-Carlo runs that produced a sample.
    pub mc_runs_ok: u64,
    /// Monte-Carlo runs that failed or were skipped.
    pub mc_runs_failed: u64,
    /// MAC jobs requested across all batches ([`Event::MacIssued`]).
    pub mac_jobs: u64,
    /// MAC transients actually solved after duplicate collapsing.
    pub mac_solves: u64,
    /// Fault substitutions ([`Event::FaultSubstituted`]).
    pub faults_substituted: u64,
    /// Training epochs completed ([`Event::EpochDone`]).
    pub epochs_done: u64,
    /// Scoped timers closed ([`Event::SpanEnd`]).
    pub spans: u64,
    /// Run manifests seen ([`Event::Manifest`]).
    pub manifests: u64,
    /// Requests admitted by `ferrocim-serve` ([`Event::ServeAdmitted`]).
    pub serve_admitted: u64,
    /// Requests shed with a typed `429` ([`Event::ServeShed`]).
    pub serve_shed: u64,
    /// Backoff retries of transient solve failures
    /// ([`Event::ServeRetry`]).
    pub serve_retries: u64,
    /// Responses answered from the degraded transfer-curve fallback
    /// ([`Event::ServeDegraded`]).
    pub serve_degraded: u64,
    /// Circuit-breaker closed-to-open trips
    /// ([`Event::ServeBreakerOpen`]).
    pub serve_breaker_open: u64,
    /// Requests finished with a typed outcome ([`Event::ServeDone`]).
    /// Absent from traces recorded before the flight-recorder release,
    /// hence the serde default.
    #[serde(default)]
    pub serve_done: u64,
    /// SLO burn-rate breaches latched ([`Event::SloBreach`]).
    #[serde(default)]
    pub slo_breaches: u64,
    /// Surrogate-store lookups answered from a calibrated curve
    /// ([`Event::SurrogateLookup`] with `hit: true`).
    pub surrogate_hits: u64,
    /// Surrogate-store lookups that missed and triggered a live
    /// calibration ([`Event::SurrogateLookup`] with `hit: false`).
    pub surrogate_misses: u64,
    /// Check-mode live re-solves of surrogate-answered queries
    /// ([`Event::SurrogateCheck`]).
    pub surrogate_checks: u64,
    /// Check-mode re-solves whose deviation exceeded the certified
    /// envelope ([`Event::SurrogateCheck`] with `ok: false`).
    pub surrogate_check_failures: u64,
}

/// A lock-free in-memory [`Recorder`]: atomic counters per event kind
/// plus fixed-bucket histograms of Newton iterations per converged
/// solve and span latencies.
///
/// The aggregator is `Sync`, so one instance can be shared across
/// `fan_out` worker threads directly; alternatively, give each thread
/// its own and combine them with [`Aggregator::merge_from`].
#[derive(Debug)]
pub struct Aggregator {
    newton_iters: AtomicU64,
    newton_residuals: AtomicU64,
    newton_converged: AtomicU64,
    solver_solves: AtomicU64,
    solver_symbolic: AtomicU64,
    solves_refined: AtomicU64,
    solves_degraded: AtomicU64,
    steps_accepted: AtomicU64,
    steps_rejected: AtomicU64,
    rescue_attempts: AtomicU64,
    rescues_succeeded: AtomicU64,
    budget_newton: AtomicU64,
    budget_steps: AtomicU64,
    mc_runs_started: AtomicU64,
    mc_runs_ok: AtomicU64,
    mc_runs_failed: AtomicU64,
    mac_jobs: AtomicU64,
    mac_solves: AtomicU64,
    faults_substituted: AtomicU64,
    epochs_done: AtomicU64,
    spans: AtomicU64,
    manifests: AtomicU64,
    serve_admitted: AtomicU64,
    serve_shed: AtomicU64,
    serve_retries: AtomicU64,
    serve_degraded: AtomicU64,
    serve_breaker_open: AtomicU64,
    serve_done: AtomicU64,
    slo_breaches: AtomicU64,
    surrogate_hits: AtomicU64,
    surrogate_misses: AtomicU64,
    surrogate_checks: AtomicU64,
    surrogate_check_failures: AtomicU64,
    newton_histogram: Histogram,
    span_histogram: Histogram,
    serve_tenant_cap: usize,
    serve_requests: LabeledCounts,
    serve_latency: Mutex<Vec<(String, Histogram)>>,
    slo_policy: SloPolicy,
    slo: Mutex<SloState>,
}

/// Upper bounds (iterations) for the Newton-per-solve histogram.
const NEWTON_BOUNDS: &[f64] = &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0];

/// Upper bounds (microseconds) for the span-latency histogram.
const SPAN_BOUNDS: &[f64] = &[1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8];

/// Upper bounds (milliseconds) for the per-tenant serve request-latency
/// histograms: sub-millisecond surrogate answers up through the serve
/// deadline ceiling.
const SERVE_LATENCY_BOUNDS_MS: &[f64] = &[
    0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1e3, 2.5e3,
];

/// Default cap on distinct tenant labels in the dimensional serve
/// metrics (see [`Aggregator::with_serve_tenant_cap`]).
const SERVE_TENANT_CAP: usize = 16;

impl Aggregator {
    /// An empty aggregator with the default histogram buckets.
    pub fn new() -> Aggregator {
        Aggregator {
            newton_iters: AtomicU64::new(0),
            newton_residuals: AtomicU64::new(0),
            newton_converged: AtomicU64::new(0),
            solver_solves: AtomicU64::new(0),
            solver_symbolic: AtomicU64::new(0),
            solves_refined: AtomicU64::new(0),
            solves_degraded: AtomicU64::new(0),
            steps_accepted: AtomicU64::new(0),
            steps_rejected: AtomicU64::new(0),
            rescue_attempts: AtomicU64::new(0),
            rescues_succeeded: AtomicU64::new(0),
            budget_newton: AtomicU64::new(0),
            budget_steps: AtomicU64::new(0),
            mc_runs_started: AtomicU64::new(0),
            mc_runs_ok: AtomicU64::new(0),
            mc_runs_failed: AtomicU64::new(0),
            mac_jobs: AtomicU64::new(0),
            mac_solves: AtomicU64::new(0),
            faults_substituted: AtomicU64::new(0),
            epochs_done: AtomicU64::new(0),
            spans: AtomicU64::new(0),
            manifests: AtomicU64::new(0),
            serve_admitted: AtomicU64::new(0),
            serve_shed: AtomicU64::new(0),
            serve_retries: AtomicU64::new(0),
            serve_degraded: AtomicU64::new(0),
            serve_breaker_open: AtomicU64::new(0),
            serve_done: AtomicU64::new(0),
            slo_breaches: AtomicU64::new(0),
            surrogate_hits: AtomicU64::new(0),
            surrogate_misses: AtomicU64::new(0),
            surrogate_checks: AtomicU64::new(0),
            surrogate_check_failures: AtomicU64::new(0),
            newton_histogram: Histogram::new(NEWTON_BOUNDS),
            span_histogram: Histogram::new(SPAN_BOUNDS),
            serve_tenant_cap: SERVE_TENANT_CAP,
            serve_requests: LabeledCounts::new(SERVE_TENANT_CAP),
            serve_latency: Mutex::new(Vec::new()),
            slo_policy: SloPolicy::default(),
            slo: Mutex::new(SloState::default()),
        }
    }

    /// Caps the number of distinct tenant labels tracked by the
    /// dimensional serve metrics (counter cells and latency series);
    /// tenants beyond the cap collapse into `"other"`. Call before
    /// recording: already-tracked tenants are kept.
    pub fn with_serve_tenant_cap(mut self, cap: usize) -> Aggregator {
        self.serve_tenant_cap = cap;
        let old = std::mem::replace(&mut self.serve_requests, LabeledCounts::new(cap));
        self.serve_requests.merge_from(&old);
        self
    }

    /// Replaces the SLO burn-rate policy (window, minimum samples, and
    /// the burn fraction at which a breach latches).
    pub fn with_slo_policy(mut self, policy: SloPolicy) -> Aggregator {
        self.slo_policy = SloPolicy {
            window: policy.window.max(1),
            ..policy
        };
        self
    }

    /// Snapshot of every counter.
    pub fn counts(&self) -> Counts {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        Counts {
            newton_iters: load(&self.newton_iters),
            newton_residuals: load(&self.newton_residuals),
            newton_converged: load(&self.newton_converged),
            solver_solves: load(&self.solver_solves),
            solver_symbolic: load(&self.solver_symbolic),
            solves_refined: load(&self.solves_refined),
            solves_degraded: load(&self.solves_degraded),
            steps_accepted: load(&self.steps_accepted),
            steps_rejected: load(&self.steps_rejected),
            rescue_attempts: load(&self.rescue_attempts),
            rescues_succeeded: load(&self.rescues_succeeded),
            budget_newton: load(&self.budget_newton),
            budget_steps: load(&self.budget_steps),
            mc_runs_started: load(&self.mc_runs_started),
            mc_runs_ok: load(&self.mc_runs_ok),
            mc_runs_failed: load(&self.mc_runs_failed),
            mac_jobs: load(&self.mac_jobs),
            mac_solves: load(&self.mac_solves),
            faults_substituted: load(&self.faults_substituted),
            epochs_done: load(&self.epochs_done),
            spans: load(&self.spans),
            manifests: load(&self.manifests),
            serve_admitted: load(&self.serve_admitted),
            serve_shed: load(&self.serve_shed),
            serve_retries: load(&self.serve_retries),
            serve_degraded: load(&self.serve_degraded),
            serve_breaker_open: load(&self.serve_breaker_open),
            serve_done: load(&self.serve_done),
            slo_breaches: load(&self.slo_breaches),
            surrogate_hits: load(&self.surrogate_hits),
            surrogate_misses: load(&self.surrogate_misses),
            surrogate_checks: load(&self.surrogate_checks),
            surrogate_check_failures: load(&self.surrogate_check_failures),
        }
    }

    /// The histogram of Newton iterations per converged solve.
    pub fn newton_histogram(&self) -> &Histogram {
        &self.newton_histogram
    }

    /// The histogram of span latencies (microseconds).
    pub fn span_histogram(&self) -> &Histogram {
        &self.span_histogram
    }

    /// A snapshot of the (tenant, outcome, backend) labeled request
    /// counters (sorted, bounded cardinality).
    pub fn serve_requests(&self) -> Vec<LabeledCount> {
        self.serve_requests.snapshot()
    }

    /// Per-tenant request-latency rollups: `(tenant, count, sum_ms)`,
    /// sorted by tenant.
    pub fn serve_latency_totals(&self) -> Vec<(String, u64, f64)> {
        let mut rows: Vec<(String, u64, f64)> = lock(&self.serve_latency)
            .iter()
            .map(|(tenant, hist)| (tenant.clone(), hist.total(), hist.sum()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// The current SLO error-budget burn fraction (`bad / window` over
    /// the sliding window; 0 when nothing has been observed).
    pub fn slo_burn(&self) -> f64 {
        let slo = lock(&self.slo);
        if slo.recent.is_empty() {
            return 0.0;
        }
        let bad = slo.recent.iter().filter(|&&b| b).count();
        bad as f64 / slo.recent.len() as f64
    }

    /// Takes the pending SLO breach, if one latched since the last
    /// call. The monitor is edge-triggered: a sustained burn above the
    /// threshold yields exactly one breach until the rate recovers
    /// below the threshold and crosses again.
    pub fn take_slo_breach(&self) -> Option<SloBreachInfo> {
        lock(&self.slo).pending.take()
    }

    /// Records one finished request's latency into its tenant's
    /// histogram, applying the tenant cardinality cap.
    fn record_serve_latency(&self, tenant: &str, latency_ms: f64) {
        let mut series = lock(&self.serve_latency);
        let slot = if let Some(i) = series.iter().position(|(t, _)| t == tenant) {
            i
        } else {
            let name = if series.len() >= self.serve_tenant_cap {
                "other"
            } else {
                tenant
            };
            match series.iter().position(|(t, _)| t == name) {
                Some(i) => i,
                None => {
                    series.push((name.to_string(), Histogram::new(SERVE_LATENCY_BOUNDS_MS)));
                    series.len() - 1
                }
            }
        };
        series[slot].1.record(latency_ms);
    }

    /// Feeds one request outcome into the SLO sliding window, latching
    /// a breach on the threshold's rising edge.
    fn observe_slo(&self, bad: bool) {
        let policy = self.slo_policy;
        let mut slo = lock(&self.slo);
        slo.recent.push_back(bad);
        while slo.recent.len() > policy.window {
            slo.recent.pop_front();
        }
        let n = slo.recent.len();
        let bad_count = slo.recent.iter().filter(|&&b| b).count();
        let burn = bad_count as f64 / n as f64;
        if burn >= policy.burn_threshold && n >= policy.min_samples {
            if !slo.latched {
                slo.latched = true;
                slo.pending = Some(SloBreachInfo {
                    window: n as u64,
                    bad: bad_count as u64,
                    burn,
                });
            }
        } else if burn < policy.burn_threshold {
            slo.latched = false;
        }
    }

    /// Adds `other`'s counters and histograms into `self` (the
    /// per-thread `fan_out` merge pattern).
    pub fn merge_from(&self, other: &Aggregator) {
        let add = |mine: &AtomicU64, theirs: &AtomicU64| {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        };
        add(&self.newton_iters, &other.newton_iters);
        add(&self.newton_residuals, &other.newton_residuals);
        add(&self.newton_converged, &other.newton_converged);
        add(&self.solver_solves, &other.solver_solves);
        add(&self.solver_symbolic, &other.solver_symbolic);
        add(&self.solves_refined, &other.solves_refined);
        add(&self.solves_degraded, &other.solves_degraded);
        add(&self.steps_accepted, &other.steps_accepted);
        add(&self.steps_rejected, &other.steps_rejected);
        add(&self.rescue_attempts, &other.rescue_attempts);
        add(&self.rescues_succeeded, &other.rescues_succeeded);
        add(&self.budget_newton, &other.budget_newton);
        add(&self.budget_steps, &other.budget_steps);
        add(&self.mc_runs_started, &other.mc_runs_started);
        add(&self.mc_runs_ok, &other.mc_runs_ok);
        add(&self.mc_runs_failed, &other.mc_runs_failed);
        add(&self.mac_jobs, &other.mac_jobs);
        add(&self.mac_solves, &other.mac_solves);
        add(&self.faults_substituted, &other.faults_substituted);
        add(&self.epochs_done, &other.epochs_done);
        add(&self.spans, &other.spans);
        add(&self.manifests, &other.manifests);
        add(&self.serve_admitted, &other.serve_admitted);
        add(&self.serve_shed, &other.serve_shed);
        add(&self.serve_retries, &other.serve_retries);
        add(&self.serve_degraded, &other.serve_degraded);
        add(&self.serve_breaker_open, &other.serve_breaker_open);
        add(&self.serve_done, &other.serve_done);
        add(&self.slo_breaches, &other.slo_breaches);
        add(&self.surrogate_hits, &other.surrogate_hits);
        add(&self.surrogate_misses, &other.surrogate_misses);
        add(
            &self.surrogate_check_failures,
            &other.surrogate_check_failures,
        );
        add(&self.surrogate_checks, &other.surrogate_checks);
        self.newton_histogram.merge_from(&other.newton_histogram);
        self.span_histogram.merge_from(&other.span_histogram);
        self.serve_requests.merge_from(&other.serve_requests);
        let theirs = lock(&other.serve_latency);
        let mut series = lock(&self.serve_latency);
        for (tenant, hist) in theirs.iter() {
            let slot = match series.iter().position(|(t, _)| t == tenant) {
                Some(i) => i,
                None => {
                    let name = if series.len() >= self.serve_tenant_cap {
                        "other".to_string()
                    } else {
                        tenant.clone()
                    };
                    match series.iter().position(|(t, _)| *t == name) {
                        Some(i) => i,
                        None => {
                            series.push((name, Histogram::new(SERVE_LATENCY_BOUNDS_MS)));
                            series.len() - 1
                        }
                    }
                }
            };
            series[slot].1.merge_from(hist);
        }
        drop(series);
        drop(theirs);
        // The SLO sliding window is deliberately not merged: it is a
        // time-ordered sample sequence, and interleaving two windows
        // after the fact would fabricate an ordering that never
        // happened. Breach *counts* merge via `slo_breaches` above.
    }

    /// Renders every counter and histogram in the Prometheus text
    /// exposition format (`# TYPE` + sample lines), for future serving.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let counts = self.counts();
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "ferrocim_newton_iterations_total",
            "Newton-Raphson iterations run.",
            counts.newton_iters,
        );
        counter(
            "ferrocim_newton_residuals_total",
            "Per-iteration residual diagnostics recorded.",
            counts.newton_residuals,
        );
        counter(
            "ferrocim_newton_converged_total",
            "Newton solves that converged.",
            counts.newton_converged,
        );
        counter(
            "ferrocim_solver_solves_total",
            "Linear systems factored and solved.",
            counts.solver_solves,
        );
        counter(
            "ferrocim_solver_symbolic_total",
            "Solves that ran a fresh symbolic analysis.",
            counts.solver_symbolic,
        );
        counter(
            "ferrocim_solves_refined_total",
            "Certified solves that needed iterative refinement.",
            counts.solves_refined,
        );
        counter(
            "ferrocim_solves_degraded_total",
            "Solver degradation-ladder escalations.",
            counts.solves_degraded,
        );
        counter(
            "ferrocim_steps_accepted_total",
            "Transient steps accepted.",
            counts.steps_accepted,
        );
        counter(
            "ferrocim_steps_rejected_total",
            "Transient steps rejected.",
            counts.steps_rejected,
        );
        counter(
            "ferrocim_rescue_attempts_total",
            "Convergence-rescue rung attempts.",
            counts.rescue_attempts,
        );
        counter(
            "ferrocim_rescues_succeeded_total",
            "Rescue rungs that converged.",
            counts.rescues_succeeded,
        );
        counter(
            "ferrocim_budget_newton_total",
            "Newton iterations charged to a limited budget.",
            counts.budget_newton,
        );
        counter(
            "ferrocim_budget_steps_total",
            "Steps charged to a limited budget.",
            counts.budget_steps,
        );
        counter(
            "ferrocim_mc_runs_started_total",
            "Monte-Carlo runs started.",
            counts.mc_runs_started,
        );
        counter(
            "ferrocim_mc_runs_ok_total",
            "Monte-Carlo runs that produced a sample.",
            counts.mc_runs_ok,
        );
        counter(
            "ferrocim_mc_runs_failed_total",
            "Monte-Carlo runs that failed or were skipped.",
            counts.mc_runs_failed,
        );
        counter(
            "ferrocim_mac_jobs_total",
            "Row-MAC jobs requested.",
            counts.mac_jobs,
        );
        counter(
            "ferrocim_mac_solves_total",
            "Row-MAC transients solved after dedup.",
            counts.mac_solves,
        );
        counter(
            "ferrocim_faults_substituted_total",
            "Fault-tolerant oracle substitutions.",
            counts.faults_substituted,
        );
        counter(
            "ferrocim_epochs_done_total",
            "Training epochs completed.",
            counts.epochs_done,
        );
        counter(
            "ferrocim_spans_total",
            "Scoped timers closed.",
            counts.spans,
        );
        counter(
            "ferrocim_manifests_total",
            "Run manifests seen.",
            counts.manifests,
        );
        counter(
            "ferrocim_serve_admitted_total",
            "Requests admitted into the serve worker queue.",
            counts.serve_admitted,
        );
        counter(
            "ferrocim_serve_shed_total",
            "Requests shed with a typed 429 Overloaded.",
            counts.serve_shed,
        );
        counter(
            "ferrocim_serve_retries_total",
            "Backoff retries of transient solve failures.",
            counts.serve_retries,
        );
        counter(
            "ferrocim_serve_degraded_total",
            "Responses answered from the degraded transfer-curve fallback.",
            counts.serve_degraded,
        );
        counter(
            "ferrocim_serve_breaker_open_total",
            "Circuit-breaker closed-to-open trips.",
            counts.serve_breaker_open,
        );
        counter(
            "ferrocim_serve_done_total",
            "Requests finished with a typed outcome.",
            counts.serve_done,
        );
        counter(
            "ferrocim_slo_breaches_total",
            "SLO burn-rate breaches latched.",
            counts.slo_breaches,
        );
        counter(
            "ferrocim_surrogate_hits_total",
            "Surrogate lookups answered from a calibrated curve.",
            counts.surrogate_hits,
        );
        counter(
            "ferrocim_surrogate_misses_total",
            "Surrogate lookups that triggered a live calibration.",
            counts.surrogate_misses,
        );
        counter(
            "ferrocim_surrogate_checks_total",
            "Check-mode live re-solves of surrogate answers.",
            counts.surrogate_checks,
        );
        counter(
            "ferrocim_surrogate_check_failures_total",
            "Check-mode deviations exceeding the certified envelope.",
            counts.surrogate_check_failures,
        );
        self.newton_histogram.render_prometheus_into(
            "ferrocim_newton_iterations_per_solve",
            "Newton iterations needed per converged solve.",
            &mut out,
        );
        self.span_histogram.render_prometheus_into(
            "ferrocim_span_micros",
            "Scoped-timer latencies in microseconds.",
            &mut out,
        );
        let labeled = self.serve_requests.snapshot();
        if !labeled.is_empty() {
            let name = "ferrocim_serve_requests_total";
            let _ = writeln!(
                out,
                "# HELP {name} Requests by tenant, outcome, and answering backend."
            );
            let _ = writeln!(out, "# TYPE {name} counter");
            for cell in &labeled {
                let _ = writeln!(
                    out,
                    "{name}{{tenant=\"{}\",outcome=\"{}\",backend=\"{}\"}} {}",
                    escape_label(&cell.tenant),
                    escape_label(&cell.outcome),
                    escape_label(&cell.backend),
                    cell.value,
                );
            }
        }
        {
            let mut series: Vec<(String, Vec<u64>, Vec<f64>, f64)> = lock(&self.serve_latency)
                .iter()
                .map(|(tenant, hist)| {
                    (
                        tenant.clone(),
                        hist.counts(),
                        hist.bounds().to_vec(),
                        hist.sum(),
                    )
                })
                .collect();
            series.sort_by(|a, b| a.0.cmp(&b.0));
            if !series.is_empty() {
                let name = "ferrocim_serve_request_latency_ms";
                let _ = writeln!(
                    out,
                    "# HELP {name} Serve request latency in milliseconds by tenant."
                );
                let _ = writeln!(out, "# TYPE {name} histogram");
                for (tenant, bucket_counts, bounds, sum) in &series {
                    let tenant = escape_label(tenant);
                    let mut cumulative = 0u64;
                    for (bound, count) in bounds.iter().zip(bucket_counts) {
                        cumulative += count;
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{tenant=\"{tenant}\",le=\"{bound}\"}} {cumulative}"
                        );
                    }
                    let total: u64 = bucket_counts.iter().sum();
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{tenant=\"{tenant}\",le=\"+Inf\"}} {total}"
                    );
                    let _ = writeln!(out, "{name}_sum{{tenant=\"{tenant}\"}} {sum}");
                    let _ = writeln!(out, "{name}_count{{tenant=\"{tenant}\"}} {total}");
                }
            }
        }
        let _ = writeln!(
            out,
            "# HELP ferrocim_serve_slo_burn Error-budget burn fraction over the sliding SLO window."
        );
        let _ = writeln!(out, "# TYPE ferrocim_serve_slo_burn gauge");
        let _ = writeln!(out, "ferrocim_serve_slo_burn {}", self.slo_burn());
        out
    }
}

impl Default for Aggregator {
    fn default() -> Self {
        Aggregator::new()
    }
}

impl Recorder for Aggregator {
    fn record(&self, event: &Event) {
        match event {
            Event::NewtonIter { .. } => {
                self.newton_iters.fetch_add(1, Ordering::Relaxed);
            }
            Event::NewtonResidual { .. } => {
                self.newton_residuals.fetch_add(1, Ordering::Relaxed);
            }
            Event::NewtonConverged { iterations } => {
                self.newton_converged.fetch_add(1, Ordering::Relaxed);
                self.newton_histogram.record(*iterations as f64);
            }
            Event::SolverSolved { symbolic, .. } => {
                self.solver_solves.fetch_add(1, Ordering::Relaxed);
                if *symbolic {
                    self.solver_symbolic.fetch_add(1, Ordering::Relaxed);
                }
            }
            Event::SolveRefined { .. } => {
                self.solves_refined.fetch_add(1, Ordering::Relaxed);
            }
            Event::SolveDegraded { .. } => {
                self.solves_degraded.fetch_add(1, Ordering::Relaxed);
            }
            Event::StepAccepted { .. } => {
                self.steps_accepted.fetch_add(1, Ordering::Relaxed);
            }
            Event::StepRejected { .. } => {
                self.steps_rejected.fetch_add(1, Ordering::Relaxed);
            }
            Event::RescueAttempt { converged, .. } => {
                self.rescue_attempts.fetch_add(1, Ordering::Relaxed);
                if *converged {
                    self.rescues_succeeded.fetch_add(1, Ordering::Relaxed);
                }
            }
            Event::BudgetSpend { resource, amount } => match resource {
                crate::event::ResourceKind::NewtonIterations => {
                    self.budget_newton.fetch_add(*amount, Ordering::Relaxed);
                }
                crate::event::ResourceKind::Steps => {
                    self.budget_steps.fetch_add(*amount, Ordering::Relaxed);
                }
            },
            Event::McRunStarted { .. } => {
                self.mc_runs_started.fetch_add(1, Ordering::Relaxed);
            }
            Event::McRunDone { ok, .. } => {
                if *ok {
                    self.mc_runs_ok.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.mc_runs_failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            Event::MacIssued { jobs, solves } => {
                self.mac_jobs.fetch_add(*jobs, Ordering::Relaxed);
                self.mac_solves.fetch_add(*solves, Ordering::Relaxed);
            }
            Event::FaultSubstituted { .. } => {
                self.faults_substituted.fetch_add(1, Ordering::Relaxed);
            }
            Event::EpochDone { .. } => {
                self.epochs_done.fetch_add(1, Ordering::Relaxed);
            }
            // Only the close is counted: a SpanEnd proves the full
            // begin/end pair, and its duration feeds the histogram.
            Event::SpanBegin { .. } => {}
            Event::SpanEnd { micros, .. } => {
                self.spans.fetch_add(1, Ordering::Relaxed);
                self.span_histogram.record(*micros);
            }
            Event::Manifest { .. } => {
                self.manifests.fetch_add(1, Ordering::Relaxed);
            }
            Event::ServeAdmitted { .. } => {
                self.serve_admitted.fetch_add(1, Ordering::Relaxed);
            }
            Event::ServeShed { .. } => {
                self.serve_shed.fetch_add(1, Ordering::Relaxed);
            }
            Event::ServeRetry { .. } => {
                self.serve_retries.fetch_add(1, Ordering::Relaxed);
            }
            Event::ServeDegraded { .. } => {
                self.serve_degraded.fetch_add(1, Ordering::Relaxed);
            }
            Event::ServeBreakerOpen { .. } => {
                self.serve_breaker_open.fetch_add(1, Ordering::Relaxed);
            }
            Event::ServeDone {
                tenant,
                outcome,
                backend,
                latency_ms,
                ..
            } => {
                self.serve_done.fetch_add(1, Ordering::Relaxed);
                self.serve_requests
                    .add(tenant, outcome.label(), backend.label());
                self.record_serve_latency(tenant, *latency_ms);
                self.observe_slo(outcome.burns_error_budget());
            }
            Event::SloBreach { .. } => {
                self.slo_breaches.fetch_add(1, Ordering::Relaxed);
            }
            Event::SurrogateLookup { hit } => {
                if *hit {
                    self.surrogate_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.surrogate_misses.fetch_add(1, Ordering::Relaxed);
                }
            }
            Event::SurrogateCheck { ok, .. } => {
                self.surrogate_checks.fetch_add(1, Ordering::Relaxed);
                if !*ok {
                    self.surrogate_check_failures
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ResourceKind, RungKind};

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(1.0); // le="1" (inclusive)
        h.record(5.0);
        h.record(100.0); // overflow
        assert_eq!(h.counts(), vec![2, 1, 1]);
        assert_eq!(h.total(), 4);
        assert!((h.sum() - 106.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_same_shape_is_bucketwise() {
        let a = Histogram::new(&[1.0, 10.0]);
        let b = Histogram::new(&[1.0, 10.0]);
        a.record(0.5);
        b.record(5.0);
        b.record(50.0);
        a.merge_from(&b);
        assert_eq!(a.counts(), vec![1, 1, 1]);
        assert!((a.sum() - 55.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_shape_mismatch_keeps_totals() {
        let a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        b.record(0.5);
        b.record(3.0);
        a.merge_from(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.counts(), vec![0, 2]);
    }

    #[test]
    fn aggregator_counts_every_event_kind() {
        let agg = Aggregator::new();
        agg.record(&Event::NewtonIter { iteration: 1 });
        agg.record(&Event::NewtonIter { iteration: 2 });
        agg.record(&Event::NewtonResidual {
            iteration: 2,
            residual: 1e-6,
            damping: 1.0,
        });
        agg.record(&Event::NewtonConverged { iterations: 2 });
        agg.record(&Event::SolverSolved {
            backend: crate::SolverBackend::Sparse,
            symbolic: true,
        });
        agg.record(&Event::SolverSolved {
            backend: crate::SolverBackend::Sparse,
            symbolic: false,
        });
        agg.record(&Event::SolveRefined {
            passes: 1,
            residual: 1e-12,
        });
        agg.record(&Event::SolveDegraded {
            stage: crate::DegradeStageKind::FreshSymbolic,
            residual: 1e-3,
        });
        agg.record(&Event::StepAccepted { time: 0.0, dt: 1.0 });
        agg.record(&Event::StepRejected { time: 0.0, dt: 1.0 });
        agg.record(&Event::RescueAttempt {
            rung: RungKind::PlainNewton,
            iterations: 3,
            converged: false,
        });
        agg.record(&Event::RescueAttempt {
            rung: RungKind::GminStepping,
            iterations: 9,
            converged: true,
        });
        agg.record(&Event::BudgetSpend {
            resource: ResourceKind::NewtonIterations,
            amount: 4,
        });
        agg.record(&Event::BudgetSpend {
            resource: ResourceKind::Steps,
            amount: 2,
        });
        agg.record(&Event::McRunStarted { run: 0 });
        agg.record(&Event::McRunDone { run: 0, ok: true });
        agg.record(&Event::McRunDone { run: 1, ok: false });
        agg.record(&Event::MacIssued {
            jobs: 16,
            solves: 2,
        });
        agg.record(&Event::FaultSubstituted { substitute: 4 });
        agg.record(&Event::EpochDone {
            epoch: 0,
            loss: 1.0,
            accuracy: 0.5,
        });
        agg.record(&Event::SpanBegin {
            id: 1,
            parent: 0,
            tid: 1,
            name: "x".into(),
            ts: 0.0,
        });
        agg.record(&Event::SpanEnd { id: 1, micros: 5.0 });
        agg.record(&Event::ServeAdmitted {
            queue_depth: 1,
            request_id: 1,
        });
        agg.record(&Event::ServeAdmitted {
            queue_depth: 2,
            request_id: 2,
        });
        agg.record(&Event::ServeShed {
            queue_depth: 8,
            retry_after_ms: 100,
            request_id: 3,
            tenant: "t".into(),
        });
        agg.record(&Event::ServeRetry {
            attempt: 1,
            backoff_ms: 20,
            request_id: 1,
        });
        agg.record(&Event::ServeDegraded {
            breaker_open: false,
            request_id: 1,
            tenant: "t".into(),
        });
        agg.record(&Event::ServeBreakerOpen {
            window_failures: 5,
            window_size: 8,
            request_id: 1,
            tenant: "t".into(),
        });
        agg.record(&Event::ServeDone {
            request_id: 1,
            tenant: "t".into(),
            outcome: crate::ServeOutcome::Ok,
            backend: crate::ServeBackendKind::Live,
            latency_ms: 3.0,
        });
        agg.record(&Event::SloBreach {
            window: 64,
            bad: 33,
            burn_pct: 51.6,
        });
        agg.record(&Event::SurrogateLookup { hit: true });
        agg.record(&Event::SurrogateLookup { hit: true });
        agg.record(&Event::SurrogateLookup { hit: false });
        agg.record(&Event::SurrogateCheck {
            ok: true,
            deviation: 1e-5,
        });
        agg.record(&Event::SurrogateCheck {
            ok: false,
            deviation: 1e-2,
        });
        let c = agg.counts();
        assert_eq!(c.newton_iters, 2);
        assert_eq!(c.newton_residuals, 1);
        assert_eq!(c.newton_converged, 1);
        assert_eq!(c.solver_solves, 2);
        assert_eq!(c.solver_symbolic, 1);
        assert_eq!(c.solves_refined, 1);
        assert_eq!(c.solves_degraded, 1);
        assert_eq!(c.steps_accepted, 1);
        assert_eq!(c.steps_rejected, 1);
        assert_eq!(c.rescue_attempts, 2);
        assert_eq!(c.rescues_succeeded, 1);
        assert_eq!(c.budget_newton, 4);
        assert_eq!(c.budget_steps, 2);
        assert_eq!(c.mc_runs_started, 1);
        assert_eq!(c.mc_runs_ok, 1);
        assert_eq!(c.mc_runs_failed, 1);
        assert_eq!(c.mac_jobs, 16);
        assert_eq!(c.mac_solves, 2);
        assert_eq!(c.faults_substituted, 1);
        assert_eq!(c.epochs_done, 1);
        assert_eq!(c.spans, 1, "only SpanEnd counts as a closed span");
        assert_eq!(c.serve_admitted, 2);
        assert_eq!(c.serve_shed, 1);
        assert_eq!(c.serve_retries, 1);
        assert_eq!(c.serve_degraded, 1);
        assert_eq!(c.serve_breaker_open, 1);
        assert_eq!(c.serve_done, 1);
        assert_eq!(c.slo_breaches, 1);
        assert_eq!(c.surrogate_hits, 2);
        assert_eq!(c.surrogate_misses, 1);
        assert_eq!(c.surrogate_checks, 2);
        assert_eq!(c.surrogate_check_failures, 1);
        assert_eq!(agg.newton_histogram().total(), 1);
        assert_eq!(agg.span_histogram().total(), 1);
        let labeled = agg.serve_requests();
        assert_eq!(labeled.len(), 1);
        assert_eq!(labeled[0].tenant, "t");
        assert_eq!(labeled[0].outcome, "ok");
        assert_eq!(labeled[0].backend, "live");
        assert_eq!(labeled[0].value, 1);
        assert_eq!(agg.serve_latency_totals(), vec![("t".into(), 1, 3.0)]);
    }

    #[test]
    fn labeled_counts_cap_collapses_overflow_tenants_to_other() {
        let counts = LabeledCounts::new(2);
        counts.add("a", "ok", "live");
        counts.add("b", "ok", "live");
        counts.add("c", "ok", "live"); // over the cap -> "other"
        counts.add("d", "shed", "none"); // also "other"
        counts.add("a", "ok", "live"); // existing tenant still tracked
        let cells = counts.snapshot();
        let tenants: Vec<&str> = cells.iter().map(|c| c.tenant.as_str()).collect();
        assert_eq!(tenants, vec!["a", "b", "other", "other"]);
        assert_eq!(cells[0].value, 2);
        assert_eq!(counts.total(), 5);
    }

    #[test]
    fn labeled_counts_merge_reapplies_cap() {
        let a = LabeledCounts::new(1);
        let b = LabeledCounts::new(8);
        a.add("t1", "ok", "live");
        b.add("t2", "ok", "live");
        b.add("t3", "degraded", "fallback");
        a.merge_from(&b);
        let tenants: Vec<String> = a.snapshot().into_iter().map(|c| c.tenant).collect();
        assert!(tenants.iter().all(|t| t == "t1" || t == "other"));
        assert_eq!(a.total(), 3);
    }

    fn done(tenant: &str, outcome: crate::ServeOutcome) -> Event {
        Event::ServeDone {
            request_id: 0,
            tenant: tenant.into(),
            outcome,
            backend: crate::ServeBackendKind::Live,
            latency_ms: 1.0,
        }
    }

    #[test]
    fn slo_breach_latches_once_per_threshold_crossing() {
        let agg = Aggregator::new().with_slo_policy(SloPolicy {
            window: 8,
            min_samples: 4,
            burn_threshold: 0.5,
        });
        // Three bad outcomes: below min_samples, nothing latches.
        for _ in 0..3 {
            agg.record(&done("t", crate::ServeOutcome::Shed));
        }
        assert!(agg.take_slo_breach().is_none());
        // Fourth bad outcome crosses with burn 1.0: one latch only.
        agg.record(&done("t", crate::ServeOutcome::Deadline));
        let breach = agg.take_slo_breach().expect("breach should latch");
        assert_eq!(breach.window, 4);
        assert_eq!(breach.bad, 4);
        assert!((breach.burn - 1.0).abs() < 1e-12);
        agg.record(&done("t", crate::ServeOutcome::Error));
        assert!(
            agg.take_slo_breach().is_none(),
            "edge-triggered, no re-latch"
        );
        // Recover below the threshold, then breach again: re-latches.
        for _ in 0..8 {
            agg.record(&done("t", crate::ServeOutcome::Ok));
        }
        assert!(agg.take_slo_breach().is_none());
        for _ in 0..4 {
            agg.record(&done("t", crate::ServeOutcome::Degraded));
        }
        assert!(agg.take_slo_breach().is_some(), "re-armed after recovery");
    }

    #[test]
    fn rejected_and_ok_outcomes_do_not_burn_budget() {
        let agg = Aggregator::new().with_slo_policy(SloPolicy {
            window: 8,
            min_samples: 4,
            burn_threshold: 0.5,
        });
        for _ in 0..8 {
            agg.record(&done("t", crate::ServeOutcome::Rejected));
        }
        assert!(agg.take_slo_breach().is_none());
        assert!((agg.slo_burn()).abs() < 1e-12);
    }

    #[test]
    fn prometheus_exposition_has_per_tenant_series() {
        let agg = Aggregator::new();
        agg.record(&done("acme", crate::ServeOutcome::Ok));
        agg.record(&done("acme", crate::ServeOutcome::Shed));
        agg.record(&done("zeta", crate::ServeOutcome::Ok));
        let text = agg.render_prometheus();
        assert!(text.contains(
            "ferrocim_serve_requests_total{tenant=\"acme\",outcome=\"ok\",backend=\"live\"} 1"
        ));
        assert!(text.contains(
            "ferrocim_serve_requests_total{tenant=\"zeta\",outcome=\"ok\",backend=\"live\"} 1"
        ));
        assert!(text.contains("# TYPE ferrocim_serve_request_latency_ms histogram"));
        assert!(text
            .contains("ferrocim_serve_request_latency_ms_bucket{tenant=\"acme\",le=\"+Inf\"} 2"));
        assert!(text.contains("ferrocim_serve_request_latency_ms_sum{tenant=\"acme\"} 2"));
        assert!(text.contains("ferrocim_serve_request_latency_ms_count{tenant=\"zeta\"} 1"));
        assert!(text.contains("# TYPE ferrocim_serve_slo_burn gauge"));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let agg = Aggregator::new();
        agg.record(&done("evil\"tenant\\x\n", crate::ServeOutcome::Ok));
        let text = agg.render_prometheus();
        assert!(text.contains("tenant=\"evil\\\"tenant\\\\x\\n\""));
    }

    #[test]
    fn merge_from_combines_labeled_and_latency_series() {
        let a = Aggregator::new();
        let b = Aggregator::new();
        a.record(&done("t1", crate::ServeOutcome::Ok));
        b.record(&done("t1", crate::ServeOutcome::Ok));
        b.record(&done("t2", crate::ServeOutcome::Degraded));
        a.merge_from(&b);
        assert_eq!(a.counts().serve_done, 3);
        let totals = a.serve_latency_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0], ("t1".into(), 2, 2.0));
        assert_eq!(totals[1], ("t2".into(), 1, 1.0));
        assert_eq!(a.serve_requests().iter().map(|c| c.value).sum::<u64>(), 3);
    }

    #[test]
    fn merge_from_adds_counters_and_histograms() {
        let a = Aggregator::new();
        let b = Aggregator::new();
        a.record(&Event::StepAccepted { time: 0.0, dt: 1.0 });
        b.record(&Event::StepAccepted { time: 1.0, dt: 1.0 });
        b.record(&Event::NewtonConverged { iterations: 3 });
        a.merge_from(&b);
        assert_eq!(a.counts().steps_accepted, 2);
        assert_eq!(a.counts().newton_converged, 1);
        assert_eq!(a.newton_histogram().total(), 1);
    }

    #[test]
    fn prometheus_exposition_has_counters_and_buckets() {
        let agg = Aggregator::new();
        agg.record(&Event::StepAccepted { time: 0.0, dt: 1.0 });
        agg.record(&Event::NewtonConverged { iterations: 5 });
        let text = agg.render_prometheus();
        assert!(text.contains("# TYPE ferrocim_steps_accepted_total counter"));
        assert!(text.contains("ferrocim_steps_accepted_total 1"));
        assert!(text.contains("# TYPE ferrocim_solves_refined_total counter"));
        assert!(text.contains("# TYPE ferrocim_solves_degraded_total counter"));
        assert!(text.contains("# HELP ferrocim_newton_iterations_per_solve "));
        assert!(text.contains("# TYPE ferrocim_newton_iterations_per_solve histogram"));
        assert!(text.contains("ferrocim_newton_iterations_per_solve_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("ferrocim_newton_iterations_per_solve_count 1"));
    }
}
