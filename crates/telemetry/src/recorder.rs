//! The [`Recorder`] sink trait and the [`Telemetry`] handle plumbed
//! through the simulation builders.

use crate::event::Event;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A sink for telemetry [`Event`]s.
///
/// Implementations must be thread-safe: one recorder is shared (via the
/// clone-cheap [`Telemetry`] handle) across every `fan_out` worker of a
/// batched run, exactly like the `Arc`-pooled `Budget`.
pub trait Recorder: Send + Sync {
    /// Consumes one event. Must not panic; sinks with fallible
    /// back-ends (files, sockets) latch the first error and surface it
    /// at close instead.
    fn record(&self, event: &Event);
}

/// A recorder that discards every event.
///
/// This is the semantic default. In practice a default [`Telemetry`]
/// handle does not even dispatch to it: the handle is enum-dispatched,
/// and its off state skips event construction entirely — the
/// [`NoopRecorder`] type exists for explicitly exercising the full
/// dispatch path (e.g. the `probe_telemetry --overhead` bench guard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _event: &Event) {}
}

/// Fans one event stream out to several recorders, in order.
pub struct Tee {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl Tee {
    /// Builds a tee over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Tee {
        Tee { sinks }
    }
}

impl Recorder for Tee {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }
}

impl fmt::Debug for Tee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tee({} sinks)", self.sinks.len())
    }
}

/// The clone-cheap telemetry handle threaded through `SimEngine`,
/// `TransientAnalysis`, `MonteCarlo`, `CimArray`, and friends (the same
/// builder pattern as `Budget`).
///
/// The default handle is **off**: instrumentation sites behind it cost
/// one enum-discriminant check and never construct their event. An on
/// handle shares one [`Recorder`] across all clones.
#[derive(Clone, Default)]
pub struct Telemetry {
    handle: Option<Arc<dyn Recorder>>,
}

impl Telemetry {
    /// The disabled handle (the default): events are skipped before
    /// they are constructed.
    pub fn off() -> Telemetry {
        Telemetry { handle: None }
    }

    /// A handle recording into an existing shared recorder.
    pub fn new(recorder: Arc<dyn Recorder>) -> Telemetry {
        Telemetry {
            handle: Some(recorder),
        }
    }

    /// Convenience: wraps a recorder value in an `Arc` and enables it.
    pub fn to(recorder: impl Recorder + 'static) -> Telemetry {
        Telemetry::new(Arc::new(recorder))
    }

    /// Whether events are being recorded. Hot loops hoist this check
    /// (like `Budget::is_limited`) so the off path stays branch-cheap.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.handle.is_some()
    }

    /// Records the event produced by `make`, constructing it only when
    /// the handle is on.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(recorder) = &self.handle {
            recorder.record(&make());
        }
    }

    /// Records an already-constructed event (for callers that built it
    /// anyway, e.g. to also print it).
    #[inline]
    pub fn record(&self, event: &Event) {
        if let Some(recorder) = &self.handle {
            recorder.record(event);
        }
    }

    /// Opens a scoped wall-clock timer that emits [`Event::Span`] when
    /// dropped. When the handle is off, the clock is never read.
    #[must_use = "the span measures until it is dropped"]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            telemetry: self,
            name,
            start: self.is_on().then(Instant::now),
        }
    }
}

/// A [`Telemetry`] handle is itself a recorder (a no-op while off), so
/// one handle can sit inside a [`Tee`] next to plain sinks — e.g. an
/// aggregator plus an optional trace file.
impl Recorder for Telemetry {
    fn record(&self, event: &Event) {
        Telemetry::record(self, event);
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.handle {
            None => write!(f, "Telemetry(off)"),
            Some(_) => write!(f, "Telemetry(on)"),
        }
    }
}

/// A span-style scoped timer borrowed from [`Telemetry::span`].
///
/// Emits [`Event::Span`] with the elapsed wall-clock time when dropped
/// (or via [`Span::finish`], which is just an explicit drop point).
#[derive(Debug)]
pub struct Span<'a> {
    telemetry: &'a Telemetry,
    name: &'static str,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Ends the span now, emitting its event.
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let micros = start.elapsed().as_secs_f64() * 1e6;
            self.telemetry.record(&Event::Span {
                name: self.name.to_string(),
                micros,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Capture(Mutex<Vec<Event>>);

    impl Recorder for Capture {
        fn record(&self, event: &Event) {
            if let Ok(mut events) = self.0.lock() {
                events.push(event.clone());
            }
        }
    }

    #[test]
    fn off_handle_never_constructs_events() {
        let tele = Telemetry::off();
        assert!(!tele.is_on());
        tele.emit(|| unreachable!("must not run"));
        // Spans from an off handle never read the clock or emit.
        tele.span("noop").finish();
    }

    #[test]
    fn on_handle_records_in_order() {
        let capture = Arc::new(Capture::default());
        let tele = Telemetry::new(capture.clone());
        assert!(tele.is_on());
        tele.emit(|| Event::McRunStarted { run: 0 });
        tele.emit(|| Event::McRunDone { run: 0, ok: true });
        tele.span("work").finish();
        let events = capture.0.lock().expect("no poison");
        assert_eq!(events.len(), 3);
        assert_eq!(events[0], Event::McRunStarted { run: 0 });
        assert_eq!(events[1], Event::McRunDone { run: 0, ok: true });
        assert!(
            matches!(&events[2], Event::Span { name, micros } if name == "work" && *micros >= 0.0)
        );
    }

    #[test]
    fn tee_duplicates_events() {
        let a = Arc::new(Capture::default());
        let b = Arc::new(Capture::default());
        let tele = Telemetry::to(Tee::new(vec![a.clone(), b.clone()]));
        tele.emit(|| Event::NewtonConverged { iterations: 2 });
        assert_eq!(a.0.lock().expect("no poison").len(), 1);
        assert_eq!(b.0.lock().expect("no poison").len(), 1);
    }

    #[test]
    fn clones_share_the_recorder() {
        let capture = Arc::new(Capture::default());
        let tele = Telemetry::new(capture.clone());
        let clone = tele.clone();
        clone.emit(|| Event::NewtonIter { iteration: 1 });
        tele.emit(|| Event::NewtonIter { iteration: 2 });
        assert_eq!(capture.0.lock().expect("no poison").len(), 2);
    }
}
