//! The [`Recorder`] sink trait and the [`Telemetry`] handle plumbed
//! through the simulation builders.

use crate::event::Event;
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A sink for telemetry [`Event`]s.
///
/// Implementations must be thread-safe: one recorder is shared (via the
/// clone-cheap [`Telemetry`] handle) across every `fan_out` worker of a
/// batched run, exactly like the `Arc`-pooled `Budget`.
pub trait Recorder: Send + Sync {
    /// Consumes one event. Must not panic; sinks with fallible
    /// back-ends (files, sockets) latch the first error and surface it
    /// at close instead.
    fn record(&self, event: &Event);
}

/// A recorder that discards every event.
///
/// This is the semantic default. In practice a default [`Telemetry`]
/// handle does not even dispatch to it: the handle is enum-dispatched,
/// and its off state skips event construction entirely — the
/// [`NoopRecorder`] type exists for explicitly exercising the full
/// dispatch path (e.g. the `probe_telemetry --overhead` bench guard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _event: &Event) {}
}

/// Fans one event stream out to several recorders, in order.
pub struct Tee {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl Tee {
    /// Builds a tee over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Tee {
        Tee { sinks }
    }
}

impl Recorder for Tee {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }
}

impl fmt::Debug for Tee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tee({} sinks)", self.sinks.len())
    }
}

/// How much an on [`Telemetry`] handle records.
///
/// Levels are ordered: each level includes everything below it.
/// [`DetailLevel::Iterations`] additionally emits per-iteration solver
/// diagnostics ([`Event::NewtonResidual`]) and the fine-grained MAC
/// span layer, which can multiply trace size by an order of magnitude —
/// reach for it when diagnosing a convergence pathology, not by default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum DetailLevel {
    /// Record nothing. [`Telemetry::with_detail`] normalizes a handle
    /// at this level to the off handle, so the hot-path cost is the
    /// same single discriminant check.
    Off,
    /// Summary reports: solve/step/batch events and coarse spans (the
    /// default for an on handle).
    #[default]
    Reports,
    /// Everything, including per-iteration Newton residual norms,
    /// damping factors, and per-row MAC spans.
    Iterations,
}

impl DetailLevel {
    /// Parses the CLI spelling used by `--trace-detail`
    /// (`off`/`reports`/`iterations`, case-insensitive).
    pub fn parse(text: &str) -> Option<DetailLevel> {
        match text.to_ascii_lowercase().as_str() {
            "off" => Some(DetailLevel::Off),
            "reports" => Some(DetailLevel::Reports),
            "iterations" => Some(DetailLevel::Iterations),
            _ => None,
        }
    }
}

/// A span id handed out by [`Telemetry::span`] (see [`Span::id`]).
///
/// Ids are process-unique and never 0 (0 is the wire encoding of "no
/// parent"). Pass one to [`Telemetry::span_under`] to parent work done
/// on another thread — e.g. `fan_out` workers — under the issuing span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw id as written to [`Event::SpanBegin`].
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Allocator for process-unique span ids; 0 is reserved for "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocator for small sequential thread ids (first-use order).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// The process trace epoch: every [`Event::SpanBegin`] timestamp is
/// microseconds since the first span of the process.
static TRACE_EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// The innermost open span on this thread (0 = none): read as the
    /// implicit parent by [`Telemetry::span`], restored on span drop.
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
    /// This thread's sequential id (0 = not yet assigned).
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

fn current_thread_tid() -> u64 {
    THREAD_ID.with(|cell| {
        let id = cell.get();
        if id != 0 {
            return id;
        }
        let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        cell.set(id);
        id
    })
}

fn epoch_micros() -> f64 {
    TRACE_EPOCH
        .get_or_init(Instant::now)
        .elapsed()
        .as_secs_f64()
        * 1e6
}

/// The clone-cheap telemetry handle threaded through `SimEngine`,
/// `TransientAnalysis`, `MonteCarlo`, `CimArray`, and friends (the same
/// builder pattern as `Budget`).
///
/// The default handle is **off**: instrumentation sites behind it cost
/// one enum-discriminant check and never construct their event. An on
/// handle shares one [`Recorder`] across all clones and records at a
/// [`DetailLevel`] (default [`DetailLevel::Reports`]).
#[derive(Clone, Default)]
pub struct Telemetry {
    handle: Option<Arc<dyn Recorder>>,
    detail: DetailLevel,
}

impl Telemetry {
    /// The disabled handle (the default): events are skipped before
    /// they are constructed.
    pub fn off() -> Telemetry {
        Telemetry {
            handle: None,
            detail: DetailLevel::Off,
        }
    }

    /// A handle recording into an existing shared recorder at
    /// [`DetailLevel::Reports`].
    pub fn new(recorder: Arc<dyn Recorder>) -> Telemetry {
        Telemetry {
            handle: Some(recorder),
            detail: DetailLevel::Reports,
        }
    }

    /// Convenience: wraps a recorder value in an `Arc` and enables it.
    pub fn to(recorder: impl Recorder + 'static) -> Telemetry {
        Telemetry::new(Arc::new(recorder))
    }

    /// Sets the detail level. [`DetailLevel::Off`] drops the recorder
    /// entirely, so an off-by-detail handle is indistinguishable from
    /// (and as cheap as) [`Telemetry::off`].
    #[must_use]
    pub fn with_detail(mut self, detail: DetailLevel) -> Telemetry {
        if detail == DetailLevel::Off {
            self.handle = None;
        }
        self.detail = detail;
        self
    }

    /// The effective detail level ([`DetailLevel::Off`] when no
    /// recorder is attached).
    pub fn detail(&self) -> DetailLevel {
        if self.handle.is_some() {
            self.detail
        } else {
            DetailLevel::Off
        }
    }

    /// Whether events are being recorded. Hot loops hoist this check
    /// (like `Budget::is_limited`) so the off path stays branch-cheap.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.handle.is_some()
    }

    /// Whether per-iteration solver diagnostics should be emitted
    /// ([`DetailLevel::Iterations`] with a recorder attached). Hoist
    /// this next to [`Telemetry::is_on`] in solver loops.
    #[inline]
    pub fn wants_iterations(&self) -> bool {
        self.handle.is_some() && self.detail == DetailLevel::Iterations
    }

    /// Records the event produced by `make`, constructing it only when
    /// the handle is on.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(recorder) = &self.handle {
            recorder.record(&make());
        }
    }

    /// Records an already-constructed event (for callers that built it
    /// anyway, e.g. to also print it).
    #[inline]
    pub fn record(&self, event: &Event) {
        if let Some(recorder) = &self.handle {
            recorder.record(event);
        }
    }

    /// Opens a scoped wall-clock timer: emits [`Event::SpanBegin`] now
    /// and [`Event::SpanEnd`] when dropped. The span's parent is the
    /// innermost span currently open on this thread, so lexically
    /// nested spans form a tree without any plumbing. When the handle
    /// is off no id is allocated and the clock is never read.
    #[must_use = "the span measures until it is dropped"]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        if !self.is_on() {
            return Span::disabled(self);
        }
        let parent = CURRENT_SPAN.with(Cell::get);
        self.open_span(name, parent, parent)
    }

    /// Like [`Telemetry::span`], but with an explicit parent instead of
    /// the thread-local one — the bridge for handing causality across
    /// threads (a `fan_out` worker parents its spans under the batch
    /// span via [`Span::id`]). `None` makes a root span.
    #[must_use = "the span measures until it is dropped"]
    pub fn span_under(&self, name: &'static str, parent: Option<SpanId>) -> Span<'_> {
        if !self.is_on() {
            return Span::disabled(self);
        }
        let prev = CURRENT_SPAN.with(Cell::get);
        self.open_span(name, parent.map_or(0, SpanId::as_u64), prev)
    }

    /// Allocates an id, emits the begin event, and installs the span as
    /// the thread's innermost. `prev` is what the thread-local slot is
    /// restored to on drop (== `parent` for same-thread nesting).
    fn open_span(&self, name: &'static str, parent: u64, prev: u64) -> Span<'_> {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let ts = epoch_micros();
        self.record(&Event::SpanBegin {
            id,
            parent,
            tid: current_thread_tid(),
            name: name.to_string(),
            ts,
        });
        CURRENT_SPAN.with(|cell| cell.set(id));
        Span {
            telemetry: self,
            id,
            prev,
            start: Some(Instant::now()),
        }
    }
}

/// A [`Telemetry`] handle is itself a recorder (a no-op while off), so
/// one handle can sit inside a [`Tee`] next to plain sinks — e.g. an
/// aggregator plus an optional trace file.
impl Recorder for Telemetry {
    fn record(&self, event: &Event) {
        Telemetry::record(self, event);
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.handle {
            None => write!(f, "Telemetry(off)"),
            Some(_) => write!(f, "Telemetry(on, {:?})", self.detail),
        }
    }
}

/// A span-style scoped timer borrowed from [`Telemetry::span`].
///
/// [`Event::SpanBegin`] is emitted when the span opens; dropping it (or
/// [`Span::finish`], an explicit drop point) emits [`Event::SpanEnd`]
/// with the elapsed wall-clock time and restores the thread's previous
/// innermost span. Spans are scope-shaped: on any one thread they close
/// in LIFO order, which is what the thread-local restore relies on.
#[derive(Debug)]
pub struct Span<'a> {
    telemetry: &'a Telemetry,
    id: u64,
    /// Thread-local `CURRENT_SPAN` value to restore on drop.
    prev: u64,
    start: Option<Instant>,
}

impl Span<'_> {
    fn disabled(telemetry: &Telemetry) -> Span<'_> {
        Span {
            telemetry,
            id: 0,
            prev: 0,
            start: None,
        }
    }

    /// The span's id, for parenting cross-thread work under it via
    /// [`Telemetry::span_under`]. `None` when telemetry is off.
    pub fn id(&self) -> Option<SpanId> {
        self.start.is_some().then_some(SpanId(self.id))
    }

    /// Ends the span now, emitting its event.
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let micros = start.elapsed().as_secs_f64() * 1e6;
            CURRENT_SPAN.with(|cell| cell.set(self.prev));
            self.telemetry.record(&Event::SpanEnd {
                id: self.id,
                micros,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Capture(Mutex<Vec<Event>>);

    impl Recorder for Capture {
        fn record(&self, event: &Event) {
            if let Ok(mut events) = self.0.lock() {
                events.push(event.clone());
            }
        }
    }

    #[test]
    fn off_handle_never_constructs_events() {
        let tele = Telemetry::off();
        assert!(!tele.is_on());
        assert!(!tele.wants_iterations());
        assert_eq!(tele.detail(), DetailLevel::Off);
        tele.emit(|| unreachable!("must not run"));
        // Spans from an off handle never allocate an id, read the
        // clock, or emit.
        let span = tele.span("noop");
        assert_eq!(span.id(), None);
        span.finish();
    }

    #[test]
    fn detail_off_drops_the_recorder() {
        let capture = Arc::new(Capture::default());
        let tele = Telemetry::new(capture.clone()).with_detail(DetailLevel::Off);
        assert!(!tele.is_on());
        tele.emit(|| unreachable!("must not run"));
        assert!(capture.0.lock().expect("no poison").is_empty());
    }

    #[test]
    fn detail_iterations_is_reported() {
        let tele = Telemetry::to(NoopRecorder).with_detail(DetailLevel::Iterations);
        assert!(tele.is_on());
        assert!(tele.wants_iterations());
        assert_eq!(tele.detail(), DetailLevel::Iterations);
        // Default on-handle level is Reports: no iteration detail.
        assert!(!Telemetry::to(NoopRecorder).wants_iterations());
    }

    #[test]
    fn detail_level_parses_cli_spellings() {
        assert_eq!(DetailLevel::parse("off"), Some(DetailLevel::Off));
        assert_eq!(DetailLevel::parse("Reports"), Some(DetailLevel::Reports));
        assert_eq!(
            DetailLevel::parse("ITERATIONS"),
            Some(DetailLevel::Iterations)
        );
        assert_eq!(DetailLevel::parse("verbose"), None);
        assert!(DetailLevel::Off < DetailLevel::Reports);
        assert!(DetailLevel::Reports < DetailLevel::Iterations);
    }

    #[test]
    fn on_handle_records_in_order() {
        let capture = Arc::new(Capture::default());
        let tele = Telemetry::new(capture.clone());
        assert!(tele.is_on());
        tele.emit(|| Event::McRunStarted { run: 0 });
        tele.emit(|| Event::McRunDone { run: 0, ok: true });
        tele.span("work").finish();
        let events = capture.0.lock().expect("no poison");
        assert_eq!(events.len(), 4);
        assert_eq!(events[0], Event::McRunStarted { run: 0 });
        assert_eq!(events[1], Event::McRunDone { run: 0, ok: true });
        let begin_id = match &events[2] {
            Event::SpanBegin {
                id, name, tid, ts, ..
            } => {
                assert_eq!(name, "work");
                assert!(*tid >= 1);
                assert!(*ts >= 0.0);
                *id
            }
            other => panic!("expected SpanBegin, got {other:?}"),
        };
        assert!(
            matches!(&events[3], Event::SpanEnd { id, micros } if *id == begin_id && *micros >= 0.0)
        );
    }

    #[test]
    fn nested_spans_parent_through_the_thread_local() {
        let capture = Arc::new(Capture::default());
        let tele = Telemetry::new(capture.clone());
        let outer = tele.span("outer");
        let outer_id = outer.id().expect("on handle allocates ids").as_u64();
        {
            let inner = tele.span("inner");
            let _ = inner.id();
        }
        // After the nested span closed, a new span parents under
        // `outer` again (the thread-local was restored).
        tele.span("sibling").finish();
        drop(outer);
        let events = capture.0.lock().expect("no poison");
        let begins: Vec<(u64, u64, String)> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanBegin {
                    id, parent, name, ..
                } => Some((*id, *parent, name.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(begins.len(), 3);
        assert_eq!(begins[0], (outer_id, 0, "outer".to_string()));
        assert_eq!(begins[1].1, outer_id, "inner parents under outer");
        assert_eq!(begins[2].1, outer_id, "sibling parents under outer");
        assert_ne!(begins[1].0, begins[2].0, "ids are unique");
    }

    #[test]
    fn span_under_bridges_threads_and_restores_local_state() {
        let capture = Arc::new(Capture::default());
        let tele = Telemetry::new(capture.clone());
        let batch = tele.span("batch");
        let batch_id = batch.id();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let worker = tele.span_under("worker", batch_id);
                // The explicit parent also becomes the implicit parent
                // of nested spans on this thread.
                tele.span("inner").finish();
                drop(worker);
                // The worker thread's current span is back to "none".
                tele.span("root_again").finish();
            });
        });
        drop(batch);
        let events = capture.0.lock().expect("no poison");
        let find = |wanted: &str| {
            events.iter().find_map(|e| match e {
                Event::SpanBegin {
                    id, parent, name, ..
                } if name == wanted => Some((*id, *parent)),
                _ => None,
            })
        };
        let (worker_id, worker_parent) = find("worker").expect("worker span");
        assert_eq!(worker_parent, batch_id.expect("on").as_u64());
        let (_, inner_parent) = find("inner").expect("inner span");
        assert_eq!(inner_parent, worker_id);
        let (_, root_parent) = find("root_again").expect("root_again span");
        assert_eq!(root_parent, 0, "thread-local restored after worker span");
    }

    #[test]
    fn tee_duplicates_events() {
        let a = Arc::new(Capture::default());
        let b = Arc::new(Capture::default());
        let tele = Telemetry::to(Tee::new(vec![a.clone(), b.clone()]));
        tele.emit(|| Event::NewtonConverged { iterations: 2 });
        assert_eq!(a.0.lock().expect("no poison").len(), 1);
        assert_eq!(b.0.lock().expect("no poison").len(), 1);
    }

    #[test]
    fn clones_share_the_recorder() {
        let capture = Arc::new(Capture::default());
        let tele = Telemetry::new(capture.clone());
        let clone = tele.clone();
        clone.emit(|| Event::NewtonIter { iteration: 1 });
        tele.emit(|| Event::NewtonIter { iteration: 2 });
        assert_eq!(capture.0.lock().expect("no poison").len(), 2);
    }
}
