//! Property tests: arbitrary event sequences survive the JSONL sink
//! round trip byte-exactly, and a truncated tail is reported as typed
//! corruption rather than silently dropped.

use ferrocim_telemetry::{read_trace, Event, JsonlSink, Recorder as _, ResourceKind, RungKind};
use ferrocim_telemetry::{TraceError, TRACE_FORMAT};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique per-case trace path (cases run in one process).
fn temp_trace(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ferrocim-roundtrip-{tag}-{}-{n}.jsonl",
        std::process::id()
    ))
}

/// JSON numbers travel as `f64`, so integer fields must stay within
/// the 2^53 exactly-representable range to round-trip byte-exactly.
const MAX_EXACT_U64: u64 = 1 << 53;

/// One arbitrary event. Variants are picked by index; the field pool
/// is drawn up front and reused, which keeps the strategy a simple
/// map (the vendored proptest has no `prop_oneof`).
fn arb_event() -> impl Strategy<Value = Event> {
    let ints = (0u64..14, 0u64..MAX_EXACT_U64, 0u64..MAX_EXACT_U64);
    let floats = (1e-15f64..1e9, 0.0f64..1.0, any::<bool>());
    let names = prop::sample::select(vec!["solve", "mac_batch", "nn.forward", "x"]);
    (ints, floats, names).prop_map(|((variant, a, b), (x, y, flag), name)| match variant {
        0 => Event::NewtonIter { iteration: a },
        1 => Event::NewtonResidual {
            iteration: a,
            residual: x,
            damping: y,
        },
        2 => Event::NewtonConverged { iterations: a },
        3 => Event::StepAccepted { time: x, dt: y },
        4 => Event::StepRejected { time: x, dt: y },
        5 => Event::RescueAttempt {
            rung: if flag {
                RungKind::GminStepping
            } else {
                RungKind::SourceStepping
            },
            iterations: a,
            converged: flag,
        },
        6 => Event::BudgetSpend {
            resource: if flag {
                ResourceKind::NewtonIterations
            } else {
                ResourceKind::Steps
            },
            amount: a,
        },
        7 => Event::McRunStarted { run: a },
        8 => Event::McRunDone { run: a, ok: flag },
        9 => Event::MacIssued { jobs: a, solves: b },
        10 => Event::FaultSubstituted { substitute: a },
        11 => Event::EpochDone {
            epoch: a,
            loss: x,
            accuracy: y,
        },
        12 => Event::SpanBegin {
            id: a.max(1),
            parent: b,
            tid: 1,
            name: name.to_string(),
            ts: x,
        },
        _ => Event::SpanEnd {
            id: a.max(1),
            micros: x,
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_sequences_round_trip(events in prop::collection::vec(arb_event(), 0..40)) {
        let path = temp_trace("seq");
        let sink = JsonlSink::create(&path).expect("create sink");
        for event in &events {
            sink.record(event);
        }
        prop_assert_eq!(sink.events_written(), events.len() as u64);
        sink.finish().expect("finish");
        let raw = std::fs::read_to_string(&path).expect("read back");
        let header = raw.lines().next().expect("header line");
        prop_assert!(header.contains(TRACE_FORMAT), "header carries the version");
        let back = read_trace(&path).expect("read_trace");
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(back, events);
    }

    #[test]
    fn truncated_tail_is_typed_corruption(
        events in prop::collection::vec(arb_event(), 1..20),
        cut in 1usize..40,
    ) {
        let path = temp_trace("cut");
        let sink = JsonlSink::create(&path).expect("create sink");
        for event in &events {
            sink.record(event);
        }
        sink.finish().expect("finish");
        let mut raw = std::fs::read_to_string(&path).expect("read back");
        // Chop mid-way through the final event line (a crashed writer's
        // torn tail), keeping at least the opening brace so the line is
        // non-empty but unparseable.
        let last_line_start = raw.trim_end().rfind('\n').expect("multi-line") + 1;
        let cut_at = (last_line_start + cut).min(raw.trim_end().len() - 1);
        raw.truncate(cut_at);
        std::fs::write(&path, &raw).expect("rewrite truncated");
        let outcome = read_trace(&path);
        let _ = std::fs::remove_file(&path);
        match outcome {
            Err(TraceError::Corrupt { line, .. }) => {
                // 1 header line + full events before the torn one.
                prop_assert_eq!(line, events.len() as u64 + 1);
            }
            other => prop_assert!(false, "expected Corrupt, got {:?}", other),
        }
    }
}
