//! Property test: `Aggregator::render_prometheus` always emits text
//! that a minimal Prometheus exposition-format parser accepts — metric
//! names are well-formed, label values are correctly escaped, every
//! sample belongs to a declared metric family, and histogram buckets
//! are cumulative and closed by `+Inf`/`_sum`/`_count`.

use ferrocim_telemetry::{Aggregator, Event, Recorder as _, ServeBackendKind, ServeOutcome};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One parsed sample line: name, sorted labels, value.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

fn is_name_char(c: char, first: bool) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':' || (!first && c.is_ascii_digit())
}

fn parse_name(text: &str) -> Option<(String, &str)> {
    let mut end = 0;
    for (i, c) in text.char_indices() {
        if is_name_char(c, i == 0) {
            end = i + c.len_utf8();
        } else {
            break;
        }
    }
    if end == 0 {
        return None;
    }
    Some((text[..end].to_string(), &text[end..]))
}

/// Unescapes a label value, rejecting stray backslashes and quotes.
fn unescape(value: &str) -> Option<String> {
    let mut out = String::new();
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next()? {
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                'n' => out.push('\n'),
                _ => return None,
            },
            '"' | '\n' => return None,
            other => out.push(other),
        }
    }
    Some(out)
}

/// Parses one `{k="v",...}` label block, returning the remainder.
fn parse_labels(text: &str) -> Option<(BTreeMap<String, String>, &str)> {
    let mut labels = BTreeMap::new();
    let mut rest = text.strip_prefix('{')?;
    loop {
        if let Some(tail) = rest.strip_prefix('}') {
            return Some((labels, tail));
        }
        let (key, tail) = parse_name(rest)?;
        let tail = tail.strip_prefix("=\"")?;
        // The value runs to the first unescaped quote.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in tail.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end?;
        let raw = &tail[..end];
        labels.insert(key, unescape(raw)?);
        rest = &tail[end + 1..];
        if let Some(tail) = rest.strip_prefix(',') {
            rest = tail;
        }
    }
}

/// Parses a full exposition document, failing on any malformed line.
fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    let mut declared: Vec<(String, String)> = Vec::new(); // (name, type)
    for (number, line) in text.lines().enumerate() {
        let fail = |what: &str| Err(format!("line {}: {what}: {line}", number + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            if parse_name(rest).is_none_or(|(_, tail)| !tail.starts_with(' ')) {
                return fail("bad HELP");
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let Some((name, tail)) = parse_name(rest) else {
                return fail("bad TYPE");
            };
            let kind = tail.trim();
            if !["counter", "gauge", "histogram"].contains(&kind) {
                return fail("unknown TYPE");
            }
            declared.push((name, kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            return fail("unknown comment");
        }
        let Some((name, rest)) = parse_name(line) else {
            return fail("bad sample name");
        };
        let (labels, rest) = if rest.starts_with('{') {
            match parse_labels(rest) {
                Some(parsed) => parsed,
                None => return fail("bad label block"),
            }
        } else {
            (BTreeMap::new(), rest)
        };
        let value = rest.trim();
        let Ok(value) = value.parse::<f64>() else {
            return fail("bad sample value");
        };
        // Every sample must belong to a declared family: its exact
        // name, or a histogram's _bucket/_sum/_count series.
        let family_ok = declared.iter().any(|(family, kind)| {
            name == *family
                || (kind == "histogram"
                    && [
                        format!("{family}_bucket"),
                        format!("{family}_sum"),
                        format!("{family}_count"),
                    ]
                    .contains(&name))
        });
        if !family_ok {
            return fail("sample without a TYPE declaration");
        }
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    if samples.is_empty() {
        return Err("no samples".to_string());
    }
    Ok(samples)
}

/// Checks cumulative bucket monotonicity and `_count` == `+Inf` for
/// every (histogram, label-partition) series in the parse.
fn assert_histograms_cumulative(samples: &[Sample]) {
    // Group buckets by (base name, labels minus `le`).
    let mut series: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    for sample in samples {
        let Some(base) = sample.name.strip_suffix("_bucket") else {
            continue;
        };
        let mut key_labels = sample.labels.clone();
        let le = key_labels.remove("le").expect("buckets carry le");
        let bound = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse::<f64>().expect("finite bucket bound")
        };
        let key = (base.to_string(), format!("{key_labels:?}"));
        series.entry(key).or_default().push((bound, sample.value));
    }
    assert!(!series.is_empty(), "at least one histogram series");
    for ((base, labels), mut buckets) in series {
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in buckets.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1,
                "{base}{labels}: cumulative bucket counts must be non-decreasing"
            );
        }
        let (last_bound, last_count) = *buckets.last().expect("non-empty");
        assert!(last_bound.is_infinite(), "{base}{labels}: closes with +Inf");
        // The matching _count sample (same non-le labels) agrees.
        let count = samples
            .iter()
            .find(|s| s.name == format!("{base}_count") && format!("{:?}", s.labels) == labels)
            .unwrap_or_else(|| panic!("{base}{labels}: has a _count sample"));
        assert_eq!(count.value, last_count, "{base}{labels}: _count == +Inf");
    }
}

/// Arbitrary tenant names, including exposition-hostile ones (quotes,
/// backslashes, newlines, spaces, the empty string).
fn tenant_strategy() -> impl Strategy<Value = String> {
    (0usize..8, 0u64..50).prop_map(|(kind, n)| match kind {
        0 => "evil\"quote".to_string(),
        1 => "back\\slash".to_string(),
        2 => "new\nline".to_string(),
        3 => String::new(),
        4 => format!("tenant with spaces {n}"),
        5 => format!("mixed-Chars_{n}:/x"),
        _ => format!("t{}", n % 12),
    })
}

fn outcome_strategy() -> impl Strategy<Value = ServeOutcome> {
    prop::sample::select(vec![
        ServeOutcome::Ok,
        ServeOutcome::Degraded,
        ServeOutcome::Shed,
        ServeOutcome::Deadline,
        ServeOutcome::Rejected,
        ServeOutcome::Error,
    ])
}

fn backend_strategy() -> impl Strategy<Value = ServeBackendKind> {
    prop::sample::select(vec![
        ServeBackendKind::Live,
        ServeBackendKind::Surrogate,
        ServeBackendKind::Fallback,
        ServeBackendKind::None,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn render_prometheus_round_trips_through_the_parser(
        requests in prop::collection::vec(
            (tenant_strategy(), outcome_strategy(), backend_strategy(), 0.0f64..5e3),
            0..40,
        ),
        newton in prop::collection::vec(1u64..200, 0..10),
        cap in 1usize..6,
    ) {
        let agg = Aggregator::new().with_serve_tenant_cap(cap);
        for iterations in &newton {
            agg.record(&Event::NewtonConverged { iterations: *iterations });
        }
        for (i, (tenant, outcome, backend, latency_ms)) in requests.iter().enumerate() {
            agg.record(&Event::ServeDone {
                request_id: i as u64,
                tenant: tenant.clone(),
                outcome: *outcome,
                backend: *backend,
                latency_ms: *latency_ms,
            });
        }
        let text = agg.render_prometheus();
        let samples = parse_exposition(&text).expect("exposition parses");
        assert_histograms_cumulative(&samples);

        // Label round-trip: every tenant the aggregator reports (after
        // cardinality capping) appears, exactly unescaped, in the
        // parsed label sets.
        let reported: Vec<String> =
            agg.serve_requests().into_iter().map(|c| c.tenant).collect();
        for tenant in &reported {
            prop_assert!(
                samples.iter().any(|s| {
                    s.name == "ferrocim_serve_requests_total"
                        && s.labels.get("tenant") == Some(tenant)
                }),
                "tenant {tenant:?} survives escaping and parsing"
            );
        }
        // Cardinality: the parser never sees more distinct tenants than
        // the cap plus the `other` overflow label.
        let mut seen: Vec<&String> = samples
            .iter()
            .filter(|s| s.name == "ferrocim_serve_requests_total")
            .filter_map(|s| s.labels.get("tenant"))
            .collect();
        seen.sort();
        seen.dedup();
        prop_assert!(
            seen.len() <= cap + 1,
            "{} tenant labels exceed cap {cap} + other",
            seen.len()
        );
        // The total across labeled cells equals the number of requests.
        let total: f64 = samples
            .iter()
            .filter(|s| s.name == "ferrocim_serve_requests_total")
            .map(|s| s.value)
            .sum();
        prop_assert_eq!(total as usize, requests.len());
    }
}
