//! Concurrency contract of the flight recorder: under many writer
//! threads wrapping their rings, a snapshot is always a monotone,
//! gap-free epoch sequence, and a dump of that snapshot replays to the
//! identical event list.

use ferrocim_telemetry::{read_trace, Event, FlightRecorder, Recorder as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Asserts a snapshot's epochs are strictly increasing with no holes.
fn assert_contiguous(recorder: &FlightRecorder) -> usize {
    let entries = recorder.snapshot_entries();
    for pair in entries.windows(2) {
        assert_eq!(
            pair[1].epoch,
            pair[0].epoch + 1,
            "snapshot epochs must be consecutive (monotone and gap-free)"
        );
    }
    entries.len()
}

#[test]
fn wraparound_under_contention_yields_gap_free_epoch_order() {
    const WRITERS: usize = 8;
    const EVENTS_PER_WRITER: u64 = 2_000;
    // Small capacity so every writer wraps its segment many times.
    let flight = Arc::new(FlightRecorder::new(64));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let flight = Arc::clone(&flight);
            scope.spawn(move || {
                for i in 0..EVENTS_PER_WRITER {
                    flight.record(&Event::NewtonIter {
                        iteration: (writer as u64) << 32 | i,
                    });
                }
            });
        }
        // A reader snapshots continuously while writers wrap.
        let reader_flight = Arc::clone(&flight);
        let reader_stop = Arc::clone(&stop);
        let reader = scope.spawn(move || {
            let mut snapshots = 0u64;
            loop {
                assert_contiguous(&reader_flight);
                snapshots += 1;
                if reader_stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            snapshots
        });
        // Run a batch of snapshots on this thread too while the
        // writers are (likely still) wrapping, then release the reader.
        for _ in 0..50 {
            assert_contiguous(&flight);
        }
        stop.store(true, Ordering::Relaxed);
        let snapshots = reader.join().expect("reader thread");
        assert!(snapshots > 0, "the reader snapshotted under contention");
    });

    // Quiescent: the final snapshot is contiguous, bounded by the total
    // ring capacity, and ends at the last allocated epoch.
    let entries = flight.snapshot_entries();
    let len = assert_contiguous(&flight);
    assert_eq!(entries.len(), len);
    assert!(len >= 1, "something was retained");
    assert!(
        len <= WRITERS * flight.capacity(),
        "retention is bounded by writers x capacity"
    );
    let last = entries.last().expect("non-empty").epoch;
    assert_eq!(
        last + 1,
        WRITERS as u64 * EVENTS_PER_WRITER,
        "the newest epoch is the last one allocated"
    );
}

#[test]
fn snapshot_equals_replay_through_a_dump() {
    let flight = Arc::new(FlightRecorder::new(32));
    std::thread::scope(|scope| {
        for writer in 0..4u64 {
            let flight = Arc::clone(&flight);
            scope.spawn(move || {
                for i in 0..500u64 {
                    flight.record(&Event::McRunStarted {
                        run: writer << 16 | i,
                    });
                }
            });
        }
    });
    let snapshot = flight.snapshot();
    let path = std::env::temp_dir().join(format!(
        "ferrocim-flight-replay-{}.jsonl",
        std::process::id()
    ));
    let written = flight.dump_to(&path).expect("dump");
    let replayed = read_trace(&written).expect("dump is a valid ferrocim-trace-v1 file");
    assert_eq!(
        replayed, snapshot,
        "a dump replays to exactly the snapshot's event sequence"
    );
    let _ = std::fs::remove_file(&path);
}
