//! Property-based tests of the NN stack: quantizer bounds, layer
//! linearity, and exactness of the ideal CIM decomposition.

use ferrocim_nn::cim_exec::{cim_dot, CimMapping, IdealMac};
use ferrocim_nn::layers::{Conv2d, Linear};
use ferrocim_nn::quant::{integer_dot, quantize_activations, quantize_weights};
use ferrocim_nn::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Weight quantization error is bounded by half an LSB.
    #[test]
    fn weight_quantization_error_bounded(
        data in prop::collection::vec(-3.0f32..3.0, 1..64),
        bits in 2u8..=8,
    ) {
        let q = quantize_weights(&data, bits);
        for (orig, back) in data.iter().zip(q.dequantize()) {
            prop_assert!(
                (orig - back).abs() <= q.scale * 0.5 + 1e-6,
                "{orig} -> {back} (scale {})",
                q.scale
            );
        }
    }

    /// Activation quantization clamps negatives and bounds error.
    #[test]
    fn activation_quantization_error_bounded(
        data in prop::collection::vec(0.0f32..5.0, 1..64),
        bits in 1u8..=8,
    ) {
        let q = quantize_activations(&data, bits);
        for (orig, back) in data.iter().zip(q.dequantize()) {
            prop_assert!((orig - back).abs() <= q.scale * 0.5 + 1e-6);
        }
    }

    /// The bit-serial CIM decomposition with an ideal oracle reproduces
    /// the exact integer dot product for any operands and geometry.
    #[test]
    fn ideal_cim_dot_is_exact(
        w in prop::collection::vec(-1.0f32..1.0, 1..48),
        seed in 0u64..1000,
        w_bits in 2u8..=6,
        a_bits in 1u8..=6,
    ) {
        let a: Vec<f32> = w.iter().map(|v| (v * 7.3).abs() % 1.0).collect();
        let qw = quantize_weights(&w, w_bits);
        let qa = quantize_activations(&a, a_bits);
        let mapping = CimMapping {
            weight_bits: w_bits,
            activation_bits: a_bits,
            cells_per_row: 8,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let exact = integer_dot(&qw, &qa);
        let cim = cim_dot(&qw, &qa.values, &mapping, &IdealMac(8), &mut rng);
        prop_assert_eq!(cim, exact);
    }

    /// Linear layers are affine: f(αx) − b = α(f(x) − b).
    #[test]
    fn linear_layer_is_affine(
        x in prop::collection::vec(-1.0f32..1.0, 6..12),
        alpha in 0.1f32..3.0,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lin = Linear::new(x.len(), 4, &mut rng);
        let net = ferrocim_nn::Network::new(vec![ferrocim_nn::layers::Layer::Linear(lin.clone())]);
        let y1 = net.forward(&Tensor::from_vec(&[x.len()], x.clone()));
        let scaled: Vec<f32> = x.iter().map(|v| v * alpha).collect();
        let y2 = net.forward(&Tensor::from_vec(&[x.len()], scaled));
        for ((a, b), bias) in y1.data().iter().zip(y2.data()).zip(lin.bias.data()) {
            let lhs = b - bias;
            let rhs = alpha * (a - bias);
            prop_assert!((lhs - rhs).abs() < 1e-3 * rhs.abs().max(1.0));
        }
    }

    /// Convolution is linear in the input (bias removed).
    #[test]
    fn conv_is_linear(
        seed in 0u64..100,
        alpha in 0.1f32..2.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut conv = Conv2d::new(2, 3, &mut rng);
        for b in conv.bias.data_mut() {
            *b = 0.0;
        }
        let net = ferrocim_nn::Network::new(vec![ferrocim_nn::layers::Layer::Conv2d(conv)]);
        let x: Vec<f32> = (0..2 * 4 * 4).map(|i| ((i * 13 % 7) as f32 - 3.0) / 3.0).collect();
        let y1 = net.forward(&Tensor::from_vec(&[2, 4, 4], x.clone()));
        let scaled: Vec<f32> = x.iter().map(|v| v * alpha).collect();
        let y2 = net.forward(&Tensor::from_vec(&[2, 4, 4], scaled));
        for (a, b) in y1.data().iter().zip(y2.data()) {
            prop_assert!((b - alpha * a).abs() < 1e-3 * a.abs().max(1.0));
        }
    }

    /// Softmax cross-entropy gradients always sum to zero and the loss
    /// is non-negative.
    #[test]
    fn cross_entropy_invariants(
        logits in prop::collection::vec(-10.0f32..10.0, 2..12),
        label_pick in 0usize..12,
    ) {
        let label = label_pick % logits.len();
        let t = Tensor::from_vec(&[logits.len()], logits);
        let (loss, grad) = ferrocim_nn::network::softmax_cross_entropy(&t, label);
        prop_assert!(loss >= -1e-6, "loss {loss}");
        let sum: f32 = grad.data().iter().sum();
        prop_assert!(sum.abs() < 1e-4, "grad sum {sum}");
        prop_assert!(grad.data()[label] <= 0.0);
    }
}
