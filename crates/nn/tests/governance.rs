//! Contained-panic and budget behaviour of the NN trainer and the
//! CIM-mapped accuracy sweep.

use ferrocim_nn::cim_exec::{CimMapping, CimNetwork, ExecError, IdealMac, MacOracle};
use ferrocim_nn::layers::{Layer, Linear};
use ferrocim_nn::{train, try_train, Network, Tensor, TrainConfig, TrainError};
use ferrocim_spice::{Budget, CancelToken, SpiceError};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_network(rng: &mut StdRng) -> Network {
    Network::new(vec![Layer::Linear(Linear::new(4, 2, rng))])
}

fn labelled_set(n: usize) -> (Vec<Tensor>, Vec<usize>) {
    let inputs = (0..n)
        .map(|i| Tensor::from_vec(&[4], vec![i as f32 * 0.1; 4]))
        .collect();
    let labels = (0..n).map(|i| i % 2).collect();
    (inputs, labels)
}

#[test]
fn try_train_reports_operand_problems_as_typed_errors() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = tiny_network(&mut rng);
    let (inputs, labels) = labelled_set(6);
    let err = try_train(&mut net, &inputs, &labels[..4], &TrainConfig::default()).unwrap_err();
    assert!(matches!(
        err,
        TrainError::LengthMismatch {
            inputs: 6,
            labels: 4
        }
    ));
    let err = try_train(&mut net, &[], &[], &TrainConfig::default()).unwrap_err();
    assert!(matches!(err, TrainError::EmptyTrainingSet));
}

#[test]
fn try_train_contains_worker_panics() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = tiny_network(&mut rng);
    // Inputs of the wrong width make the linear layer panic inside the
    // gradient workers; the panic must surface as a typed error, in
    // both the single-threaded and the fan-out path.
    let bad_inputs: Vec<Tensor> = (0..8)
        .map(|_| Tensor::from_vec(&[7], vec![0.5; 7]))
        .collect();
    let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
    for threads in [1, 4] {
        let config = TrainConfig {
            threads,
            epochs: 1,
            ..TrainConfig::default()
        };
        let err = try_train(&mut net, &bad_inputs, &labels, &config).unwrap_err();
        assert!(
            matches!(err, TrainError::WorkerPanicked { .. }),
            "threads={threads}: {err}"
        );
    }
}

#[test]
fn train_still_learns_after_the_refactor() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut net = tiny_network(&mut rng);
    let (inputs, labels) = labelled_set(16);
    let config = TrainConfig {
        epochs: 2,
        threads: 2,
        ..TrainConfig::default()
    };
    let stats = train(&mut net, &inputs, &labels, &config);
    assert_eq!(stats.len(), 2);
}

#[test]
fn cancelled_token_aborts_an_accuracy_sweep() {
    let mut rng = StdRng::seed_from_u64(3);
    let net = tiny_network(&mut rng);
    let cim = CimNetwork::map(&net, CimMapping::default());
    let (inputs, labels) = labelled_set(6);
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited().with_cancel_token(&token);
    let err = cim
        .try_accuracy(&inputs, &labels, &IdealMac(8), 5, &budget)
        .unwrap_err();
    assert!(
        matches!(err, ExecError::Budget(SpiceError::Cancelled)),
        "{err}"
    );
}

#[test]
fn step_budget_bounds_an_accuracy_sweep() {
    let mut rng = StdRng::seed_from_u64(4);
    let net = tiny_network(&mut rng);
    let cim = CimNetwork::map(&net, CimMapping::default());
    let (inputs, labels) = labelled_set(12);
    let budget = Budget::unlimited().with_max_steps(3);
    let err = cim
        .try_accuracy(&inputs, &labels, &IdealMac(8), 5, &budget)
        .unwrap_err();
    assert!(
        matches!(err, ExecError::Budget(SpiceError::BudgetExceeded { .. })),
        "{err}"
    );
}

/// Panics on every read — a hardware model gone wrong.
struct AlwaysPanics;
impl MacOracle for AlwaysPanics {
    fn read(&self, _true_count: usize, _rng: &mut StdRng) -> usize {
        panic!("hardware model exploded");
    }
    fn cells_per_row(&self) -> usize {
        8
    }
}

#[test]
fn try_accuracy_contains_oracle_panics() {
    let mut rng = StdRng::seed_from_u64(5);
    let net = tiny_network(&mut rng);
    let cim = CimNetwork::map(&net, CimMapping::default());
    let (inputs, labels) = labelled_set(4);
    let err = cim
        .try_accuracy(&inputs, &labels, &AlwaysPanics, 5, &Budget::unlimited())
        .unwrap_err();
    match err {
        ExecError::WorkerPanicked { message } => {
            assert!(message.contains("exploded"), "{message}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
}

#[test]
fn try_accuracy_matches_accuracy_when_ungoverned() {
    let mut rng = StdRng::seed_from_u64(6);
    let net = tiny_network(&mut rng);
    let cim = CimNetwork::map(&net, CimMapping::default());
    let (inputs, labels) = labelled_set(10);
    let plain = cim.accuracy(&inputs, &labels, &IdealMac(8), 9);
    let governed = cim
        .try_accuracy(&inputs, &labels, &IdealMac(8), 9, &Budget::unlimited())
        .unwrap();
    assert_eq!(plain, governed);
}
