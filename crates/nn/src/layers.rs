//! CNN layers with forward and backward passes.
//!
//! Layers are an enum rather than trait objects so that a network is a
//! plain `Vec<Layer>` — easily cloned per worker thread for data-parallel
//! training and serialized for checkpoints.

use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Whether a forward pass is for training (dropout active) or inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: dropout masks are sampled.
    Train,
    /// Inference: dropout is the identity.
    Eval,
}

/// A 3×3, stride-1, pad-1 convolution (the only kind VGG uses).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    /// `[out_channels, in_channels, 3, 3]`.
    pub weight: Tensor,
    /// `[out_channels]`.
    pub bias: Tensor,
    in_channels: usize,
    out_channels: usize,
}

impl Conv2d {
    /// Creates a Kaiming-uniform initialized convolution.
    pub fn new<R: Rng + ?Sized>(in_channels: usize, out_channels: usize, rng: &mut R) -> Conv2d {
        let fan_in = (in_channels * 9) as f32;
        let bound = (6.0 / fan_in).sqrt();
        let weight = Tensor::from_vec(
            &[out_channels, in_channels, 3, 3],
            (0..out_channels * in_channels * 9)
                .map(|_| rng.random_range(-bound..bound))
                .collect(),
        );
        Conv2d {
            weight,
            bias: Tensor::zeros(&[out_channels]),
            in_channels,
            out_channels,
        }
    }

    /// The `(in_channels, out_channels)` pair.
    pub fn channels(&self) -> (usize, usize) {
        (self.in_channels, self.out_channels)
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        let (h, w) = (x.shape()[1], x.shape()[2]);
        assert_eq!(
            x.shape()[0],
            self.in_channels,
            "conv input channel mismatch"
        );
        let mut out = Tensor::zeros(&[self.out_channels, h, w]);
        let wd = self.weight.data();
        let xd = x.data();
        let od = out.data_mut();
        for o in 0..self.out_channels {
            let b = self.bias.data()[o];
            for v in od[o * h * w..(o + 1) * h * w].iter_mut() {
                *v = b;
            }
            for i in 0..self.in_channels {
                let wbase = ((o * self.in_channels) + i) * 9;
                for kh in 0..3usize {
                    for kw in 0..3usize {
                        let wk = wd[wbase + kh * 3 + kw];
                        if wk == 0.0 {
                            continue;
                        }
                        // Output rows that keep (h + kh - 1) in range.
                        let oh_lo = 1usize.saturating_sub(kh);
                        let oh_hi = (h + 1 - kh).min(h);
                        for oh in oh_lo..oh_hi {
                            let ih = oh + kh - 1;
                            let ow_lo = 1usize.saturating_sub(kw);
                            let ow_hi = (w + 1 - kw).min(w);
                            let orow = (o * h + oh) * w;
                            let irow = (i * h + ih) * w;
                            for ow in ow_lo..ow_hi {
                                od[orow + ow] += wk * xd[irow + ow + kw - 1];
                            }
                        }
                    }
                }
            }
        }
        out
    }

    fn backward(&self, grad: &Tensor, input: &Tensor) -> (Tensor, ParamGrads) {
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let mut dx = Tensor::zeros(&[self.in_channels, h, w]);
        let mut dw = Tensor::zeros(&[self.out_channels, self.in_channels, 3, 3]);
        let mut db = Tensor::zeros(&[self.out_channels]);
        let gd = grad.data();
        let xd = input.data();
        let wd = self.weight.data();
        {
            let dxd = dx.data_mut();
            for o in 0..self.out_channels {
                let gsum: f32 = gd[o * h * w..(o + 1) * h * w].iter().sum();
                db.data_mut()[o] = gsum;
                for i in 0..self.in_channels {
                    let wbase = ((o * self.in_channels) + i) * 9;
                    for kh in 0..3usize {
                        for kw in 0..3usize {
                            let wk = wd[wbase + kh * 3 + kw];
                            let mut dwk = 0.0f32;
                            let oh_lo = 1usize.saturating_sub(kh);
                            let oh_hi = (h + 1 - kh).min(h);
                            for oh in oh_lo..oh_hi {
                                let ih = oh + kh - 1;
                                let ow_lo = 1usize.saturating_sub(kw);
                                let ow_hi = (w + 1 - kw).min(w);
                                let grow = (o * h + oh) * w;
                                let irow = (i * h + ih) * w;
                                for ow in ow_lo..ow_hi {
                                    let g = gd[grow + ow];
                                    dwk += g * xd[irow + ow + kw - 1];
                                    dxd[irow + ow + kw - 1] += g * wk;
                                }
                            }
                            dw.data_mut()[wbase + kh * 3 + kw] = dwk;
                        }
                    }
                }
            }
        }
        (
            dx,
            ParamGrads {
                weight: dw,
                bias: db,
            },
        )
    }
}

/// A 2×2, stride-2 max pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxPool2d;

impl MaxPool2d {
    fn forward(&self, x: &Tensor) -> (Tensor, Vec<usize>) {
        let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert!(h % 2 == 0 && w % 2 == 0, "pool input must have even dims");
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor::zeros(&[c, oh, ow]);
        let mut argmax = vec![0usize; c * oh * ow];
        let xd = x.data();
        let od = out.data_mut();
        for ci in 0..c {
            for y in 0..oh {
                for xw in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..2 {
                        for dxx in 0..2 {
                            let idx = (ci * h + 2 * y + dy) * w + 2 * xw + dxx;
                            if xd[idx] > best {
                                best = xd[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = (ci * oh + y) * ow + xw;
                    od[oidx] = best;
                    argmax[oidx] = best_idx;
                }
            }
        }
        (out, argmax)
    }

    fn backward(&self, grad: &Tensor, input_shape: &[usize], argmax: &[usize]) -> Tensor {
        let mut dx = Tensor::zeros(input_shape);
        let dxd = dx.data_mut();
        for (g, &src) in grad.data().iter().zip(argmax) {
            dxd[src] += g;
        }
        dx
    }
}

/// A fully connected layer `y = Wx + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// `[out, in]`.
    pub weight: Tensor,
    /// `[out]`.
    pub bias: Tensor,
}

impl Linear {
    /// Creates a Kaiming-uniform initialized linear layer.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Linear {
        let bound = (6.0 / in_dim as f32).sqrt();
        Linear {
            weight: Tensor::from_vec(
                &[out_dim, in_dim],
                (0..out_dim * in_dim)
                    .map(|_| rng.random_range(-bound..bound))
                    .collect(),
            ),
            bias: Tensor::zeros(&[out_dim]),
        }
    }

    /// `(in, out)` dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.weight.shape()[1], self.weight.shape()[0])
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        let (in_dim, out_dim) = self.dims();
        assert_eq!(x.len(), in_dim, "linear input dim mismatch");
        let mut out = Tensor::zeros(&[out_dim]);
        let wd = self.weight.data();
        let xd = x.data();
        for (o, ov) in out.data_mut().iter_mut().enumerate() {
            let row = &wd[o * in_dim..(o + 1) * in_dim];
            *ov = self.bias.data()[o] + row.iter().zip(xd).map(|(a, b)| a * b).sum::<f32>();
        }
        out
    }

    fn backward(&self, grad: &Tensor, input: &Tensor) -> (Tensor, ParamGrads) {
        let (in_dim, out_dim) = self.dims();
        let mut dx = Tensor::zeros(&[in_dim]);
        let mut dw = Tensor::zeros(&[out_dim, in_dim]);
        let db = Tensor::from_vec(&[out_dim], grad.data().to_vec());
        let wd = self.weight.data();
        let gd = grad.data();
        let xd = input.data();
        {
            let dxd = dx.data_mut();
            let dwd = dw.data_mut();
            for o in 0..out_dim {
                let g = gd[o];
                let row = &wd[o * in_dim..(o + 1) * in_dim];
                let drow = &mut dwd[o * in_dim..(o + 1) * in_dim];
                for i in 0..in_dim {
                    dxd[i] += g * row[i];
                    drow[i] = g * xd[i];
                }
            }
        }
        (
            dx,
            ParamGrads {
                weight: dw,
                bias: db,
            },
        )
    }
}

/// Parameter gradients of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamGrads {
    /// Gradient of the weight tensor.
    pub weight: Tensor,
    /// Gradient of the bias tensor.
    pub bias: Tensor,
}

/// One network layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 3×3 convolution.
    Conv2d(Conv2d),
    /// 2×2 max pooling.
    MaxPool(MaxPool2d),
    /// Fully connected.
    Linear(Linear),
    /// Rectified linear unit.
    Relu,
    /// CHW → flat vector.
    Flatten,
    /// Dropout with the given drop probability (training only).
    Dropout(f32),
    /// Noise-aware-training injection: during training, adds Gaussian
    /// noise with standard deviation `σ·rms(x)` (relative to the
    /// activation RMS); identity at inference and in backward (a
    /// straight-through estimator). This is the standard technique for
    /// hardening networks against analog CIM readout noise (the paper's
    /// ref \[13\], "training with right-censored Gaussian noise").
    Noise(f32),
}

/// Per-layer cached state from the forward pass, consumed by backward.
#[derive(Debug, Clone)]
pub enum Cache {
    /// Convolution: the input activation.
    Conv(Tensor),
    /// Pool: input shape and winning indices.
    Pool(Vec<usize>, Vec<usize>),
    /// Linear: the input activation.
    Linear(Tensor),
    /// ReLU: the pass-through mask.
    Relu(Vec<bool>),
    /// Flatten: the original shape.
    Flatten(Vec<usize>),
    /// Dropout: the keep mask and scale.
    Dropout(Vec<bool>, f32),
    /// No state needed.
    None,
}

impl Layer {
    /// Runs the layer forward, returning the output and the cache needed
    /// for [`Layer::backward`].
    pub fn forward<R: Rng + ?Sized>(&self, x: &Tensor, mode: Mode, rng: &mut R) -> (Tensor, Cache) {
        match self {
            Layer::Conv2d(conv) => (conv.forward(x), Cache::Conv(x.clone())),
            Layer::MaxPool(pool) => {
                let (out, argmax) = pool.forward(x);
                (out, Cache::Pool(x.shape().to_vec(), argmax))
            }
            Layer::Linear(lin) => (lin.forward(x), Cache::Linear(x.clone())),
            Layer::Relu => {
                let mask: Vec<bool> = x.data().iter().map(|&v| v > 0.0).collect();
                let out =
                    Tensor::from_vec(x.shape(), x.data().iter().map(|&v| v.max(0.0)).collect());
                (out, Cache::Relu(mask))
            }
            Layer::Flatten => {
                let shape = x.shape().to_vec();
                (x.clone().reshape(&[x.len()]), Cache::Flatten(shape))
            }
            Layer::Noise(sigma) => match mode {
                Mode::Eval => (x.clone(), Cache::None),
                Mode::Train => {
                    let rms = (x.data().iter().map(|v| v * v).sum::<f32>() / x.len() as f32).sqrt();
                    let scale = sigma * rms;
                    let out = Tensor::from_vec(
                        x.shape(),
                        x.data()
                            .iter()
                            .map(|&v| {
                                // Irwin–Hall(3) approximates a Gaussian.
                                let s: f32 = (0..3).map(|_| rng.random_range(-1.0f32..1.0)).sum();
                                v + scale * s / 3.0f32.sqrt()
                            })
                            .collect(),
                    );
                    (out, Cache::None)
                }
            },
            Layer::Dropout(p) => match mode {
                Mode::Eval => (x.clone(), Cache::None),
                Mode::Train => {
                    let keep = 1.0 - p;
                    let scale = 1.0 / keep;
                    let mask: Vec<bool> =
                        (0..x.len()).map(|_| rng.random::<f32>() < keep).collect();
                    let out = Tensor::from_vec(
                        x.shape(),
                        x.data()
                            .iter()
                            .zip(&mask)
                            .map(|(&v, &m)| if m { v * scale } else { 0.0 })
                            .collect(),
                    );
                    (out, Cache::Dropout(mask, scale))
                }
            },
        }
    }

    /// Backpropagates through the layer: returns the input gradient and,
    /// for parameterized layers, the parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if the cache does not match the layer (an internal
    /// training-loop invariant).
    pub fn backward(&self, grad: &Tensor, cache: &Cache) -> (Tensor, Option<ParamGrads>) {
        match (self, cache) {
            (Layer::Conv2d(conv), Cache::Conv(input)) => {
                let (dx, pg) = conv.backward(grad, input);
                (dx, Some(pg))
            }
            (Layer::MaxPool(pool), Cache::Pool(shape, argmax)) => {
                (pool.backward(grad, shape, argmax), None)
            }
            (Layer::Linear(lin), Cache::Linear(input)) => {
                let (dx, pg) = lin.backward(grad, input);
                (dx, Some(pg))
            }
            (Layer::Relu, Cache::Relu(mask)) => {
                let dx = Tensor::from_vec(
                    grad.shape(),
                    grad.data()
                        .iter()
                        .zip(mask)
                        .map(|(&g, &m)| if m { g } else { 0.0 })
                        .collect(),
                );
                (dx, None)
            }
            (Layer::Flatten, Cache::Flatten(shape)) => (grad.clone().reshape(shape), None),
            (Layer::Noise(_), Cache::None) => (grad.clone(), None),
            (Layer::Dropout(_), Cache::None) => (grad.clone(), None),
            (Layer::Dropout(_), Cache::Dropout(mask, scale)) => {
                let dx = Tensor::from_vec(
                    grad.shape(),
                    grad.data()
                        .iter()
                        .zip(mask)
                        .map(|(&g, &m)| if m { g * scale } else { 0.0 })
                        .collect(),
                );
                (dx, None)
            }
            _ => panic!("layer/cache mismatch in backward"),
        }
    }

    /// Applies a gradient step to this layer's parameters (no-op for
    /// parameterless layers).
    pub fn apply_grads(&mut self, grads: &ParamGrads, lr: f32) {
        match self {
            Layer::Conv2d(conv) => {
                for (w, g) in conv.weight.data_mut().iter_mut().zip(grads.weight.data()) {
                    *w -= lr * g;
                }
                for (b, g) in conv.bias.data_mut().iter_mut().zip(grads.bias.data()) {
                    *b -= lr * g;
                }
            }
            Layer::Linear(lin) => {
                for (w, g) in lin.weight.data_mut().iter_mut().zip(grads.weight.data()) {
                    *w -= lr * g;
                }
                for (b, g) in lin.bias.data_mut().iter_mut().zip(grads.bias.data()) {
                    *b -= lr * g;
                }
            }
            _ => {}
        }
    }

    /// `true` if the layer has trainable parameters.
    pub fn has_params(&self) -> bool {
        matches!(self, Layer::Conv2d(_) | Layer::Linear(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn conv_identity_kernel_passes_input_through() {
        let mut conv = Conv2d::new(1, 1, &mut rng());
        // Center tap = 1, everything else 0.
        for w in conv.weight.data_mut().iter_mut() {
            *w = 0.0;
        }
        conv.weight.data_mut()[4] = 1.0;
        conv.bias.data_mut()[0] = 0.0;
        let x = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_matches_hand_computed_example() {
        let mut conv = Conv2d::new(1, 1, &mut rng());
        for (i, w) in conv.weight.data_mut().iter_mut().enumerate() {
            *w = i as f32; // kernel 0..9
        }
        conv.bias.data_mut()[0] = 0.5;
        let x = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x);
        // y[0,0]: kernel taps (kh,kw) hitting in-range pixels:
        //  (1,1)*x00 + (1,2)*x01 + (2,1)*x10 + (2,2)*x11
        //  = 4*1 + 5*2 + 7*3 + 8*4 = 67, + bias 0.5.
        assert!((y.at3(0, 0, 0) - 67.5).abs() < 1e-5, "{}", y.at3(0, 0, 0));
    }

    #[test]
    fn conv_backward_matches_finite_differences() {
        let mut r = rng();
        let conv = Conv2d::new(2, 3, &mut r);
        let x = Tensor::from_vec(
            &[2, 4, 4],
            (0..32).map(|i| (i as f32 * 0.37).sin()).collect(),
        );
        let y = conv.forward(&x);
        // Scalar loss: sum of outputs → grad = ones.
        let grad = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let (dx, pg) = conv.backward(&grad, &x);
        let h = 1e-3f32;
        // Check a few dX entries.
        for &idx in &[0usize, 7, 19, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += h;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= h;
            let fp: f32 = conv.forward(&xp).data().iter().sum();
            let fm: f32 = conv.forward(&xm).data().iter().sum();
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (dx.data()[idx] - fd).abs() < 1e-2,
                "dx[{idx}] {} vs fd {fd}",
                dx.data()[idx]
            );
        }
        // Check a few dW entries.
        for &idx in &[0usize, 10, 35, 53] {
            let mut cp = conv.clone();
            cp.weight.data_mut()[idx] += h;
            let mut cm = conv.clone();
            cm.weight.data_mut()[idx] -= h;
            let fp: f32 = cp.forward(&x).data().iter().sum();
            let fm: f32 = cm.forward(&x).data().iter().sum();
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (pg.weight.data()[idx] - fd).abs() < 1e-2,
                "dw[{idx}] {} vs fd {fd}",
                pg.weight.data()[idx]
            );
        }
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let x = Tensor::from_vec(
            &[1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let (y, argmax) = MaxPool2d.forward(&x);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
        let grad = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let dx = MaxPool2d.backward(&grad, &[1, 4, 4], &argmax);
        assert_eq!(dx.data()[5], 1.0); // position of the 4.0
        assert_eq!(dx.data()[7], 2.0); // position of the 8.0
        assert_eq!(dx.data()[0], 0.0);
    }

    #[test]
    fn linear_backward_matches_finite_differences() {
        let mut r = rng();
        let lin = Linear::new(5, 3, &mut r);
        let x = Tensor::from_vec(&[5], vec![0.3, -0.2, 0.9, 0.1, -0.5]);
        let grad = Tensor::from_vec(&[3], vec![1.0, -2.0, 0.5]);
        let (dx, pg) = lin.backward(&grad, &x);
        let h = 1e-3f32;
        let loss = |l: &Linear, xx: &Tensor| -> f32 {
            l.forward(xx)
                .data()
                .iter()
                .zip(grad.data())
                .map(|(y, g)| y * g)
                .sum()
        };
        for idx in 0..5 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += h;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= h;
            let fd = (loss(&lin, &xp) - loss(&lin, &xm)) / (2.0 * h);
            assert!((dx.data()[idx] - fd).abs() < 1e-3);
        }
        for idx in [0usize, 6, 14] {
            let mut lp = lin.clone();
            lp.weight.data_mut()[idx] += h;
            let mut lm = lin.clone();
            lm.weight.data_mut()[idx] -= h;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
            assert!((pg.weight.data()[idx] - fd).abs() < 1e-3);
        }
    }

    #[test]
    fn relu_masks_negatives_both_ways() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 2.0, -3.0, 4.0]);
        let mut r = rng();
        let (y, cache) = Layer::Relu.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let grad = Tensor::from_vec(&[4], vec![1.0; 4]);
        let (dx, _) = Layer::Relu.backward(&grad, &cache);
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn dropout_is_identity_in_eval_and_scales_in_train() {
        let x = Tensor::from_vec(&[1000], vec![1.0; 1000]);
        let mut r = rng();
        let layer = Layer::Dropout(0.5);
        let (y, _) = layer.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.data(), x.data());
        let (y, _) = layer.forward(&x, Mode::Train, &mut r);
        let mean: f32 = y.data().iter().sum::<f32>() / 1000.0;
        // Inverted dropout keeps the expectation ≈ 1.
        assert!((mean - 1.0).abs() < 0.15, "mean {mean}");
        let kept = y.data().iter().filter(|&&v| v > 0.0).count();
        assert!((kept as f32 / 1000.0 - 0.5).abs() < 0.1);
    }

    #[test]
    fn flatten_round_trip() {
        let x = Tensor::from_vec(&[2, 2, 2], (0..8).map(|i| i as f32).collect());
        let mut r = rng();
        let (y, cache) = Layer::Flatten.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.shape(), &[8]);
        let (dx, _) = Layer::Flatten.backward(&y, &cache);
        assert_eq!(dx.shape(), &[2, 2, 2]);
        assert_eq!(dx.data(), x.data());
    }
}
