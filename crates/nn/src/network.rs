//! Sequential networks, the softmax cross-entropy loss, and a
//! data-parallel minibatch SGD trainer.

use crate::layers::{Cache, Layer, Mode, ParamGrads};
use crate::tensor::Tensor;
use ferrocim_telemetry::{Event, Telemetry};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A feed-forward network: layers applied in sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Builds a network from layers.
    pub fn new(layers: Vec<Layer>) -> Network {
        Network { layers }
    }

    /// The layers (e.g. for CIM mapping or inspection).
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers.
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Conv2d(c) => c.weight.len() + c.bias.len(),
                Layer::Linear(l) => l.weight.len() + l.bias.len(),
                _ => 0,
            })
            .sum()
    }

    /// Inference forward pass (dropout disabled).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut rng = StdRng::seed_from_u64(0); // unused in Eval mode
        let mut h = x.clone();
        for layer in &self.layers {
            let (out, _) = layer.forward(&h, Mode::Eval, &mut rng);
            h = out;
        }
        h
    }

    /// Predicted class index for an input.
    pub fn predict(&self, x: &Tensor) -> usize {
        self.forward(x).argmax()
    }

    /// Training forward pass, keeping per-layer caches.
    fn forward_train<R: Rng + ?Sized>(&self, x: &Tensor, rng: &mut R) -> (Tensor, Vec<Cache>) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for layer in &self.layers {
            let (out, cache) = layer.forward(&h, Mode::Train, rng);
            caches.push(cache);
            h = out;
        }
        (h, caches)
    }

    /// Computes the loss and parameter gradients for one example.
    fn grads_for<R: Rng + ?Sized>(
        &self,
        x: &Tensor,
        label: usize,
        rng: &mut R,
    ) -> (f32, Vec<Option<ParamGrads>>) {
        let (logits, caches) = self.forward_train(x, rng);
        let (loss, mut grad) = softmax_cross_entropy(&logits, label);
        let mut grads: Vec<Option<ParamGrads>> = Vec::with_capacity(self.layers.len());
        for (layer, cache) in self.layers.iter().zip(&caches).rev() {
            let (dx, pg) = layer.backward(&grad, cache);
            grads.push(pg);
            grad = dx;
        }
        grads.reverse();
        (loss, grads)
    }

    /// Classification accuracy over a labelled set.
    pub fn accuracy(&self, inputs: &[Tensor], labels: &[usize]) -> f64 {
        assert_eq!(inputs.len(), labels.len());
        if inputs.is_empty() {
            return 0.0;
        }
        let hits = inputs
            .iter()
            .zip(labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        hits as f64 / inputs.len() as f64
    }
}

/// Softmax cross-entropy: returns the loss and `∂L/∂logits`.
pub fn softmax_cross_entropy(logits: &Tensor, label: usize) -> (f32, Tensor) {
    let max = logits
        .data()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.data().iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let mut grad = Tensor::zeros(logits.shape());
    for (i, g) in grad.data_mut().iter_mut().enumerate() {
        *g = exps[i] / sum - if i == label { 1.0 } else { 0.0 };
    }
    let loss = -(exps[label] / sum).ln();
    (loss, grad)
}

/// The parameter-update rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Optimizer {
    /// Stochastic gradient descent with classical momentum.
    Sgd {
        /// Momentum coefficient (0 disables momentum).
        momentum: f32,
    },
    /// Adam (Kingma & Ba, 2015) with bias correction.
    Adam {
        /// First-moment decay rate.
        beta1: f32,
        /// Second-moment decay rate.
        beta2: f32,
        /// Denominator stabilizer.
        epsilon: f32,
    },
}

impl Optimizer {
    /// Adam with the canonical hyperparameters (0.9, 0.999, 1e-8).
    pub fn adam() -> Optimizer {
        Optimizer::Adam {
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::Sgd { momentum: 0.9 }
    }
}

/// Training configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Per-epoch multiplicative learning-rate decay (1.0 = constant).
    pub lr_decay: f32,
    /// The parameter-update rule.
    pub optimizer: Optimizer,
    /// Minibatch size.
    pub batch_size: usize,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// RNG seed (shuffling, dropout).
    pub seed: u64,
    /// Worker threads for data-parallel gradient computation.
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.02,
            lr_decay: 0.9,
            optimizer: Optimizer::default(),
            batch_size: 32,
            epochs: 10,
            seed: 42,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Per-layer optimizer state.
struct OptState {
    /// Momentum velocity (SGD) or first moment (Adam).
    m: ParamGrads,
    /// Second moment (Adam only).
    v: Option<ParamGrads>,
    /// Step counter for Adam bias correction.
    t: u32,
}

impl OptState {
    fn new(template: &ParamGrads, adam: bool) -> OptState {
        let zeros = ParamGrads {
            weight: Tensor::zeros(template.weight.shape()),
            bias: Tensor::zeros(template.bias.shape()),
        };
        OptState {
            v: adam.then(|| ParamGrads {
                weight: Tensor::zeros(template.weight.shape()),
                bias: Tensor::zeros(template.bias.shape()),
            }),
            m: zeros,
            t: 0,
        }
    }

    /// Computes the update to apply (already scaled for `apply_grads`
    /// with learning rate 1·lr) from the batch-mean gradient.
    fn update(&mut self, grad: &ParamGrads, optimizer: Optimizer) -> ParamGrads {
        match optimizer {
            Optimizer::Sgd { momentum } => {
                self.m.weight.scale(momentum);
                self.m.weight.add_assign(&grad.weight);
                self.m.bias.scale(momentum);
                self.m.bias.add_assign(&grad.bias);
                ParamGrads {
                    weight: self.m.weight.clone(),
                    bias: self.m.bias.clone(),
                }
            }
            Optimizer::Adam {
                beta1,
                beta2,
                epsilon,
            } => {
                self.t += 1;
                let v = self.v.get_or_insert_with(|| ParamGrads {
                    weight: Tensor::zeros(grad.weight.shape()),
                    bias: Tensor::zeros(grad.bias.shape()),
                });
                let bc1 = 1.0 - beta1.powi(self.t as i32);
                let bc2 = 1.0 - beta2.powi(self.t as i32);
                let mut out = ParamGrads {
                    weight: Tensor::zeros(grad.weight.shape()),
                    bias: Tensor::zeros(grad.bias.shape()),
                };
                for ((m, vv), (g, o)) in self
                    .m
                    .weight
                    .data_mut()
                    .iter_mut()
                    .zip(v.weight.data_mut())
                    .zip(grad.weight.data().iter().zip(out.weight.data_mut()))
                {
                    *m = beta1 * *m + (1.0 - beta1) * g;
                    *vv = beta2 * *vv + (1.0 - beta2) * g * g;
                    *o = (*m / bc1) / ((*vv / bc2).sqrt() + epsilon);
                }
                for ((m, vv), (g, o)) in self
                    .m
                    .bias
                    .data_mut()
                    .iter_mut()
                    .zip(v.bias.data_mut())
                    .zip(grad.bias.data().iter().zip(out.bias.data_mut()))
                {
                    *m = beta1 * *m + (1.0 - beta1) * g;
                    *vv = beta2 * *vv + (1.0 - beta2) * g * g;
                    *o = (*m / bc1) / ((*vv / bc2).sqrt() + epsilon);
                }
                out
            }
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f64,
    /// Training-set accuracy measured after the epoch.
    pub train_accuracy: f64,
}

/// Typed failures of [`try_train`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrainError {
    /// `inputs` and `labels` had different lengths.
    LengthMismatch {
        /// Number of input tensors.
        inputs: usize,
        /// Number of labels.
        labels: usize,
    },
    /// The training set was empty.
    EmptyTrainingSet,
    /// A gradient worker panicked (e.g. a poisoned layer or a numeric
    /// assertion inside backprop). The panic is contained: the network
    /// is left as of the last completed batch, and the payload message
    /// is carried here instead of unwinding through the trainer.
    WorkerPanicked {
        /// The panic payload, rendered to a string when possible.
        message: String,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::LengthMismatch { inputs, labels } => {
                write!(f, "inputs ({inputs}) and labels ({labels}) lengths differ")
            }
            TrainError::EmptyTrainingSet => write!(f, "empty training set"),
            TrainError::WorkerPanicked { message } => {
                write!(f, "gradient worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// Renders a panic payload for [`TrainError::WorkerPanicked`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Trains the network in place with minibatch SGD + momentum, returning
/// per-epoch statistics. Gradients within a batch are computed in
/// parallel across `threads` workers.
///
/// # Panics
///
/// Panics if `inputs` and `labels` lengths differ, the set is empty, or
/// a gradient worker panicked ([`try_train`] reports all three as typed
/// errors instead).
pub fn train(
    network: &mut Network,
    inputs: &[Tensor],
    labels: &[usize],
    config: &TrainConfig,
) -> Vec<EpochStats> {
    match try_train(network, inputs, labels, config) {
        Ok(stats) => stats,
        Err(TrainError::EmptyTrainingSet) => panic!("empty training set"),
        Err(e @ TrainError::LengthMismatch { .. }) => {
            panic!("inputs/labels length mismatch: {e}")
        }
        Err(e) => panic!("training failed: {e}"),
    }
}

/// Fallible [`train`]: worker panics are contained and surfaced as
/// [`TrainError::WorkerPanicked`], and operand problems are typed
/// errors rather than panics.
///
/// # Errors
///
/// See [`TrainError`].
pub fn try_train(
    network: &mut Network,
    inputs: &[Tensor],
    labels: &[usize],
    config: &TrainConfig,
) -> Result<Vec<EpochStats>, TrainError> {
    try_train_recorded(network, inputs, labels, config, &Telemetry::off())
}

/// [`try_train`] with a telemetry handle: one [`Event::EpochDone`] is
/// emitted per completed epoch, carrying the same loss and accuracy
/// pushed into the returned [`EpochStats`].
///
/// `TrainConfig` stays a plain `Copy + Serialize` value, so the handle
/// is a separate argument rather than a config field.
///
/// # Errors
///
/// See [`TrainError`].
pub fn try_train_recorded(
    network: &mut Network,
    inputs: &[Tensor],
    labels: &[usize],
    config: &TrainConfig,
    tele: &Telemetry,
) -> Result<Vec<EpochStats>, TrainError> {
    if inputs.len() != labels.len() {
        return Err(TrainError::LengthMismatch {
            inputs: inputs.len(),
            labels: labels.len(),
        });
    }
    if inputs.is_empty() {
        return Err(TrainError::EmptyTrainingSet);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_layers = network.layers().len();
    // Optimizer state per parameterized layer.
    let mut states: Vec<Option<OptState>> = (0..n_layers).map(|_| None).collect();
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    let mut stats = Vec::with_capacity(config.epochs);
    let mut lr = config.learning_rate;
    for epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut total_loss = 0.0f64;
        for batch in order.chunks(config.batch_size) {
            let (loss, grads) = batch_grads(network, inputs, labels, batch, &mut rng, config)?;
            total_loss += loss;
            let scale = 1.0 / batch.len() as f32;
            for (li, g) in grads.into_iter().enumerate() {
                let Some(mut g) = g else { continue };
                g.weight.scale(scale);
                g.bias.scale(scale);
                let adam = matches!(config.optimizer, Optimizer::Adam { .. });
                let state = states[li].get_or_insert_with(|| OptState::new(&g, adam));
                let update = state.update(&g, config.optimizer);
                network.layers_mut()[li].apply_grads(&update, lr);
            }
        }
        lr *= config.lr_decay;
        let train_accuracy = network.accuracy(inputs, labels);
        let loss = total_loss / inputs.len() as f64;
        stats.push(EpochStats {
            epoch,
            loss,
            train_accuracy,
        });
        let epoch_index = epoch as u64;
        tele.emit(|| Event::EpochDone {
            epoch: epoch_index,
            loss,
            accuracy: train_accuracy,
        });
    }
    Ok(stats)
}

/// Computes summed gradients over a batch, fanning examples out across
/// worker threads (each worker clones the network once per batch).
fn batch_grads(
    network: &Network,
    inputs: &[Tensor],
    labels: &[usize],
    batch: &[usize],
    rng: &mut StdRng,
    config: &TrainConfig,
) -> Result<(f64, Vec<Option<ParamGrads>>), TrainError> {
    let threads = config.threads.max(1).min(batch.len());
    let dropout_seed: u64 = rng.random();
    // Both paths contain worker panics so a flaky layer surfaces as a
    // typed error instead of unwinding through (or aborting) the
    // trainer.
    let results: Vec<(f64, Vec<Option<ParamGrads>>)> = if threads <= 1 {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            worker(network, inputs, labels, batch, dropout_seed)
        }))
        .map_err(|payload| TrainError::WorkerPanicked {
            message: panic_message(payload),
        })?;
        vec![result]
    } else {
        let chunk = batch.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = batch
                .chunks(chunk)
                .enumerate()
                .map(|(t, part)| {
                    scope.spawn(move || {
                        worker(
                            network,
                            inputs,
                            labels,
                            part,
                            dropout_seed ^ (t as u64) << 17,
                        )
                    })
                })
                .collect();
            // Join every handle before surfacing the first panic, so
            // `scope` never sees an unjoined panicked thread (which
            // would re-panic at scope exit).
            let joined: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    h.join().map_err(|payload| TrainError::WorkerPanicked {
                        message: panic_message(payload),
                    })
                })
                .collect();
            joined.into_iter().collect::<Result<Vec<_>, TrainError>>()
        })?
    };
    let mut total_loss = 0.0;
    let mut acc: Vec<Option<ParamGrads>> = vec![None; network.layers().len()];
    for (loss, grads) in results {
        total_loss += loss;
        for (slot, g) in acc.iter_mut().zip(grads) {
            match (slot.as_mut(), g) {
                (Some(s), Some(g)) => {
                    s.weight.add_assign(&g.weight);
                    s.bias.add_assign(&g.bias);
                }
                (None, Some(g)) => *slot = Some(g),
                _ => {}
            }
        }
    }
    Ok((total_loss, acc))
}

fn worker(
    network: &Network,
    inputs: &[Tensor],
    labels: &[usize],
    part: &[usize],
    seed: u64,
) -> (f64, Vec<Option<ParamGrads>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total_loss = 0.0f64;
    let mut acc: Vec<Option<ParamGrads>> = vec![None; network.layers().len()];
    for &idx in part {
        let (loss, grads) = network.grads_for(&inputs[idx], labels[idx], &mut rng);
        total_loss += loss as f64;
        for (slot, g) in acc.iter_mut().zip(grads) {
            match (slot.as_mut(), g) {
                (Some(s), Some(g)) => {
                    s.weight.add_assign(&g.weight);
                    s.bias.add_assign(&g.bias);
                }
                (None, Some(g)) => *slot = Some(g),
                _ => {}
            }
        }
    }
    (total_loss, acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;

    #[test]
    fn softmax_cross_entropy_grad_sums_to_zero() {
        let logits = Tensor::from_vec(&[4], vec![1.0, 2.0, 0.5, -1.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, 1);
        assert!(loss > 0.0);
        let s: f32 = grad.data().iter().sum();
        assert!(s.abs() < 1e-6);
        // The true class has a negative gradient (push its logit up).
        assert!(grad.data()[1] < 0.0);
    }

    #[test]
    fn perfect_logits_give_near_zero_loss() {
        let logits = Tensor::from_vec(&[3], vec![20.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, 0);
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn linear_network_learns_a_separable_problem() {
        // Two Gaussian blobs in 2-D; a linear classifier must separate
        // them quickly.
        let mut rng = StdRng::seed_from_u64(3);
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let cls = i % 2;
            let cx = if cls == 0 { -1.0 } else { 1.0 };
            inputs.push(Tensor::from_vec(
                &[2],
                vec![
                    cx + rng.random_range(-0.3..0.3),
                    cx + rng.random_range(-0.3..0.3),
                ],
            ));
            labels.push(cls);
        }
        let mut net = Network::new(vec![Layer::Linear(Linear::new(2, 2, &mut rng))]);
        let config = TrainConfig {
            epochs: 15,
            batch_size: 16,
            learning_rate: 0.2,
            threads: 2,
            ..TrainConfig::default()
        };
        let stats = train(&mut net, &inputs, &labels, &config);
        let final_acc = stats.last().unwrap().train_accuracy;
        assert!(final_acc > 0.98, "accuracy {final_acc}");
        // Loss decreased.
        assert!(stats.last().unwrap().loss < stats[0].loss);
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let mut rng = StdRng::seed_from_u64(5);
        let inputs: Vec<Tensor> = (0..20)
            .map(|i| Tensor::from_vec(&[3], vec![i as f32 * 0.1, 0.5, -0.2]))
            .collect();
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let build = |rng: &mut StdRng| Network::new(vec![Layer::Linear(Linear::new(3, 2, rng))]);
        let config = TrainConfig {
            epochs: 3,
            threads: 1,
            ..TrainConfig::default()
        };
        let mut a = build(&mut rng.clone());
        let mut b = build(&mut rng);
        let sa = train(&mut a, &inputs, &labels, &config);
        let sb = train(&mut b, &inputs, &labels, &config);
        assert_eq!(sa, sb);
        assert_eq!(a, b);
    }

    #[test]
    fn adam_learns_the_separable_problem_too() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let cls = i % 2;
            let cx = if cls == 0 { -1.0 } else { 1.0 };
            inputs.push(Tensor::from_vec(
                &[2],
                vec![
                    cx + rng.random_range(-0.3..0.3),
                    cx + rng.random_range(-0.3..0.3),
                ],
            ));
            labels.push(cls);
        }
        let mut net = Network::new(vec![Layer::Linear(Linear::new(2, 2, &mut rng))]);
        let config = TrainConfig {
            epochs: 10,
            batch_size: 16,
            learning_rate: 0.05,
            optimizer: Optimizer::adam(),
            threads: 1,
            ..TrainConfig::default()
        };
        let stats = train(&mut net, &inputs, &labels, &config);
        let final_acc = stats.last().unwrap().train_accuracy;
        assert!(final_acc > 0.97, "adam accuracy {final_acc}");
    }

    #[test]
    fn parameter_count_is_correct() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Network::new(vec![
            Layer::Linear(Linear::new(10, 5, &mut rng)),
            Layer::Relu,
            Layer::Linear(Linear::new(5, 2, &mut rng)),
        ]);
        assert_eq!(net.parameter_count(), 10 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn recorded_training_emits_one_epoch_event_per_epoch() {
        use ferrocim_telemetry::Aggregator;
        use std::sync::Arc;
        let mut rng = StdRng::seed_from_u64(8);
        let inputs: Vec<Tensor> = (0..12)
            .map(|i| Tensor::from_vec(&[3], vec![i as f32 * 0.1, 0.2, -0.1]))
            .collect();
        let labels: Vec<usize> = (0..12).map(|i| i % 2).collect();
        let mut net = Network::new(vec![Layer::Linear(Linear::new(3, 2, &mut rng))]);
        let config = TrainConfig {
            epochs: 4,
            threads: 1,
            ..TrainConfig::default()
        };
        let agg = Arc::new(Aggregator::new());
        let tele = Telemetry::new(agg.clone());
        let stats = try_train_recorded(&mut net, &inputs, &labels, &config, &tele).expect("trains");
        assert_eq!(stats.len(), 4);
        assert_eq!(agg.counts().epochs_done, 4);
    }

    #[test]
    fn adam_state_recovers_a_missing_second_moment() {
        // The optimizer state lazily materializes `v`, so an Adam
        // update on SGD-initialized state works instead of panicking.
        let grad = ParamGrads {
            weight: Tensor::from_vec(&[2], vec![0.1, -0.2]),
            bias: Tensor::from_vec(&[1], vec![0.05]),
        };
        let mut state = OptState::new(&grad, false);
        assert!(state.v.is_none());
        let update = state.update(&grad, Optimizer::adam());
        assert!(state.v.is_some());
        assert!(update.weight.data().iter().all(|u| u.is_finite()));
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn train_rejects_empty_set() {
        let mut net = Network::new(vec![]);
        let _ = train(&mut net, &[], &[], &TrainConfig::default());
    }
}
