//! VGG network builders: the paper's Table I architecture, plus the
//! scaled "VGG-nano" variant that is trainable in-repo within seconds.

use crate::layers::{Conv2d, Layer, Linear, MaxPool2d};
use crate::network::Network;
use rand::Rng;

/// One row of a VGG structure description (used to print Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDescription {
    /// Layer label, e.g. `64 3x3 Conv1`.
    pub layer: String,
    /// Input activation shape `HxWxC`.
    pub input_map: String,
    /// Output activation shape `HxWxC`.
    pub output_map: String,
    /// Non-linearity / dropout annotation.
    pub non_linearity: String,
}

/// Builds the paper's Table I VGG: 7 convolution layers in three blocks
/// (64, 128, 256 channels), three 2×2 max-pools, and three fully
/// connected layers (4096 → 4096 → 10), with the table's dropout rates.
///
/// This is the full ≈ 38 M-parameter model; it is constructed for
/// inference/structure purposes and for Table I, while training in this
/// repository uses [`vgg_nano`] (see DESIGN.md substitutions).
pub fn vgg_paper<R: Rng + ?Sized>(rng: &mut R) -> Network {
    Network::new(vec![
        Layer::Conv2d(Conv2d::new(3, 64, rng)),
        Layer::Relu,
        Layer::Dropout(0.3),
        Layer::Conv2d(Conv2d::new(64, 64, rng)),
        Layer::Relu,
        Layer::MaxPool(MaxPool2d),
        Layer::Conv2d(Conv2d::new(64, 128, rng)),
        Layer::Relu,
        Layer::Dropout(0.4),
        Layer::Conv2d(Conv2d::new(128, 128, rng)),
        Layer::Relu,
        Layer::MaxPool(MaxPool2d),
        Layer::Conv2d(Conv2d::new(128, 256, rng)),
        Layer::Relu,
        Layer::Dropout(0.4),
        Layer::Conv2d(Conv2d::new(256, 256, rng)),
        Layer::Relu,
        Layer::Dropout(0.4),
        Layer::Conv2d(Conv2d::new(256, 256, rng)),
        Layer::Relu,
        Layer::MaxPool(MaxPool2d),
        Layer::Flatten,
        Layer::Linear(Linear::new(4 * 4 * 256, 4096, rng)),
        Layer::Relu,
        Layer::Dropout(0.5),
        Layer::Linear(Linear::new(4096, 4096, rng)),
        Layer::Relu,
        Layer::Dropout(0.5),
        Layer::Linear(Linear::new(4096, 10, rng)),
    ])
}

/// Builds "VGG-nano": the same seven-convolution, three-pool, three-FC
/// topology as Table I with every channel width divided by ~10 —
/// (6, 6, 12, 12, 24, 24, 24) channels and 384 → 64 → 10 FC layers.
/// Dropout is retained at reduced rates (a narrow network regularizes
/// itself). Trains to ≈ 90 % on the synthetic dataset in seconds.
pub fn vgg_nano<R: Rng + ?Sized>(rng: &mut R) -> Network {
    // Noise layers after every MAC layer implement noise-aware training
    // (paper ref [13]): the injected σ ≈ the relative readout noise of
    // the CIM rows, so the trained weights tolerate the hardware.
    const NAT_SIGMA: f32 = 0.12;
    Network::new(vec![
        Layer::Conv2d(Conv2d::new(3, 6, rng)),
        Layer::Noise(NAT_SIGMA),
        Layer::Relu,
        Layer::Dropout(0.05),
        Layer::Conv2d(Conv2d::new(6, 6, rng)),
        Layer::Noise(NAT_SIGMA),
        Layer::Relu,
        Layer::MaxPool(MaxPool2d),
        Layer::Conv2d(Conv2d::new(6, 12, rng)),
        Layer::Noise(NAT_SIGMA),
        Layer::Relu,
        Layer::Dropout(0.05),
        Layer::Conv2d(Conv2d::new(12, 12, rng)),
        Layer::Noise(NAT_SIGMA),
        Layer::Relu,
        Layer::MaxPool(MaxPool2d),
        Layer::Conv2d(Conv2d::new(12, 24, rng)),
        Layer::Noise(NAT_SIGMA),
        Layer::Relu,
        Layer::Dropout(0.05),
        Layer::Conv2d(Conv2d::new(24, 24, rng)),
        Layer::Noise(NAT_SIGMA),
        Layer::Relu,
        Layer::Dropout(0.05),
        Layer::Conv2d(Conv2d::new(24, 24, rng)),
        Layer::Noise(NAT_SIGMA),
        Layer::Relu,
        Layer::MaxPool(MaxPool2d),
        Layer::Flatten,
        Layer::Linear(Linear::new(4 * 4 * 24, 64, rng)),
        Layer::Noise(NAT_SIGMA),
        Layer::Relu,
        Layer::Dropout(0.1),
        Layer::Linear(Linear::new(64, 64, rng)),
        Layer::Noise(NAT_SIGMA),
        Layer::Relu,
        Layer::Dropout(0.1),
        Layer::Linear(Linear::new(64, 10, rng)),
    ])
}

/// Produces the Table I rows from a live network (convolutions, pools,
/// and linears; activations/dropout folded into the annotation column,
/// exactly like the paper's table).
pub fn describe(network: &Network, input_side: usize) -> Vec<LayerDescription> {
    let mut rows = Vec::new();
    let mut side = input_side;
    let mut channels = 3usize;
    let mut conv_idx = 0usize;
    let mut pool_idx = 0usize;
    let mut fc_idx = 0usize;
    let layers = network.layers();
    let mut i = 0;
    while i < layers.len() {
        match &layers[i] {
            Layer::Conv2d(conv) => {
                conv_idx += 1;
                let (in_c, out_c) = conv.channels();
                let annotation = annotation_after(layers, i);
                rows.push(LayerDescription {
                    layer: format!("{out_c} 3x3 Conv{conv_idx}"),
                    input_map: format!("{side}x{side}x{in_c}"),
                    output_map: format!("{side}x{side}x{out_c}"),
                    non_linearity: annotation,
                });
                channels = out_c;
            }
            Layer::MaxPool(_) => {
                pool_idx += 1;
                rows.push(LayerDescription {
                    layer: format!("[2, 2] MaxPool{pool_idx}"),
                    input_map: format!("{side}x{side}x{channels}"),
                    output_map: format!("{}x{}x{channels}", side / 2, side / 2),
                    non_linearity: "-".into(),
                });
                side /= 2;
            }
            Layer::Linear(lin) => {
                fc_idx += 1;
                let (in_d, out_d) = lin.dims();
                rows.push(LayerDescription {
                    layer: format!("{in_d}x{out_d} FC{fc_idx}"),
                    input_map: format!("1x1x{in_d}"),
                    output_map: format!("1x1x{out_d}"),
                    non_linearity: annotation_after(layers, i),
                });
            }
            _ => {}
        }
        i += 1;
    }
    rows
}

/// The ReLU/dropout annotation following a parameterized layer.
fn annotation_after(layers: &[Layer], idx: usize) -> String {
    let mut parts = Vec::new();
    for layer in layers.iter().skip(idx + 1) {
        match layer {
            Layer::Relu => parts.push("ReLU".to_string()),
            Layer::Dropout(p) => parts.push(format!("dropout({p})")),
            Layer::Conv2d(_) | Layer::Linear(_) | Layer::MaxPool(_) => break,
            Layer::Flatten | Layer::Noise(_) => {}
        }
    }
    if parts.is_empty() {
        "-".into()
    } else {
        parts.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vgg_paper_matches_table_one_structure() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = vgg_paper(&mut rng);
        let rows = describe(&net, 32);
        // 7 convs + 3 pools + 3 FCs = 13 rows, exactly Table I.
        assert_eq!(rows.len(), 13);
        assert_eq!(rows[0].layer, "64 3x3 Conv1");
        assert_eq!(rows[0].input_map, "32x32x3");
        assert_eq!(rows[0].output_map, "32x32x64");
        assert!(rows[0].non_linearity.contains("dropout(0.3)"));
        assert_eq!(rows[2].layer, "[2, 2] MaxPool1");
        assert_eq!(rows[2].output_map, "16x16x64");
        let fc1 = rows.iter().find(|r| r.layer.contains("FC1")).unwrap();
        assert_eq!(fc1.layer, "4096x4096 FC1");
        let fc3 = rows.iter().find(|r| r.layer.contains("FC3")).unwrap();
        assert_eq!(fc3.layer, "4096x10 FC3");
        assert_eq!(fc3.non_linearity, "-");
    }

    #[test]
    fn vgg_nano_forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = vgg_nano(&mut rng);
        let x = Tensor::zeros(&[3, 32, 32]);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[10]);
    }

    #[test]
    fn vgg_paper_parameter_count_is_vgg_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = vgg_paper(&mut rng);
        let p = net.parameter_count();
        // Conv ≈ 1.15 M, FC ≈ 33.6 M: well above 30 M in total.
        assert!(p > 30_000_000, "parameter count {p}");
    }

    #[test]
    fn vgg_nano_is_small_enough_to_train() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = vgg_nano(&mut rng);
        let p = net.parameter_count();
        assert!(p < 80_000, "parameter count {p}");
    }
}
