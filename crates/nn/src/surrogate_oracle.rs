//! A [`MacOracle`] answered by the calibrated surrogate store.
//!
//! [`crate::cim_exec::CimNetwork`] issues millions of row readouts per
//! accuracy sweep; routing each through a live analytic solve is what
//! the surrogate exists to avoid. [`SurrogateOracle`] pins the oracle's
//! operating point (all-ones programmed weights — the level-transfer
//! convention every readout oracle in this crate uses — at one fixed
//! temperature), eagerly calibrates that single key at construction,
//! and then answers every `read` from the curve: a handful of float
//! ops, no netlists, no Newton iterations.
//!
//! Unlike [`ferrocim_cim::transfer::TransferModel`] — which samples a
//! measured confusion matrix and is therefore stochastic — the
//! surrogate oracle returns the *nominal* quantized readout and ignores
//! its RNG argument. It models the deterministic temperature-dependent
//! transfer of a healthy (or explicitly faulted) row, with the
//! surrogate's certified error envelope bounding how far its analog
//! answer can sit from a live solve.

use crate::cim_exec::MacOracle;
use ferrocim_cim::cells::CellDesign;
use ferrocim_cim::mac_operands;
use ferrocim_surrogate::{MacSurrogate, SurrogateError};
use ferrocim_units::Celsius;
use rand::rngs::StdRng;

/// A deterministic readout oracle backed by one calibrated curve.
#[derive(Debug)]
pub struct SurrogateOracle<C> {
    surrogate: MacSurrogate<C>,
    /// All-ones programmed weights (the oracle's single key).
    weights: Vec<bool>,
    /// Input pattern for every true count `0..=n`, precomputed.
    patterns: Vec<Vec<bool>>,
    temp: Celsius,
}

impl<C: CellDesign> SurrogateOracle<C> {
    /// Builds the oracle and eagerly calibrates its key, so `read` is
    /// infallible afterwards.
    ///
    /// # Errors
    ///
    /// [`SurrogateError::OutOfDomain`] when `temp` lies outside the
    /// surrogate's calibrated grid, plus any live-calibration failure.
    pub fn new(surrogate: MacSurrogate<C>, temp: Celsius) -> Result<Self, SurrogateError> {
        let (lo, hi) = surrogate.domain_c();
        if !(temp.value() >= lo && temp.value() <= hi) {
            return Err(SurrogateError::OutOfDomain {
                temp_c: temp.value(),
                lo_c: lo,
                hi_c: hi,
            });
        }
        let n = surrogate.cells_per_row();
        let (weights, _) = mac_operands(n, 0);
        surrogate.curve_for(&weights)?;
        let patterns = (0..=n).map(|k| mac_operands(n, k).1).collect();
        Ok(SurrogateOracle {
            surrogate,
            weights,
            patterns,
            temp,
        })
    }

    /// The wrapped surrogate (counters, store, array).
    pub fn surrogate(&self) -> &MacSurrogate<C> {
        &self.surrogate
    }

    /// The fixed operating temperature.
    pub fn temp(&self) -> Celsius {
        self.temp
    }
}

impl<C: CellDesign + Sync> MacOracle for SurrogateOracle<C> {
    fn read(&self, true_count: usize, _rng: &mut StdRng) -> usize {
        let k = true_count.min(self.patterns.len() - 1);
        // The key was calibrated and the temperature domain-checked at
        // construction, so evaluation cannot fail; the ideal readout is
        // a defensive dead branch, not a policy.
        match self
            .surrogate
            .evaluate(&self.weights, &self.patterns[k], self.temp)
        {
            Ok(answer) => answer.readout,
            Err(_) => k,
        }
    }

    fn cells_per_row(&self) -> usize {
        self.patterns.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cim_exec::{CimMapping, CimNetwork, IdealMac};
    use crate::layers::{Layer, Linear};
    use crate::network::Network;
    use crate::tensor::Tensor;
    use ferrocim_cim::cells::TwoTransistorOneFefet;
    use ferrocim_cim::transfer::Adc;
    use ferrocim_cim::{ArrayConfig, CimArray, MacPath, MacRequest};
    use ferrocim_units::Second;
    use rand::SeedableRng;

    fn surrogate() -> MacSurrogate<TwoTransistorOneFefet> {
        let config = ArrayConfig {
            cells_per_row: 8,
            dt: Second(100e-12),
            ..ArrayConfig::paper_default()
        };
        let array =
            CimArray::new(TwoTransistorOneFefet::paper_default(), config).expect("valid config");
        MacSurrogate::new(array, &[Celsius(0.0), Celsius(27.0), Celsius(85.0)]).expect("valid grid")
    }

    #[test]
    fn oracle_matches_adc_quantized_live_solves_at_a_grid_temperature() {
        let temp = Celsius(27.0);
        let oracle = SurrogateOracle::new(surrogate(), temp).expect("in-domain");
        let adc = Adc::calibrate(oracle.surrogate().array(), temp).expect("calibrates");
        let mut rng = StdRng::seed_from_u64(0);
        for k in 0..=8 {
            let (weights, inputs) = mac_operands(8, k);
            let live = oracle
                .surrogate()
                .array()
                .run(
                    &MacRequest::new(&inputs)
                        .weights(&weights)
                        .at(temp)
                        .path(MacPath::Analytic),
                )
                .expect("live solve");
            assert_eq!(
                oracle.read(k, &mut rng),
                adc.quantize(live.v_acc),
                "true count {k}"
            );
        }
        // Counts above the row width clamp instead of panicking.
        assert_eq!(oracle.read(99, &mut rng), oracle.read(8, &mut rng));
    }

    #[test]
    fn oracle_rejects_out_of_domain_temperatures() {
        assert!(matches!(
            SurrogateOracle::new(surrogate(), Celsius(120.0)),
            Err(SurrogateError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn network_inference_through_the_oracle_matches_ideal_at_room() {
        let mut rng = StdRng::seed_from_u64(3);
        let lin = Linear::new(16, 4, &mut rng);
        let net = Network::new(vec![Layer::Linear(lin)]);
        let cim = CimNetwork::map(&net, CimMapping::default());
        let x = Tensor::from_vec(&[16], vec![0.5; 16]);
        let oracle = SurrogateOracle::new(surrogate(), Celsius(27.0)).expect("in-domain");
        let via_surrogate = cim.forward(&x, &oracle, 7);
        let ideal = cim.forward(&x, &IdealMac(8), 7);
        // At room temperature the paper-default design reads every
        // level correctly, so the surrogate-backed inference must equal
        // the ideal readout path exactly.
        assert_eq!(via_surrogate.data(), ideal.data());
        // The whole forward pass costs exactly one calibration.
        assert_eq!(oracle.surrogate().counts().misses, 1);
        assert!(oracle.surrogate().counts().hits > 0);
    }
}
