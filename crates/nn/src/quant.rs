//! Fixed-point quantization for CIM-mapped execution.
//!
//! Weights are quantized symmetrically to signed `bits`-bit integers
//! (sign handled by splitting positive/negative bit planes onto separate
//! CIM rows); activations are quantized unsigned (they are ReLU outputs
//! or normalized pixels, hence non-negative).

use serde::{Deserialize, Serialize};

/// A symmetric signed quantization of a weight vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedWeights {
    /// Quantized values in `[-(2^(bits-1)-1), 2^(bits-1)-1]`.
    pub values: Vec<i8>,
    /// Dequantization scale: `real ≈ value · scale`.
    pub scale: f32,
    /// Bit width (including sign).
    pub bits: u8,
}

/// An unsigned affine quantization of an activation vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedActivations {
    /// Quantized values in `[0, 2^bits - 1]`.
    pub values: Vec<u8>,
    /// Dequantization scale: `real ≈ value · scale`.
    pub scale: f32,
    /// Bit width.
    pub bits: u8,
}

/// Quantizes weights symmetrically.
///
/// # Panics
///
/// Panics unless `1 < bits <= 8`.
pub fn quantize_weights(data: &[f32], bits: u8) -> QuantizedWeights {
    assert!((2..=8).contains(&bits), "weight bits must be in 2..=8");
    let qmax = ((1i32 << (bits - 1)) - 1) as f32;
    let max_abs = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let scale = if max_abs == 0.0 { 1.0 } else { max_abs / qmax };
    let values = data
        .iter()
        .map(|&v| (v / scale).round().clamp(-qmax, qmax) as i8)
        .collect();
    QuantizedWeights {
        values,
        scale,
        bits,
    }
}

/// Quantizes non-negative activations.
///
/// Negative inputs are clamped to zero (activations are ReLU outputs or
/// normalized pixels, so this is lossless in practice).
///
/// # Panics
///
/// Panics unless `1 <= bits <= 8`.
pub fn quantize_activations(data: &[f32], bits: u8) -> QuantizedActivations {
    assert!((1..=8).contains(&bits), "activation bits must be in 1..=8");
    let qmax = ((1u32 << bits) - 1) as f32;
    let max = data.iter().fold(0.0f32, |m, &v| m.max(v));
    let scale = if max <= 0.0 { 1.0 } else { max / qmax };
    let values = data
        .iter()
        .map(|&v| (v.max(0.0) / scale).round().min(qmax) as u8)
        .collect();
    QuantizedActivations {
        values,
        scale,
        bits,
    }
}

impl QuantizedWeights {
    /// Dequantizes back to floats.
    pub fn dequantize(&self) -> Vec<f32> {
        self.values.iter().map(|&q| q as f32 * self.scale).collect()
    }

    /// Number of magnitude bit planes (excluding the sign).
    pub fn magnitude_bits(&self) -> u8 {
        self.bits - 1
    }
}

impl QuantizedActivations {
    /// Dequantizes back to floats.
    pub fn dequantize(&self) -> Vec<f32> {
        self.values.iter().map(|&q| q as f32 * self.scale).collect()
    }
}

/// The exact integer dot product of quantized operands — the ground
/// truth a CIM execution is compared against.
pub fn integer_dot(w: &QuantizedWeights, a: &QuantizedActivations) -> i64 {
    assert_eq!(w.values.len(), a.values.len(), "operand length mismatch");
    w.values
        .iter()
        .zip(&a.values)
        .map(|(&wv, &av)| wv as i64 * av as i64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_round_trip_error_is_bounded_by_half_lsb() {
        let data = vec![0.9, -0.45, 0.1, -0.001, 0.0, 0.33];
        let q = quantize_weights(&data, 4);
        let deq = q.dequantize();
        for (orig, back) in data.iter().zip(&deq) {
            assert!(
                (orig - back).abs() <= q.scale * 0.5 + 1e-7,
                "{orig} vs {back}"
            );
        }
        assert_eq!(q.magnitude_bits(), 3);
    }

    #[test]
    fn weights_use_full_signed_range() {
        let q = quantize_weights(&[1.0, -1.0, 0.5], 4);
        assert_eq!(q.values[0], 7);
        assert_eq!(q.values[1], -7);
        // 0.5/(1/7) = 3.5 exactly, but the f32 scale is slightly above
        // 1/7, so the quotient lands just under 3.5 and rounds to 3.
        assert_eq!(q.values[2], 3);
    }

    #[test]
    fn activations_are_unsigned_and_clamped() {
        let q = quantize_activations(&[2.0, 1.0, 0.0, -3.0], 4);
        // 1.0 / (2/15) = 7.5 exactly; the f32 scale is slightly above
        // 2/15, so the quotient rounds down to 7.
        assert_eq!(q.values, vec![15, 7, 0, 0]);
        let deq = q.dequantize();
        assert!((deq[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_vectors_do_not_divide_by_zero() {
        let qw = quantize_weights(&[0.0; 4], 4);
        assert!(qw.scale.is_finite());
        assert!(qw.values.iter().all(|&v| v == 0));
        let qa = quantize_activations(&[0.0; 4], 4);
        assert!(qa.scale.is_finite());
    }

    #[test]
    fn integer_dot_matches_float_dot_approximately() {
        let w = vec![0.5, -0.25, 1.0, 0.0, -0.75];
        let a = vec![1.0, 2.0, 0.5, 3.0, 0.25];
        let qw = quantize_weights(&w, 6);
        let qa = quantize_activations(&a, 6);
        let float_dot: f32 = w.iter().zip(&a).map(|(x, y)| x * y).sum();
        let int_dot = integer_dot(&qw, &qa) as f32 * qw.scale * qa.scale;
        assert!(
            (float_dot - int_dot).abs() < 0.1,
            "float {float_dot} vs quantized {int_dot}"
        );
    }

    #[test]
    #[should_panic(expected = "weight bits")]
    fn rejects_one_bit_weights() {
        let _ = quantize_weights(&[1.0], 1);
    }
}
