//! A minimal CNN stack with CIM-array-backed execution, for the paper's
//! Sec. IV-B evaluation: VGG on CIFAR-10-class data, with every inner
//! product routed through the simulated 2T-1FeFET row and its measured
//! temperature/variation error statistics.
//!
//! * [`tensor::Tensor`] — dense `f32` tensors (CHW images).
//! * [`layers`] / [`network`] — Conv/Pool/Linear/ReLU/Dropout layers with
//!   full backprop and a data-parallel SGD trainer.
//! * [`vgg`] — the paper's Table I VGG and the trainable "VGG-nano".
//! * [`data`] — the synthetic CIFAR-10 substitute (see DESIGN.md).
//! * [`quant`] — fixed-point weight/activation quantization.
//! * [`cim_exec`] — bit-serial mapping of every MAC onto 8-cell CIM rows
//!   through a [`cim_exec::MacOracle`] (ideal, or the measured
//!   `TransferModel` of `ferrocim-cim`).
//!
//! # Example: quantized inference through an ideal CIM row
//!
//! ```
//! use ferrocim_nn::cim_exec::{CimMapping, CimNetwork, IdealMac};
//! use ferrocim_nn::data::Generator;
//! use ferrocim_nn::vgg::vgg_nano;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = vgg_nano(&mut rng);
//! let cim = CimNetwork::map(&net, CimMapping::default());
//! let ds = Generator::new(1).generate(1);
//! let class = cim.predict(&ds.images[0], &IdealMac(8), 42);
//! assert!(class < 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cim_exec;
pub mod data;
pub mod io;
pub mod layers;
pub mod metrics;
pub mod network;
pub mod quant;
pub mod surrogate_oracle;
pub mod tensor;
pub mod vgg;

pub use network::{
    train, try_train, try_train_recorded, EpochStats, Network, Optimizer, TrainConfig, TrainError,
};
pub use tensor::Tensor;

/// Re-exported telemetry handle: [`try_train_recorded`] takes one, and
/// [`cim_exec::CimNetwork::with_recorder`] /
/// [`cim_exec::FaultTolerant::with_recorder`] accept one (see
/// [`ferrocim_telemetry`] for recorders, aggregation, and trace sinks).
pub use ferrocim_telemetry::Telemetry;
