//! Model checkpointing: JSON save/load for trained networks.
//!
//! Every layer derives Serde, so a checkpoint is a faithful round trip —
//! including the quantization-relevant weight values bit-for-bit (JSON
//! f32 serialization in `serde_json` is exact for finite floats).

use crate::network::Network;
use std::io;
use std::path::Path;

/// Saves a network to a JSON checkpoint.
///
/// # Errors
///
/// Returns file-system or serialization errors.
pub fn save(network: &Network, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let writer = io::BufWriter::new(file);
    serde_json::to_writer(writer, network)?;
    Ok(())
}

/// Loads a network from a JSON checkpoint.
///
/// # Errors
///
/// Returns file-system or deserialization errors.
pub fn load(path: impl AsRef<Path>) -> io::Result<Network> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    Ok(serde_json::from_reader(reader)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Generator;
    use crate::vgg::vgg_nano;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn checkpoint_round_trip_preserves_predictions() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = vgg_nano(&mut rng);
        let dir = std::env::temp_dir().join("ferrocim-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nano.json");
        save(&net, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(net, restored);
        let ds = Generator::new(4).generate(5);
        for img in &ds.images {
            assert_eq!(net.predict(img), restored.predict(img));
            // Logits are bit-exact.
            assert_eq!(net.forward(img).data(), restored.forward(img).data());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn loading_garbage_is_an_error() {
        let dir = std::env::temp_dir().join("ferrocim-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"{not json").unwrap();
        assert!(load(&path).is_err());
        assert!(load(dir.join("missing.json")).is_err());
    }
}
