//! A minimal dense tensor for CNN inference and training.

use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` tensor.
///
/// Shapes follow the CHW convention for images (`[channels, height,
/// width]`) and `[out, in]` for linear weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics on an empty shape or zero-sized dimension.
    pub fn zeros(shape: &[usize]) -> Tensor {
        assert!(!shape.is_empty(), "tensor shape cannot be empty");
        assert!(
            shape.iter().all(|&d| d > 0),
            "zero-sized dimension in {shape:?}"
        );
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Wraps existing data in a tensor.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Tensor {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length does not match shape {shape:?}"
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of equal volume.
    ///
    /// # Panics
    ///
    /// Panics if the volumes differ.
    pub fn reshape(mut self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "cannot reshape {:?} to {shape:?}",
            self.shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Index into a 3-D (CHW) tensor.
    #[inline]
    pub fn at3(&self, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 3);
        let (hh, ww) = (self.shape[1], self.shape[2]);
        self.data[(c * hh + h) * ww + w]
    }

    /// Mutable index into a 3-D (CHW) tensor.
    #[inline]
    pub fn at3_mut(&mut self, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 3);
        let (hh, ww) = (self.shape[1], self.shape[2]);
        &mut self.data[(c * hh + h) * ww + w]
    }

    /// The index of the largest element (ties broken by the last
    /// occurrence, following `Iterator::max_by`).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales every element in place.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[3, 4, 4]);
        assert_eq!(t.shape(), &[3, 4, 4]);
        assert_eq!(t.len(), 48);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_volume() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0; 3]);
    }

    #[test]
    fn chw_indexing_is_row_major() {
        let mut t = Tensor::zeros(&[2, 2, 3]);
        *t.at3_mut(1, 1, 2) = 7.0;
        assert_eq!(t.at3(1, 1, 2), 7.0);
        assert_eq!(t.data()[2 * 3 + 3 + 2], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = t.reshape(&[6]);
        assert_eq!(r.shape(), &[6]);
        assert_eq!(r.data()[4], 5.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_checks_volume() {
        let _ = Tensor::zeros(&[2, 3]).reshape(&[5]);
    }

    #[test]
    fn argmax_and_arithmetic() {
        let mut a = Tensor::from_vec(&[4], vec![0.1, 0.7, 0.3, 0.7]);
        assert_eq!(a.argmax(), 3); // last of the tie (Iterator::max_by)
        let b = Tensor::from_vec(&[4], vec![1.0, 0.0, 1.0, 0.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[1.1, 0.7, 1.3, 0.7]);
        a.scale(2.0);
        assert_eq!(a.data()[2], 2.6);
    }
}
