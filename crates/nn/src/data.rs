//! Synthetic CIFAR-10 substitute.
//!
//! The paper evaluates on CIFAR-10, which is not available in this
//! environment (see DESIGN.md, substitutions). This module generates a
//! class-structured 10-way, 32×32×3 dataset with the same tensor
//! geometry: each class is a combination of a colour palette and a
//! spatial pattern (stripes, discs, checkers, gradients, crosses), with
//! per-image position/phase jitter, brightness variation, and additive
//! pixel noise. Colours and patterns are shared across classes so the
//! classifier must learn *combinations*, not single features — hard
//! enough that clean accuracy lands near the high-80s/low-90s like
//! CIFAR-10 on VGG-class networks, which is the regime where the CIM
//! noise study is meaningful.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of classes (matching CIFAR-10).
pub const CLASSES: usize = 10;

/// Image side length (matching CIFAR-10).
pub const SIDE: usize = 32;

/// A labelled synthetic dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Image tensors of shape `[3, 32, 32]`, values in `[0, 1]`.
    pub images: Vec<Tensor>,
    /// Class labels in `0..CLASSES`.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// `true` if the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

/// The ten base colours (R, G, B in `[0,1]`), two per pattern family so
/// that colour alone never identifies the class.
const PALETTE: [[f32; 3]; 10] = [
    [0.9, 0.2, 0.2],
    [0.2, 0.5, 0.9],
    [0.2, 0.8, 0.3],
    [0.9, 0.7, 0.1],
    [0.7, 0.3, 0.8],
    [0.9, 0.5, 0.2],
    [0.3, 0.8, 0.8],
    [0.8, 0.3, 0.5],
    [0.5, 0.6, 0.3],
    [0.4, 0.4, 0.9],
];

/// Deterministic synthetic data generator.
#[derive(Debug, Clone, Copy)]
pub struct Generator {
    /// Base RNG seed; the same seed always produces the same dataset.
    pub seed: u64,
    /// Additive Gaussian pixel-noise standard deviation.
    pub noise: f32,
}

impl Default for Generator {
    fn default() -> Self {
        Generator {
            seed: 0xC1FA,
            noise: 0.28,
        }
    }
}

impl Generator {
    /// Creates a generator with the default noise level.
    pub fn new(seed: u64) -> Generator {
        Generator {
            seed,
            ..Generator::default()
        }
    }

    /// Generates `n` examples with balanced class labels.
    pub fn generate(&self, n: usize) -> Dataset {
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % CLASSES;
            let mut rng =
                StdRng::seed_from_u64(self.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
            images.push(self.render(class, &mut rng));
            labels.push(class);
        }
        Dataset { images, labels }
    }

    /// Renders one image of the given class.
    fn render(&self, class: usize, rng: &mut StdRng) -> Tensor {
        // The class colour is blended with a random distractor colour,
        // and a random distractor pattern from another family is
        // overlaid, so neither colour nor shape alone is conclusive —
        // this keeps trained accuracy in CIFAR-10-like territory
        // (high 80s / low 90s) instead of saturating.
        let distractor_class = (class + rng.random_range(1..CLASSES)) % CLASSES;
        let color_mix: f32 = rng.random_range(0.0..0.45);
        let color: Vec<f32> = PALETTE[class]
            .iter()
            .zip(&PALETTE[distractor_class])
            .map(|(a, b)| a * (1.0 - color_mix) + b * color_mix)
            .collect();
        // Pattern family: 5 shapes, each used by two classes with
        // different colours; the second user gets an inverted contrast.
        let family = class % 5;
        let inverted = class >= 5;
        let distractor_family = distractor_class % 5;
        let distractor_weight: f32 = rng.random_range(0.15..0.45);
        let brightness: f32 = rng.random_range(0.7..1.1);
        let phase: f32 = rng.random_range(0.0..core::f32::consts::TAU);
        let cx: f32 = rng.random_range(10.0..22.0);
        let cy: f32 = rng.random_range(10.0..22.0);
        let dx2: f32 = rng.random_range(8.0..24.0);
        let dy2: f32 = rng.random_range(8.0..24.0);
        let scale: f32 = rng.random_range(0.8..1.25);
        let mut img = Tensor::zeros(&[3, SIDE, SIDE]);
        let eval_pattern = |family: usize, fx: f32, fy: f32, cx: f32, cy: f32| -> f32 {
            match family {
                // Diagonal stripes.
                0 => (((fx + fy) * 0.5 * scale + phase).sin() * 0.5 + 0.5).powi(2),
                // Disc.
                1 => {
                    let d = ((fx - cx).powi(2) + (fy - cy).powi(2)).sqrt();
                    if d < 9.0 * scale {
                        1.0
                    } else {
                        0.15
                    }
                }
                // Checkerboard.
                2 => {
                    let cell = (4.0 * scale).max(2.0);
                    if ((fx / cell) as i32 + (fy / cell) as i32) % 2 == 0 {
                        0.95
                    } else {
                        0.15
                    }
                }
                // Vertical gradient + horizontal stripe band.
                3 => {
                    let g = fy / SIDE as f32;
                    let band = if (fy - cy).abs() < 4.0 * scale {
                        0.9
                    } else {
                        0.0
                    };
                    (g * 0.6 + band).min(1.0)
                }
                // Cross.
                _ => {
                    if (fx - cx).abs() < 3.5 * scale || (fy - cy).abs() < 3.5 * scale {
                        1.0
                    } else {
                        0.12
                    }
                }
            }
        };
        for y in 0..SIDE {
            for x in 0..SIDE {
                let fx = x as f32;
                let fy = y as f32;
                let mut pattern = eval_pattern(family, fx, fy, cx, cy);
                if inverted {
                    pattern = 1.0 - pattern;
                }
                let overlay = eval_pattern(distractor_family, fx, fy, dx2, dy2);
                pattern = pattern * (1.0 - distractor_weight) + overlay * distractor_weight;
                for (ch, &base) in color.iter().enumerate() {
                    let noise: f32 = {
                        // Cheap Gaussian-ish noise: sum of three uniforms.
                        let s: f32 = (0..3).map(|_| rng.random_range(-1.0f32..1.0)).sum();
                        s / 3.0 * self.noise * 2.0
                    };
                    let v = (base * pattern * brightness + 0.08 + noise).clamp(0.0, 1.0);
                    *img.at3_mut(ch, y, x) = v;
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_ranges() {
        let ds = Generator::new(1).generate(20);
        assert_eq!(ds.len(), 20);
        for img in &ds.images {
            assert_eq!(img.shape(), &[3, SIDE, SIDE]);
            assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn labels_are_balanced() {
        let ds = Generator::new(2).generate(100);
        for class in 0..CLASSES {
            let count = ds.labels.iter().filter(|&&l| l == class).count();
            assert_eq!(count, 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Generator::new(7).generate(10);
        let b = Generator::new(7).generate(10);
        assert_eq!(a.images, b.images);
        let c = Generator::new(8).generate(10);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn same_class_images_differ_by_jitter() {
        let ds = Generator::new(3).generate(30);
        // Examples 0 and 10 are both class 0 but must not be identical.
        assert_eq!(ds.labels[0], ds.labels[10]);
        assert_ne!(ds.images[0], ds.images[10]);
    }

    #[test]
    fn classes_are_statistically_distinguishable() {
        // Mean image of class 0 (red diagonal stripes) must differ from
        // class 1 (blue disc) by a sizeable margin.
        let ds = Generator::new(4).generate(200);
        let mean_img = |class: usize| -> Vec<f32> {
            let mut acc = vec![0.0f32; 3 * SIDE * SIDE];
            let mut count = 0;
            for (img, &l) in ds.images.iter().zip(&ds.labels) {
                if l == class {
                    for (a, &v) in acc.iter_mut().zip(img.data()) {
                        *a += v;
                    }
                    count += 1;
                }
            }
            acc.iter_mut().for_each(|v| *v /= count as f32);
            acc
        };
        let m0 = mean_img(0);
        let m1 = mean_img(1);
        let dist: f32 = m0
            .iter()
            .zip(&m1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 1.0, "class means too close: {dist}");
    }
}
