//! Classification evaluation metrics: confusion matrices, per-class
//! accuracy, and top-k — the tools for dissecting *where* CIM noise
//! hurts a model rather than just how much.

use crate::network::Network;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A `classes × classes` confusion matrix: `counts[truth][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds an empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics for zero classes.
    pub fn new(classes: usize) -> ConfusionMatrix {
        assert!(classes > 0, "need at least one class");
        ConfusionMatrix {
            counts: vec![vec![0; classes]; classes],
        }
    }

    /// Records one `(truth, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        self.counts[truth][predicted] += 1;
    }

    /// Accumulates predictions of a network over a labelled set.
    pub fn evaluate(network: &Network, inputs: &[Tensor], labels: &[usize]) -> ConfusionMatrix {
        assert_eq!(inputs.len(), labels.len());
        let classes = labels.iter().copied().max().unwrap_or(0) + 1;
        let mut cm = ConfusionMatrix::new(classes.max(2));
        for (x, &y) in inputs.iter().zip(labels) {
            cm.record(y, network.predict(x));
        }
        cm
    }

    /// Accumulates predictions from an arbitrary classifier closure
    /// (e.g. a CIM-mapped network with an oracle baked in).
    pub fn evaluate_with<F: FnMut(&Tensor) -> usize>(
        inputs: &[Tensor],
        labels: &[usize],
        classes: usize,
        mut predict: F,
    ) -> ConfusionMatrix {
        assert_eq!(inputs.len(), labels.len());
        let mut cm = ConfusionMatrix::new(classes);
        for (x, &y) in inputs.iter().zip(labels) {
            cm.record(y, predict(x));
        }
        cm
    }

    /// The number of classes.
    pub fn classes(&self) -> usize {
        self.counts.len()
    }

    /// The raw counts, `[truth][predicted]`.
    pub fn counts(&self) -> &[Vec<usize>] {
        &self.counts
    }

    /// Total recorded observations.
    pub fn total(&self) -> usize {
        self.counts
            .iter()
            .map(|row| row.iter().sum::<usize>())
            .sum()
    }

    /// Overall accuracy (0 for an empty matrix).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.classes()).map(|c| self.counts[c][c]).sum();
        correct as f64 / total as f64
    }

    /// Recall (per-class accuracy) for one class, or `None` if the class
    /// never appears as truth.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row_total: usize = self.counts[class].iter().sum();
        if row_total == 0 {
            return None;
        }
        Some(self.counts[class][class] as f64 / row_total as f64)
    }

    /// Precision for one class, or `None` if it is never predicted.
    pub fn precision(&self, class: usize) -> Option<f64> {
        let col_total: usize = self.counts.iter().map(|row| row[class]).sum();
        if col_total == 0 {
            return None;
        }
        Some(self.counts[class][class] as f64 / col_total as f64)
    }

    /// The most-confused `(truth, predicted, count)` off-diagonal entry,
    /// or `None` if there are no errors.
    pub fn worst_confusion(&self) -> Option<(usize, usize, usize)> {
        let mut worst = None;
        for (t, row) in self.counts.iter().enumerate() {
            for (p, &c) in row.iter().enumerate() {
                if t != p && c > 0 && worst.map(|(_, _, wc)| c > wc).unwrap_or(true) {
                    worst = Some((t, p, c));
                }
            }
        }
        worst
    }
}

/// Top-k accuracy: the fraction of examples whose true label appears in
/// the k highest logits.
pub fn top_k_accuracy(network: &Network, inputs: &[Tensor], labels: &[usize], k: usize) -> f64 {
    assert_eq!(inputs.len(), labels.len());
    assert!(k > 0, "k must be positive");
    if inputs.is_empty() {
        return 0.0;
    }
    let hits = inputs
        .iter()
        .zip(labels)
        .filter(|(x, &y)| {
            let logits = network.forward(x);
            let mut indexed: Vec<(usize, f32)> =
                logits.data().iter().copied().enumerate().collect();
            indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
            indexed.iter().take(k).any(|&(i, _)| i == y)
        })
        .count();
    hits as f64 / inputs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Layer, Linear};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn matrix_from(entries: &[(usize, usize, usize)], classes: usize) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(classes);
        for &(t, p, n) in entries {
            for _ in 0..n {
                cm.record(t, p);
            }
        }
        cm
    }

    #[test]
    fn accuracy_and_per_class_metrics() {
        // Class 0: 8/10 correct; class 1: 5/10 correct, all errors → 0.
        let cm = matrix_from(&[(0, 0, 8), (0, 1, 2), (1, 1, 5), (1, 0, 5)], 2);
        assert_eq!(cm.total(), 20);
        assert!((cm.accuracy() - 0.65).abs() < 1e-12);
        assert!((cm.recall(0).unwrap() - 0.8).abs() < 1e-12);
        assert!((cm.recall(1).unwrap() - 0.5).abs() < 1e-12);
        assert!((cm.precision(0).unwrap() - 8.0 / 13.0).abs() < 1e-12);
        assert_eq!(cm.worst_confusion(), Some((1, 0, 5)));
    }

    #[test]
    fn empty_and_missing_classes() {
        let cm = ConfusionMatrix::new(3);
        assert_eq!(cm.accuracy(), 0.0);
        assert!(cm.recall(2).is_none());
        assert!(cm.precision(1).is_none());
        assert!(cm.worst_confusion().is_none());
    }

    #[test]
    fn evaluate_matches_network_accuracy() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::new(vec![Layer::Linear(Linear::new(4, 3, &mut rng))]);
        let inputs: Vec<Tensor> = (0..30)
            .map(|i| Tensor::from_vec(&[4], vec![i as f32 * 0.1, 0.3, -0.2, 0.5]))
            .collect();
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let cm = ConfusionMatrix::evaluate(&net, &inputs, &labels);
        assert!((cm.accuracy() - net.accuracy(&inputs, &labels)).abs() < 1e-12);
        assert_eq!(cm.total(), 30);
    }

    #[test]
    fn top_k_is_monotone_in_k() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Network::new(vec![Layer::Linear(Linear::new(4, 5, &mut rng))]);
        let inputs: Vec<Tensor> = (0..20)
            .map(|i| Tensor::from_vec(&[4], vec![(i as f32).sin(), 0.2, -0.4, 0.9]))
            .collect();
        let labels: Vec<usize> = (0..20).map(|i| i % 5).collect();
        let t1 = top_k_accuracy(&net, &inputs, &labels, 1);
        let t3 = top_k_accuracy(&net, &inputs, &labels, 3);
        let t5 = top_k_accuracy(&net, &inputs, &labels, 5);
        assert!(t1 <= t3 && t3 <= t5);
        assert!((t5 - 1.0).abs() < 1e-12, "k = classes must be perfect");
        assert!((t1 - net.accuracy(&inputs, &labels)).abs() < 1e-12);
    }
}
