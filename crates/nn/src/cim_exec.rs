//! CIM-mapped network execution with hardware error injection.
//!
//! Every inner product of the network is decomposed exactly the way the
//! paper's 8-cell rows execute it:
//!
//! 1. quantize weights (signed, bit-planes split by sign) and
//!    activations (unsigned),
//! 2. chunk the operand vectors into rows of
//!    [`CimMapping::cells_per_row`] elements,
//! 3. for every (weight-bit, activation-bit, sign) combination, form the
//!    binary product vector and let the **MAC oracle** read out the
//!    0..=8 count — the oracle is where circuit behaviour (temperature
//!    drift + process variation, via
//!    `ferrocim_cim::transfer::TransferModel`) enters,
//! 4. recombine with power-of-two shifts and the quantization scales.
//!
//! The [`MacOracle`] trait decouples this crate from the circuit layer:
//! [`IdealMac`] reads back the true count (pure quantization baseline),
//! while the blanket impl over `TransferModel` samples the measured
//! confusion matrix.

use crate::layers::{Layer, MaxPool2d};
use crate::network::Network;
use crate::quant::{quantize_activations, quantize_weights, QuantizedWeights};
use crate::tensor::Tensor;
use ferrocim_spice::{Budget, SpiceError};
use ferrocim_telemetry::{Event, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Typed failures of [`CimNetwork::try_accuracy`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// `inputs` and `labels` had different lengths.
    LengthMismatch {
        /// Number of input tensors.
        inputs: usize,
        /// Number of labels.
        labels: usize,
    },
    /// The resource budget ran out or the evaluation was cancelled
    /// (carries [`SpiceError::BudgetExceeded`] or
    /// [`SpiceError::Cancelled`]).
    Budget(SpiceError),
    /// An inference worker panicked (e.g. inside a hardware oracle).
    /// The panic is contained rather than unwinding through the sweep.
    WorkerPanicked {
        /// The panic payload, rendered to a string when possible.
        message: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::LengthMismatch { inputs, labels } => {
                write!(f, "inputs ({inputs}) and labels ({labels}) lengths differ")
            }
            ExecError::Budget(e) => write!(f, "accuracy sweep stopped: {e}"),
            ExecError::WorkerPanicked { message } => {
                write!(f, "inference worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Budget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpiceError> for ExecError {
    fn from(e: SpiceError) -> Self {
        ExecError::Budget(e)
    }
}

/// A hardware MAC readout: given the true number of conducting cells in
/// a row (`0..=cells_per_row`), return the digitized count.
pub trait MacOracle: Sync {
    /// Reads out one row MAC.
    fn read(&self, true_count: usize, rng: &mut StdRng) -> usize;

    /// Reads out a batch of row MACs into `out` (cleared first), one
    /// readout per entry of `true_counts`, in order.
    ///
    /// The default implementation loops [`MacOracle::read`]. Oracles
    /// backed by batched hardware simulation can override it for
    /// throughput, but an override must consume RNG draws in exactly
    /// the slice order the default does, so seeded network evaluations
    /// are independent of how reads are batched.
    fn read_batch(&self, true_counts: &[usize], out: &mut Vec<usize>, rng: &mut StdRng) {
        out.clear();
        out.extend(true_counts.iter().map(|&c| self.read(c, rng)));
    }

    /// The row width this oracle models.
    fn cells_per_row(&self) -> usize;
}

/// A perfect readout: always returns the true count. Running the
/// network through [`IdealMac`] isolates the pure quantization loss from
/// the circuit-induced loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdealMac(pub usize);

impl MacOracle for IdealMac {
    fn read(&self, true_count: usize, _rng: &mut StdRng) -> usize {
        true_count
    }

    fn cells_per_row(&self) -> usize {
        self.0
    }
}

impl MacOracle for ferrocim_cim::transfer::TransferModel {
    fn read(&self, true_count: usize, rng: &mut StdRng) -> usize {
        self.sample(true_count, rng)
    }

    fn cells_per_row(&self) -> usize {
        self.confusion().len() - 1
    }
}

/// Wraps any [`MacOracle`] so inference survives a panicking readout.
///
/// Each [`MacOracle::read`] that panics is caught, counted, and
/// substituted by the ideal readout (the true count, clamped to the row
/// width) — the skip-and-substitute failure policy at per-read
/// granularity. A long accuracy sweep over a flaky hardware model thus
/// completes, and [`FaultTolerant::fault_count`] reports how many reads
/// actually failed.
///
/// A read that panics may already have consumed RNG draws, so seeded
/// results downstream of a fault are reproducible only for the same
/// inner oracle (the substitution itself draws nothing).
#[derive(Debug, Default)]
pub struct FaultTolerant<O> {
    inner: O,
    faults: std::sync::atomic::AtomicUsize,
    telemetry: Telemetry,
}

impl<O> FaultTolerant<O> {
    /// Wraps an oracle.
    pub fn new(inner: O) -> Self {
        FaultTolerant {
            inner,
            faults: std::sync::atomic::AtomicUsize::new(0),
            telemetry: Telemetry::off(),
        }
    }

    /// Attaches a telemetry handle: every substituted read additionally
    /// emits [`Event::FaultSubstituted`] with `substitute: 1`, so an
    /// aggregator's `faults_substituted` count equals
    /// [`FaultTolerant::fault_count`].
    pub fn with_recorder(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Number of reads that panicked and were substituted so far.
    pub fn fault_count(&self) -> usize {
        self.faults.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Unwraps the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: MacOracle> MacOracle for FaultTolerant<O> {
    fn read(&self, true_count: usize, rng: &mut StdRng) -> usize {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.inner.read(true_count, rng)
        })) {
            Ok(v) => v,
            Err(_) => {
                self.faults
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.telemetry
                    .emit(|| Event::FaultSubstituted { substitute: 1 });
                true_count.min(self.inner.cells_per_row())
            }
        }
    }

    fn cells_per_row(&self) -> usize {
        self.inner.cells_per_row()
    }
}

/// Bit widths and row geometry of the CIM mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CimMapping {
    /// Signed weight bit width (sign + magnitude planes).
    pub weight_bits: u8,
    /// Unsigned activation bit width.
    pub activation_bits: u8,
    /// Cells per CIM row (must match the oracle).
    pub cells_per_row: usize,
}

impl Default for CimMapping {
    /// The evaluation default: 4-bit weights, 4-bit activations on the
    /// paper's 8-cell rows.
    fn default() -> Self {
        CimMapping {
            weight_bits: 4,
            activation_bits: 4,
            cells_per_row: 8,
        }
    }
}

/// Reusable buffers for the bit-serial decomposition, so the inner
/// loops of a convolution pay no per-dot-product allocation.
#[derive(Debug, Clone, Default)]
pub struct DotScratch {
    counts: Vec<usize>,
    terms: Vec<i64>,
    reads: Vec<usize>,
}

/// Executes one signed dot product through the CIM row decomposition.
///
/// Returns the *integer* accumulation (to be scaled by
/// `w.scale · a_scale`).
pub fn cim_dot<O: MacOracle>(
    w: &QuantizedWeights,
    a: &[u8],
    mapping: &CimMapping,
    oracle: &O,
    rng: &mut StdRng,
) -> i64 {
    cim_dot_in(w, a, mapping, oracle, rng, &mut DotScratch::default())
}

/// [`cim_dot`] with caller-owned scratch buffers.
///
/// All row reads of the dot product are gathered first — per operand
/// chunk, weight bit, activation bit: the positive then the negative
/// partial count — and issued as one [`MacOracle::read_batch`] call in
/// exactly that order, which keeps seeded results identical to reading
/// one at a time.
pub fn cim_dot_in<O: MacOracle>(
    w: &QuantizedWeights,
    a: &[u8],
    mapping: &CimMapping,
    oracle: &O,
    rng: &mut StdRng,
    scratch: &mut DotScratch,
) -> i64 {
    assert_eq!(w.values.len(), a.len(), "operand length mismatch");
    assert_eq!(
        oracle.cells_per_row(),
        mapping.cells_per_row,
        "oracle row width does not match the mapping"
    );
    let n = mapping.cells_per_row;
    scratch.counts.clear();
    scratch.terms.clear();
    for (wc, ac) in w.values.chunks(n).zip(a.chunks(n)) {
        for wb in 0..w.magnitude_bits() {
            for ab in 0..mapping.activation_bits {
                let mut pos = 0usize;
                let mut neg = 0usize;
                for (&wv, &av) in wc.iter().zip(ac) {
                    if (av >> ab) & 1 == 0 {
                        continue;
                    }
                    let mag = wv.unsigned_abs();
                    if (mag >> wb) & 1 == 1 {
                        if wv > 0 {
                            pos += 1;
                        } else {
                            neg += 1;
                        }
                    }
                }
                let shift = (wb + ab) as u32;
                if pos > 0 {
                    scratch.counts.push(pos);
                    scratch.terms.push(1i64 << shift);
                }
                if neg > 0 {
                    scratch.counts.push(neg);
                    scratch.terms.push(-(1i64 << shift));
                }
            }
        }
    }
    oracle.read_batch(&scratch.counts, &mut scratch.reads, rng);
    debug_assert_eq!(scratch.reads.len(), scratch.counts.len());
    scratch
        .terms
        .iter()
        .zip(&scratch.reads)
        .map(|(&term, &read)| term * read as i64)
        .sum()
}

/// Pre-quantized weights of one network layer (rows of the weight
/// matrix for linears; one filter per output channel for convolutions).
#[derive(Debug, Clone)]
enum MappedLayer {
    Conv {
        /// Per-output-channel quantized 27·k-element filters.
        filters: Vec<QuantizedWeights>,
        bias: Vec<f32>,
        in_channels: usize,
    },
    Linear {
        rows: Vec<QuantizedWeights>,
        bias: Vec<f32>,
    },
    /// Non-MAC layer executed digitally.
    Passthrough(Layer),
}

/// A network whose MAC layers have been quantized and mapped onto CIM
/// rows, ready to run against any [`MacOracle`].
#[derive(Debug, Clone)]
pub struct CimNetwork {
    layers: Vec<MappedLayer>,
    mapping: CimMapping,
    telemetry: Telemetry,
}

impl CimNetwork {
    /// Quantizes and maps a trained network.
    pub fn map(network: &Network, mapping: CimMapping) -> CimNetwork {
        let layers = network
            .layers()
            .iter()
            .map(|layer| match layer {
                Layer::Conv2d(conv) => {
                    let (in_c, out_c) = conv.channels();
                    let per_filter = in_c * 9;
                    let filters = (0..out_c)
                        .map(|o| {
                            quantize_weights(
                                &conv.weight.data()[o * per_filter..(o + 1) * per_filter],
                                mapping.weight_bits,
                            )
                        })
                        .collect();
                    MappedLayer::Conv {
                        filters,
                        bias: conv.bias.data().to_vec(),
                        in_channels: in_c,
                    }
                }
                Layer::Linear(lin) => {
                    let (in_d, out_d) = lin.dims();
                    let rows = (0..out_d)
                        .map(|o| {
                            quantize_weights(
                                &lin.weight.data()[o * in_d..(o + 1) * in_d],
                                mapping.weight_bits,
                            )
                        })
                        .collect();
                    MappedLayer::Linear {
                        rows,
                        bias: lin.bias.data().to_vec(),
                    }
                }
                other => MappedLayer::Passthrough(other.clone()),
            })
            .collect();
        CimNetwork {
            layers,
            mapping,
            telemetry: Telemetry::off(),
        }
    }

    /// Attaches a telemetry handle: every CIM-mapped layer execution in
    /// [`CimNetwork::forward`] is wrapped in a wall-clock span
    /// (`cim.conv2d`, `cim.linear`, `cim.passthrough`), so per-layer
    /// inference time shows up in span histograms.
    pub fn with_recorder(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The mapping geometry.
    pub fn mapping(&self) -> &CimMapping {
        &self.mapping
    }

    /// Runs inference with all inner products executed through the
    /// oracle. `seed` makes the stochastic readout reproducible.
    pub fn forward<O: MacOracle>(&self, x: &Tensor, oracle: &O, seed: u64) -> Tensor {
        // The per-image root: layer spans (and their MAC batches and
        // solves) nest under it, forming the network → layer → MAC
        // tree trace viewers reconstruct.
        let _forward_span = self.telemetry.span("nn.forward");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = x.clone();
        for layer in &self.layers {
            h = match layer {
                MappedLayer::Conv {
                    filters,
                    bias,
                    in_channels,
                } => {
                    let _timer = self.telemetry.span("cim.conv2d");
                    self.conv_forward(&h, filters, bias, *in_channels, oracle, &mut rng)
                }
                MappedLayer::Linear { rows, bias } => {
                    let _timer = self.telemetry.span("cim.linear");
                    self.linear_forward(&h, rows, bias, oracle, &mut rng)
                }
                MappedLayer::Passthrough(l) => {
                    let _timer = self.telemetry.span("cim.passthrough");
                    let (out, _) = l.forward(&h, crate::layers::Mode::Eval, &mut rng);
                    out
                }
            };
        }
        h
    }

    /// Predicted class through the oracle.
    pub fn predict<O: MacOracle>(&self, x: &Tensor, oracle: &O, seed: u64) -> usize {
        self.forward(x, oracle, seed).argmax()
    }

    /// Accuracy over a labelled set, parallelized across images.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or an inference worker panicked
    /// ([`CimNetwork::try_accuracy`] reports both as typed errors
    /// instead).
    pub fn accuracy<O: MacOracle>(
        &self,
        inputs: &[Tensor],
        labels: &[usize],
        oracle: &O,
        seed: u64,
    ) -> f64 {
        match self.try_accuracy(inputs, labels, oracle, seed, &Budget::unlimited()) {
            Ok(acc) => acc,
            Err(e @ ExecError::LengthMismatch { .. }) => {
                panic!("inputs/labels length mismatch: {e}")
            }
            Err(e) => panic!("accuracy sweep failed: {e}"),
        }
    }

    /// Fallible, resource-governed [`CimNetwork::accuracy`]: one step
    /// of `budget` is charged per image, the cancel token and deadline
    /// are polled between images, and a panicking oracle is contained
    /// as [`ExecError::WorkerPanicked`] instead of unwinding through
    /// the sweep.
    ///
    /// # Errors
    ///
    /// See [`ExecError`]. Budget exhaustion mid-sweep aborts with
    /// [`ExecError::Budget`]; images already evaluated are discarded.
    pub fn try_accuracy<O: MacOracle>(
        &self,
        inputs: &[Tensor],
        labels: &[usize],
        oracle: &O,
        seed: u64,
        budget: &Budget,
    ) -> Result<f64, ExecError> {
        if inputs.len() != labels.len() {
            return Err(ExecError::LengthMismatch {
                inputs: inputs.len(),
                labels: labels.len(),
            });
        }
        if inputs.is_empty() {
            return Ok(0.0);
        }
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(inputs.len());
        let chunk = inputs.len().div_ceil(threads);
        let sweep_span = self.telemetry.span("nn.accuracy");
        let sweep_id = sweep_span.id();
        let hits: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .chunks(chunk)
                .zip(labels.chunks(chunk))
                .enumerate()
                .map(|(t, (xs, ys))| {
                    scope.spawn(move || -> Result<usize, ExecError> {
                        // Root this worker's per-image forward spans
                        // under the sweep span across the thread hop.
                        let _worker_span =
                            self.telemetry.span_under("nn.accuracy_worker", sweep_id);
                        let mut hits = 0usize;
                        for (i, (x, &y)) in xs.iter().zip(ys).enumerate() {
                            budget.check()?;
                            budget.charge_steps(1)?;
                            let image_seed = seed ^ ((t * chunk + i) as u64) << 13;
                            let predicted =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    self.predict(x, oracle, image_seed)
                                }))
                                .map_err(|payload| {
                                    ExecError::WorkerPanicked {
                                        message: crate::network::panic_message(payload),
                                    }
                                })?;
                            if predicted == y {
                                hits += 1;
                            }
                        }
                        Ok(hits)
                    })
                })
                .collect();
            // Join every handle before surfacing the first failure, so
            // `scope` never sees an unjoined panicked thread.
            let joined: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| {
                        Err(ExecError::WorkerPanicked {
                            message: crate::network::panic_message(payload),
                        })
                    })
                })
                .collect();
            joined.into_iter().sum::<Result<usize, ExecError>>()
        })?;
        Ok(hits as f64 / inputs.len() as f64)
    }

    fn conv_forward<O: MacOracle>(
        &self,
        x: &Tensor,
        filters: &[QuantizedWeights],
        bias: &[f32],
        in_channels: usize,
        oracle: &O,
        rng: &mut StdRng,
    ) -> Tensor {
        let (h, w) = (x.shape()[1], x.shape()[2]);
        assert_eq!(x.shape()[0], in_channels, "conv input channel mismatch");
        // One MAC-batch span per layer invocation: all of this layer's
        // oracle reads happen inside it, so traces show the causal
        // chain network → layer → MAC batch.
        let _mac_span = self.telemetry.span("nn.mac_batch");
        let qa = quantize_activations(x.data(), self.mapping.activation_bits);
        let mut out = Tensor::zeros(&[filters.len(), h, w]);
        // Gather the quantized 3×3 patch per output pixel (im2col row).
        let mut patch = vec![0u8; in_channels * 9];
        let mut scratch = DotScratch::default();
        // One span per output row at Iterations detail only: per-pixel
        // MAC timing is diagnostic-grade and would multiply trace size.
        let fine_grained = self.telemetry.wants_iterations();
        for oy in 0..h {
            let _row_span = fine_grained.then(|| self.telemetry.span("nn.conv_row"));
            for ox in 0..w {
                patch.fill(0);
                for i in 0..in_channels {
                    for kh in 0..3usize {
                        let iy = oy + kh;
                        if iy < 1 || iy > h {
                            continue;
                        }
                        let iy = iy - 1;
                        for kw in 0..3usize {
                            let ix = ox + kw;
                            if ix < 1 || ix > w {
                                continue;
                            }
                            let ix = ix - 1;
                            patch[(i * 3 + kh) * 3 + kw] = qa.values[(i * h + iy) * w + ix];
                        }
                    }
                }
                for (o, filter) in filters.iter().enumerate() {
                    let acc = cim_dot_in(filter, &patch, &self.mapping, oracle, rng, &mut scratch);
                    *out.at3_mut(o, oy, ox) = acc as f32 * filter.scale * qa.scale + bias[o];
                }
            }
        }
        out
    }

    fn linear_forward<O: MacOracle>(
        &self,
        x: &Tensor,
        rows: &[QuantizedWeights],
        bias: &[f32],
        oracle: &O,
        rng: &mut StdRng,
    ) -> Tensor {
        let _mac_span = self.telemetry.span("nn.mac_batch");
        let qa = quantize_activations(x.data(), self.mapping.activation_bits);
        let mut out = Tensor::zeros(&[rows.len()]);
        let mut scratch = DotScratch::default();
        let fine_grained = self.telemetry.wants_iterations();
        for (o, row) in rows.iter().enumerate() {
            let _row_span = fine_grained.then(|| self.telemetry.span("nn.linear_row"));
            let acc = cim_dot_in(row, &qa.values, &self.mapping, oracle, rng, &mut scratch);
            out.data_mut()[o] = acc as f32 * row.scale * qa.scale + bias[o];
        }
        out
    }
}

/// Keeps pools usable in [`MappedLayer::Passthrough`] without exposing
/// layer internals.
#[allow(dead_code)]
fn _pool_type_check(_: MaxPool2d) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::quant::integer_dot;
    use rand::Rng;

    #[test]
    fn ideal_cim_dot_equals_integer_dot() {
        let mut rng = StdRng::seed_from_u64(0);
        let mapping = CimMapping::default();
        let oracle = IdealMac(8);
        for _ in 0..50 {
            let len = rng.random_range(1..40);
            let w: Vec<f32> = (0..len).map(|_| rng.random_range(-1.0..1.0)).collect();
            let a: Vec<f32> = (0..len).map(|_| rng.random_range(0.0..1.0)).collect();
            let qw = quantize_weights(&w, mapping.weight_bits);
            let qa = quantize_activations(&a, mapping.activation_bits);
            let exact = integer_dot(&qw, &qa);
            let cim = cim_dot(&qw, &qa.values, &mapping, &oracle, &mut rng);
            assert_eq!(cim, exact, "len {len}");
        }
    }

    #[test]
    fn ideal_network_matches_quantized_reference() {
        // A small linear network through IdealMac must match plain
        // quantized inference closely (identical integer math).
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(16, 4, &mut rng);
        let net = Network::new(vec![Layer::Linear(lin.clone()), Layer::Relu]);
        let cim = CimNetwork::map(&net, CimMapping::default());
        let x = Tensor::from_vec(
            &[16],
            (0..16).map(|i| (i as f32 * 0.31).sin().abs()).collect(),
        );
        let float_out = net.forward(&x);
        let cim_out = cim.forward(&x, &IdealMac(8), 7);
        for (f, c) in float_out.data().iter().zip(cim_out.data()) {
            assert!((f - c).abs() < 0.15, "float {f} vs cim {c}");
        }
    }

    /// A stochastic oracle whose reads each consume one RNG draw, so
    /// tests can detect any change in draw order.
    struct Noisy;
    impl MacOracle for Noisy {
        fn read(&self, true_count: usize, rng: &mut StdRng) -> usize {
            (true_count + rng.random_range(0..2)).min(8)
        }
        fn cells_per_row(&self) -> usize {
            8
        }
    }

    #[test]
    fn read_batch_consumes_rng_in_read_order() {
        let counts = [3usize, 5, 1, 0, 8, 2];
        let mut batch_rng = StdRng::seed_from_u64(9);
        let mut batched = Vec::new();
        Noisy.read_batch(&counts, &mut batched, &mut batch_rng);
        let mut serial_rng = StdRng::seed_from_u64(9);
        let serial: Vec<usize> = counts
            .iter()
            .map(|&c| Noisy.read(c, &mut serial_rng))
            .collect();
        assert_eq!(batched, serial);
        // Both paths must have consumed the same number of draws.
        assert_eq!(batch_rng.random::<u64>(), serial_rng.random::<u64>());
    }

    #[test]
    fn batched_dot_matches_draw_by_draw_reference() {
        // cim_dot gathers all reads into one read_batch call; a seeded
        // stochastic oracle must see the exact same draw sequence as
        // the historical read-one-at-a-time loop.
        let mut rng = StdRng::seed_from_u64(12);
        let mapping = CimMapping::default();
        for _ in 0..20 {
            let len = rng.random_range(1..40);
            let w: Vec<f32> = (0..len).map(|_| rng.random_range(-1.0..1.0)).collect();
            let a: Vec<f32> = (0..len).map(|_| rng.random_range(0.0..1.0)).collect();
            let qw = quantize_weights(&w, mapping.weight_bits);
            let qa = quantize_activations(&a, mapping.activation_bits);

            let mut batch_rng = StdRng::seed_from_u64(77);
            let batched = cim_dot(&qw, &qa.values, &mapping, &Noisy, &mut batch_rng);

            // Reference: the pre-batching formulation, reading each
            // partial count as soon as it is formed.
            let mut serial_rng = StdRng::seed_from_u64(77);
            let n = mapping.cells_per_row;
            let mut acc: i64 = 0;
            for (wc, ac) in qw.values.chunks(n).zip(qa.values.chunks(n)) {
                for wb in 0..qw.magnitude_bits() {
                    for ab in 0..mapping.activation_bits {
                        let mut pos = 0usize;
                        let mut neg = 0usize;
                        for (&wv, &av) in wc.iter().zip(ac) {
                            if (av >> ab) & 1 == 0 {
                                continue;
                            }
                            if (wv.unsigned_abs() >> wb) & 1 == 1 {
                                if wv > 0 {
                                    pos += 1;
                                } else {
                                    neg += 1;
                                }
                            }
                        }
                        let shift = (wb + ab) as u32;
                        if pos > 0 {
                            acc += (Noisy.read(pos, &mut serial_rng) as i64) << shift;
                        }
                        if neg > 0 {
                            acc -= (Noisy.read(neg, &mut serial_rng) as i64) << shift;
                        }
                    }
                }
            }
            assert_eq!(batched, acc, "len {len}");
        }
    }

    #[test]
    fn scratch_reuse_does_not_change_results() {
        let mut rng = StdRng::seed_from_u64(21);
        let mapping = CimMapping::default();
        let mut scratch = DotScratch::default();
        for _ in 0..10 {
            let len = rng.random_range(1..30);
            let w: Vec<f32> = (0..len).map(|_| rng.random_range(-1.0..1.0)).collect();
            let a: Vec<f32> = (0..len).map(|_| rng.random_range(0.0..1.0)).collect();
            let qw = quantize_weights(&w, mapping.weight_bits);
            let qa = quantize_activations(&a, mapping.activation_bits);
            let mut r1 = StdRng::seed_from_u64(5);
            let mut r2 = StdRng::seed_from_u64(5);
            let fresh = cim_dot(&qw, &qa.values, &mapping, &Noisy, &mut r1);
            let reused = cim_dot_in(&qw, &qa.values, &mapping, &Noisy, &mut r2, &mut scratch);
            assert_eq!(fresh, reused);
        }
    }

    /// An oracle that always reads one count high (when possible) —
    /// lets tests verify errors actually propagate.
    struct AlwaysHigh;
    impl MacOracle for AlwaysHigh {
        fn read(&self, true_count: usize, _rng: &mut StdRng) -> usize {
            (true_count + 1).min(8)
        }
        fn cells_per_row(&self) -> usize {
            8
        }
    }

    #[test]
    fn faulty_oracle_changes_outputs() {
        let mut rng = StdRng::seed_from_u64(2);
        let lin = Linear::new(16, 4, &mut rng);
        let net = Network::new(vec![Layer::Linear(lin)]);
        let cim = CimNetwork::map(&net, CimMapping::default());
        let x = Tensor::from_vec(&[16], vec![0.5; 16]);
        let good = cim.forward(&x, &IdealMac(8), 3);
        let bad = cim.forward(&x, &AlwaysHigh, 3);
        assert_ne!(good.data(), bad.data());
    }

    #[test]
    fn accuracy_is_deterministic_for_a_seed() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = Network::new(vec![Layer::Linear(Linear::new(8, 2, &mut rng))]);
        let cim = CimNetwork::map(&net, CimMapping::default());
        let inputs: Vec<Tensor> = (0..10)
            .map(|i| Tensor::from_vec(&[8], vec![i as f32 * 0.1; 8]))
            .collect();
        let labels: Vec<usize> = (0..10).map(|i| i % 2).collect();
        let a = cim.accuracy(&inputs, &labels, &IdealMac(8), 5);
        let b = cim.accuracy(&inputs, &labels, &IdealMac(8), 5);
        assert_eq!(a, b);
    }

    /// Panics on every odd true count — a flaky hardware model.
    struct Flaky;
    impl MacOracle for Flaky {
        fn read(&self, true_count: usize, _rng: &mut StdRng) -> usize {
            assert!(
                true_count.is_multiple_of(2),
                "flaky oracle hit an odd count"
            );
            true_count
        }
        fn cells_per_row(&self) -> usize {
            8
        }
    }

    #[test]
    fn fault_tolerant_oracle_substitutes_and_counts() {
        let oracle = FaultTolerant::new(Flaky);
        let mut rng = StdRng::seed_from_u64(0);
        let counts = [1usize, 2, 3, 4, 5];
        let mut out = Vec::new();
        oracle.read_batch(&counts, &mut out, &mut rng);
        // Panicked reads are substituted by the true count, so the
        // batch completes with ideal values in the failed slots.
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(oracle.fault_count(), 3);
        assert_eq!(oracle.cells_per_row(), 8);
    }

    /// Panics on every read.
    struct AlwaysPanics;
    impl MacOracle for AlwaysPanics {
        fn read(&self, _true_count: usize, _rng: &mut StdRng) -> usize {
            panic!("hardware model exploded");
        }
        fn cells_per_row(&self) -> usize {
            8
        }
    }

    #[test]
    fn fault_tolerant_inference_completes_under_total_failure() {
        let mut rng = StdRng::seed_from_u64(2);
        let lin = Linear::new(16, 4, &mut rng);
        let net = Network::new(vec![Layer::Linear(lin)]);
        let cim = CimNetwork::map(&net, CimMapping::default());
        let x = Tensor::from_vec(&[16], vec![0.5; 16]);
        let ideal = cim.forward(&x, &IdealMac(8), 3);
        let oracle = FaultTolerant::new(AlwaysPanics);
        let survived = cim.forward(&x, &oracle, 3);
        // Every read failed and was replaced by the ideal readout.
        assert_eq!(ideal.data(), survived.data());
        assert!(oracle.fault_count() > 0);
    }

    #[test]
    fn fault_events_match_the_fault_count() {
        use ferrocim_telemetry::Aggregator;
        use std::sync::Arc;
        let agg = Arc::new(Aggregator::new());
        let tele = Telemetry::new(agg.clone());
        let oracle = FaultTolerant::new(Flaky).with_recorder(tele.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Vec::new();
        oracle.read_batch(&[1usize, 2, 3, 4, 5, 7], &mut out, &mut rng);
        assert_eq!(oracle.fault_count(), 4);
        assert_eq!(agg.counts().faults_substituted, 4);
    }

    #[test]
    fn recorded_forward_emits_one_span_per_layer() {
        use ferrocim_telemetry::Aggregator;
        use std::sync::Arc;
        let mut rng = StdRng::seed_from_u64(2);
        let net = Network::new(vec![
            Layer::Linear(Linear::new(16, 8, &mut rng)),
            Layer::Relu,
            Layer::Linear(Linear::new(8, 4, &mut rng)),
        ]);
        let agg = Arc::new(Aggregator::new());
        let cim =
            CimNetwork::map(&net, CimMapping::default()).with_recorder(Telemetry::new(agg.clone()));
        let x = Tensor::from_vec(&[16], vec![0.5; 16]);
        let _ = cim.forward(&x, &IdealMac(8), 3);
        // One span per layer, one nn.mac_batch inside each of the two
        // MAC layers, plus the enclosing nn.forward root.
        assert_eq!(agg.counts().spans, 6);
    }

    #[test]
    #[should_panic(expected = "oracle row width")]
    fn mapping_oracle_mismatch_is_rejected() {
        let qw = quantize_weights(&[0.5; 8], 4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = cim_dot(
            &qw,
            &[1u8; 8],
            &CimMapping::default(),
            &IdealMac(4),
            &mut rng,
        );
    }
}
