//! Temperature-aware compact device models for the `ferrocim` stack.
//!
//! Two models are provided:
//!
//! * [`MosfetModel`] — an EKV-style all-region n-MOSFET model with smooth
//!   weak/moderate/strong-inversion interpolation, temperature-dependent
//!   threshold voltage, mobility and thermal voltage, DIBL and
//!   channel-length modulation. This stands in for the Intel 14 nm FinFET
//!   PDK model used by the paper.
//! * [`Fefet`] — a ferroelectric FET: the same underlying transistor with
//!   its threshold voltage shifted by a remanent polarization state that
//!   evolves through a multi-domain Preisach hysteresis operator
//!   ([`preisach::Preisach`]) with nucleation-limited-switching pulse
//!   kinetics. This reproduces the modelling approach of the calibrated
//!   Preisach FeFET compact model the paper simulates with.
//!
//! Both models expose drain current *and* its partial derivatives
//! ([`SmallSignal`]) so the `ferrocim-spice` Newton–Raphson solver can
//! stamp them directly.
//!
//! # Example
//!
//! ```
//! use ferrocim_device::{Fefet, FefetParams, PolarizationState};
//! use ferrocim_units::{Volt, Celsius};
//!
//! let mut fefet = Fefet::new(FefetParams::paper_default());
//! fefet.force_state(PolarizationState::LowVt); // store logic '1'
//!
//! // Subthreshold read at the paper's operating point.
//! let on = fefet.ids(Volt(0.35), Volt(0.15), Celsius(27.0));
//! fefet.force_state(PolarizationState::HighVt); // store logic '0'
//! let off = fefet.ids(Volt(0.35), Volt(0.15), Celsius(27.0));
//! assert!(on.value() / off.value() > 1e4, "I_ON/I_OFF ratio must be high");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod fefet;
mod mosfet;
pub mod preisach;
pub mod reliability;
pub mod variation;

pub use error::DeviceError;
pub use fefet::{Fefet, FefetParams, PolarizationState, ProgramPulse};
pub use mosfet::{MosfetModel, MosfetParams, SmallSignal};
