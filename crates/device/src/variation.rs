//! Process-variation sampling utilities.
//!
//! The paper's Fig. 9 runs 100 Monte-Carlo simulations with an
//! experimentally measured FeFET threshold variability of
//! `σ_VT = 54 mV`. This module provides a deterministic, seedable
//! Gaussian sampler (polar Box–Muller over the workspace-standard
//! `rand` generator) and a [`VariationModel`] describing which device
//! parameters vary and by how much.

use ferrocim_units::Volt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Draws standard-normal samples from any `rand` RNG using the polar
/// (Marsaglia) Box–Muller method. Kept in-repo so the workspace does
/// not need `rand_distr` (see DESIGN.md dependency policy).
#[derive(Debug, Clone, Default)]
pub struct GaussianSampler {
    cached: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard-normal sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        loop {
            let u: f64 = rng.random_range(-1.0..1.0);
            let v: f64 = rng.random_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.cached = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Draws a normal sample with the given mean and standard deviation.
    pub fn sample_with<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.sample(rng)
    }
}

/// Describes the device-to-device variation applied in Monte-Carlo runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Standard deviation of the FeFET threshold-voltage offset.
    pub sigma_vt: Volt,
    /// Standard deviation of the plain-transistor threshold offset
    /// (M1/M2 in the 2T-1FeFET cell). FinFETs are better matched than
    /// FeFETs; the default is one third of the FeFET sigma.
    pub sigma_vt_mosfet: Volt,
}

impl VariationModel {
    /// The paper's Fig. 9 setting: `σ_VT = 54 mV` on FeFETs.
    pub fn paper_default() -> Self {
        VariationModel {
            sigma_vt: Volt(0.054),
            sigma_vt_mosfet: Volt(0.018),
        }
    }

    /// A zero-variation model (all offsets are exactly zero).
    pub fn none() -> Self {
        VariationModel {
            sigma_vt: Volt::ZERO,
            sigma_vt_mosfet: Volt::ZERO,
        }
    }

    /// Samples one FeFET threshold offset.
    pub fn sample_fefet_offset<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sampler: &mut GaussianSampler,
    ) -> Volt {
        Volt(sampler.sample_with(rng, 0.0, self.sigma_vt.value()))
    }

    /// Samples one MOSFET threshold offset.
    pub fn sample_mosfet_offset<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sampler: &mut GaussianSampler,
    ) -> Volt {
        Volt(sampler.sample_with(rng, 0.0, self.sigma_vt_mosfet.value()))
    }
}

/// Convenience: a seeded RNG for reproducible Monte-Carlo experiments.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments_are_standard_normal() {
        let mut rng = seeded_rng(42);
        let mut g = GaussianSampler::new();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn gaussian_tail_fractions() {
        let mut rng = seeded_rng(7);
        let mut g = GaussianSampler::new();
        let n = 100_000;
        let beyond_2sigma =
            (0..n).filter(|_| g.sample(&mut rng).abs() > 2.0).count() as f64 / n as f64;
        // True value 4.55 %.
        assert!(
            (beyond_2sigma - 0.0455).abs() < 0.005,
            "got {beyond_2sigma}"
        );
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let draw = |seed| {
            let mut rng = seeded_rng(seed);
            let mut g = GaussianSampler::new();
            (0..10).map(|_| g.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(123), draw(123));
        assert_ne!(draw(123), draw(124));
    }

    #[test]
    fn variation_model_scales_sigma() {
        let model = VariationModel::paper_default();
        let mut rng = seeded_rng(9);
        let mut g = GaussianSampler::new();
        let n = 50_000;
        let sq_sum: f64 = (0..n)
            .map(|_| model.sample_fefet_offset(&mut rng, &mut g).value().powi(2))
            .sum();
        let sigma = (sq_sum / n as f64).sqrt();
        assert!((sigma - 0.054).abs() < 0.002, "sigma {sigma}");
    }

    #[test]
    fn none_model_is_exactly_zero() {
        let model = VariationModel::none();
        let mut rng = seeded_rng(1);
        let mut g = GaussianSampler::new();
        for _ in 0..10 {
            assert_eq!(model.sample_fefet_offset(&mut rng, &mut g), Volt::ZERO);
            assert_eq!(model.sample_mosfet_offset(&mut rng, &mut g), Volt::ZERO);
        }
    }
}
