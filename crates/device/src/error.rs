//! Error type for device-model construction and use.

use std::fmt;

/// Errors produced when validating device parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A geometric or physical parameter was non-positive or non-finite.
    InvalidParameter {
        /// The offending parameter's name.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// What the parameter must satisfy.
        requirement: &'static str,
    },
    /// The low-`V_TH` level was not below the high-`V_TH` level, so the
    /// FeFET memory window would be empty or inverted.
    EmptyMemoryWindow {
        /// The configured low-state threshold voltage in volts.
        low_vt: f64,
        /// The configured high-state threshold voltage in volts.
        high_vt: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(
                f,
                "device parameter `{name}` = {value} must be {requirement}"
            ),
            DeviceError::EmptyMemoryWindow { low_vt, high_vt } => write!(
                f,
                "fefet memory window is empty: low-Vt {low_vt} V is not below high-Vt {high_vt} V"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = DeviceError::InvalidParameter {
            name: "width",
            value: -1.0,
            requirement: "positive and finite",
        };
        let s = e.to_string();
        assert!(s.starts_with("device parameter"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
