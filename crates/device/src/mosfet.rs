//! EKV-style all-region n-MOSFET compact model.
//!
//! The EKV formulation interpolates smoothly between weak inversion
//! (subthreshold, exponential `I_D`) and strong inversion (square-law)
//! through the softplus charge linearization:
//!
//! ```text
//! I_D = I_S · (1 + λ·V_DS) · [ f(a)² − f(b)² ]
//! f(x) = ln(1 + eˣ)                         (softplus)
//! a = (V_GS − V_TH(T, V_DS)) / (2 n U_T)
//! b = a − V_DS / (2 U_T)
//! I_S = 2 n µ(T) C_ox (W/L) U_T²            (specific current)
//! ```
//!
//! Temperature enters three ways, all of which matter for the paper's
//! Fig. 3 analysis:
//!
//! 1. thermal voltage `U_T = kT/q` (exponential subthreshold sensitivity),
//! 2. threshold drift `V_TH(T) = V_TH0 + k_vt (T − T₀)` with
//!    `k_vt ≈ −0.7 mV/K`,
//! 3. mobility degradation `µ(T) = µ₀ (T/T₀)^(−β)` with `β ≈ 1.5`.
//!
//! In the subthreshold region effects 1–2 both *increase* current with
//! temperature and dominate effect 3, producing the large positive drift
//! the paper measures (52.1 % for the baseline cell); in saturation the
//! three partially cancel (20.6 %).

use crate::DeviceError;
use ferrocim_units::{Ampere, Celsius, Siemens, ThermalVoltage, Volt};
use serde::{Deserialize, Serialize};

/// Numerically safe softplus `ln(1 + eˣ)` and its derivative (the
/// logistic sigmoid), evaluated together.
#[inline]
fn softplus_with_deriv(x: f64) -> (f64, f64) {
    if x > 30.0 {
        (x, 1.0)
    } else if x < -30.0 {
        let e = x.exp();
        (e, e) // ln(1+e) ≈ e, σ(x) ≈ e for very negative x
    } else {
        let e = x.exp();
        ((1.0 + e).ln(), e / (1.0 + e))
    }
}

/// Static parameters of an EKV-style n-MOSFET.
///
/// Construct via [`MosfetParams::nmos_14nm`] (the calibrated 14 nm-class
/// transistor used throughout the paper reproduction) and customize with
/// the builder-style `with_*` methods, then validate with
/// [`MosfetParams::build`] or pass directly to [`MosfetModel::new`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MosfetParams {
    /// Channel width in metres.
    pub width: f64,
    /// Channel length in metres.
    pub length: f64,
    /// Threshold voltage at the reference temperature (27 °C), in volts.
    pub vth0: Volt,
    /// Subthreshold slope factor `n` (dimensionless, ≥ 1). The room
    /// temperature swing is `n·U_T·ln 10` per decade, so `n = 1.25`
    /// gives ≈ 74 mV/dec — a realistic 14 nm-class FinFET value.
    pub ideality: f64,
    /// Low-field mobility at the reference temperature, m²/(V·s).
    pub mobility: f64,
    /// Gate-oxide capacitance per area, F/m².
    pub cox: f64,
    /// Channel-length-modulation coefficient λ, 1/V.
    pub lambda: f64,
    /// DIBL coefficient η: `V_TH` is reduced by `η·V_DS`.
    pub dibl: f64,
    /// Threshold temperature coefficient `dV_TH/dT`, V/K (negative).
    pub vth_temp_coeff: f64,
    /// Mobility temperature exponent β in `µ ∝ (T/T₀)^(−β)`.
    pub mobility_exponent: f64,
    /// Effective gate capacitance used when a netlist wants an explicit
    /// gate-loading capacitor for this device, in farads.
    pub gate_capacitance: f64,
}

impl MosfetParams {
    /// Reference temperature for all temperature coefficients: 27 °C.
    pub const T_REF: Celsius = Celsius::ROOM;

    /// A 14 nm-class low-power n-FinFET calibration: `V_TH ≈ 0.40 V`,
    /// ≈ 74 mV/dec swing, `dV_TH/dT = −0.7 mV/K`, `µ ∝ T^(−1.5)`.
    ///
    /// This is the workhorse device of the reproduction; the paper's
    /// M1/M2 transistors are derived from it by resizing W/L.
    pub fn nmos_14nm() -> Self {
        MosfetParams {
            width: 100e-9,
            length: 14e-9,
            vth0: Volt(0.40),
            ideality: 1.25,
            mobility: 0.020, // m²/Vs — effective FinFET channel mobility
            cox: 0.025,      // F/m² (~1.4 nm EOT)
            lambda: 0.05,
            dibl: 0.04,
            vth_temp_coeff: -0.7e-3,
            mobility_exponent: 1.5,
            gate_capacitance: 50e-18,
        }
    }

    /// Returns a copy with the given channel width in metres.
    pub fn with_width(mut self, width: f64) -> Self {
        self.width = width;
        self
    }

    /// Returns a copy with the given channel length in metres.
    pub fn with_length(mut self, length: f64) -> Self {
        self.length = length;
        self
    }

    /// Returns a copy with the given reference threshold voltage.
    pub fn with_vth0(mut self, vth0: Volt) -> Self {
        self.vth0 = vth0;
        self
    }

    /// Returns a copy with the given W/L ratio, keeping the length and
    /// adjusting the width. This is the tuning knob the paper exposes
    /// ("the cell parameters, such as the W/L ratio, … are tuned").
    pub fn with_wl_ratio(mut self, ratio: f64) -> Self {
        self.width = self.length * ratio;
        self
    }

    /// The W/L ratio of this geometry.
    pub fn wl_ratio(&self) -> f64 {
        self.width / self.length
    }

    /// Validates the parameters and constructs the model.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if any geometric or
    /// physical parameter is non-positive or non-finite where it must be
    /// positive (width, length, ideality ≥ 1, mobility, cox), or not
    /// finite (all remaining coefficients).
    pub fn build(self) -> Result<MosfetModel, DeviceError> {
        MosfetModel::try_new(self)
    }
}

/// Drain current and its partial derivatives at one bias point — the
/// triple the Newton–Raphson solver stamps into the Jacobian.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SmallSignal {
    /// Drain current (positive from drain to source for `V_DS > 0`).
    pub ids: Ampere,
    /// Transconductance `∂I_D/∂V_GS`.
    pub gm: Siemens,
    /// Output conductance `∂I_D/∂V_DS`.
    pub gds: Siemens,
}

/// A validated, immutable EKV n-MOSFET model instance.
///
/// The model is `Copy`-cheap to clone and stateless: all bias and
/// temperature dependence is passed per call, which keeps Monte-Carlo
/// sweeps embarrassingly parallel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MosfetModel {
    params: MosfetParams,
}

impl MosfetModel {
    /// Constructs a model, panicking on invalid parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail the validation of
    /// [`MosfetParams::build`]. Use [`MosfetModel::try_new`] for a
    /// fallible variant.
    pub fn new(params: MosfetParams) -> Self {
        match Self::try_new(params) {
            Ok(model) => model,
            Err(e) => panic!("invalid MOSFET parameters: {e}"),
        }
    }

    /// Constructs a model, validating the parameters.
    ///
    /// # Errors
    ///
    /// See [`MosfetParams::build`].
    pub fn try_new(params: MosfetParams) -> Result<Self, DeviceError> {
        fn positive(name: &'static str, value: f64) -> Result<(), DeviceError> {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(DeviceError::InvalidParameter {
                    name,
                    value,
                    requirement: "positive and finite",
                })
            }
        }
        fn finite(name: &'static str, value: f64) -> Result<(), DeviceError> {
            if value.is_finite() {
                Ok(())
            } else {
                Err(DeviceError::InvalidParameter {
                    name,
                    value,
                    requirement: "finite",
                })
            }
        }
        positive("width", params.width)?;
        positive("length", params.length)?;
        positive("mobility", params.mobility)?;
        positive("cox", params.cox)?;
        if !(params.ideality.is_finite() && params.ideality >= 1.0) {
            return Err(DeviceError::InvalidParameter {
                name: "ideality",
                value: params.ideality,
                requirement: "finite and >= 1",
            });
        }
        finite("vth0", params.vth0.value())?;
        finite("lambda", params.lambda)?;
        finite("dibl", params.dibl)?;
        finite("vth_temp_coeff", params.vth_temp_coeff)?;
        finite("mobility_exponent", params.mobility_exponent)?;
        positive("gate_capacitance", params.gate_capacitance)?;
        Ok(MosfetModel { params })
    }

    /// The validated parameter set.
    pub fn params(&self) -> &MosfetParams {
        &self.params
    }

    /// Effective threshold voltage at a temperature and drain bias
    /// (includes the linear temperature drift and DIBL).
    pub fn vth_at(&self, temp: Celsius, vds: Volt) -> Volt {
        let dt = temp.value() - MosfetParams::T_REF.value();
        Volt(
            self.params.vth0.value() + self.params.vth_temp_coeff * dt
                - self.params.dibl * vds.value(),
        )
    }

    /// Specific (normalization) current `I_S = 2 n µ(T) C_ox (W/L) U_T²`.
    pub fn specific_current(&self, temp: Celsius) -> Ampere {
        let p = &self.params;
        let t = temp.to_kelvin().value();
        let t_ref = MosfetParams::T_REF.to_kelvin().value();
        let mobility = p.mobility * (t / t_ref).powf(-p.mobility_exponent);
        let ut = ThermalVoltage::at_celsius(temp).value();
        Ampere(2.0 * p.ideality * mobility * p.cox * (p.width / p.length) * ut * ut)
    }

    /// Drain current with the threshold shifted by `delta_vth`
    /// (used by the FeFET wrapper and by Monte-Carlo variation), plus
    /// the small-signal derivatives.
    ///
    /// Negative `V_DS` is handled by source/drain symmetry, so the model
    /// is safe to use for pass devices whose terminals swap roles.
    pub fn evaluate_shifted(
        &self,
        vgs: Volt,
        vds: Volt,
        temp: Celsius,
        delta_vth: Volt,
    ) -> SmallSignal {
        if vds.value() < 0.0 {
            // Symmetric device: swap source and drain roles. With
            // I(vgs, vds) = −I'(vgs − vds, −vds), the chain rule gives
            // gm = −gm' and gds = gm' + gds'.
            let flipped = self.evaluate_shifted(
                Volt(vgs.value() - vds.value()),
                Volt(-vds.value()),
                temp,
                delta_vth,
            );
            return SmallSignal {
                ids: -flipped.ids,
                gm: Siemens(-flipped.gm.value()),
                gds: Siemens(flipped.gm.value() + flipped.gds.value()),
            };
        }
        let p = &self.params;
        let ut = ThermalVoltage::at_celsius(temp).value();
        let n = p.ideality;
        let vth = self.vth_at(temp, vds).value() + delta_vth.value();
        let a = (vgs.value() - vth) / (2.0 * n * ut);
        let b = a - vds.value() / (2.0 * ut);
        let (fa, sa) = softplus_with_deriv(a);
        let (fb, sb) = softplus_with_deriv(b);
        let i_s = self.specific_current(temp).value();
        let clm = 1.0 + p.lambda * vds.value();
        let core = fa * fa - fb * fb;
        let ids = i_s * core * clm;
        // ∂a/∂vgs = 1/(2nUT); ∂b/∂vgs = 1/(2nUT)
        let dcore_dvgs = (2.0 * fa * sa - 2.0 * fb * sb) / (2.0 * n * ut);
        let gm = i_s * dcore_dvgs * clm;
        // ∂a/∂vds = η/(2nUT) (DIBL lowers vth); ∂b/∂vds = η/(2nUT) − 1/(2UT)
        let da_dvds = p.dibl / (2.0 * n * ut);
        let db_dvds = da_dvds - 1.0 / (2.0 * ut);
        let dcore_dvds = 2.0 * fa * sa * da_dvds - 2.0 * fb * sb * db_dvds;
        let gds = i_s * (dcore_dvds * clm + core * p.lambda);
        SmallSignal {
            ids: Ampere(ids),
            gm: Siemens(gm),
            gds: Siemens(gds),
        }
    }

    /// Drain current and derivatives at a bias point.
    pub fn evaluate(&self, vgs: Volt, vds: Volt, temp: Celsius) -> SmallSignal {
        self.evaluate_shifted(vgs, vds, temp, Volt::ZERO)
    }

    /// Drain current only (convenience).
    pub fn ids(&self, vgs: Volt, vds: Volt, temp: Celsius) -> Ampere {
        self.evaluate(vgs, vds, temp).ids
    }

    /// Subthreshold swing at a temperature, mV/decade.
    pub fn subthreshold_swing_mv_per_dec(&self, temp: Celsius) -> f64 {
        let ut = ThermalVoltage::at_celsius(temp).value();
        self.params.ideality * ut * std::f64::consts::LN_10 * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MosfetModel {
        MosfetModel::new(MosfetParams::nmos_14nm())
    }

    const ROOM: Celsius = Celsius(27.0);

    #[test]
    fn subthreshold_current_is_exponential_in_vgs() {
        let m = model();
        // 100 mV of gate swing deep in subthreshold should give close to
        // 100/74 ≈ 1.35 decades of current.
        let i1 = m.ids(Volt(0.15), Volt(0.3), ROOM).value();
        let i2 = m.ids(Volt(0.25), Volt(0.3), ROOM).value();
        let decades = (i2 / i1).log10();
        let expected = 100.0 / m.subthreshold_swing_mv_per_dec(ROOM);
        assert!(
            (decades - expected).abs() < 0.05,
            "decades {decades} vs expected {expected}"
        );
    }

    #[test]
    fn strong_inversion_is_roughly_square_law() {
        let m = model();
        // Saturation, well above threshold: I ∝ (VGS−VTH)² approximately.
        let i1 = m.ids(Volt(0.9), Volt(1.3), ROOM).value();
        let i2 = m.ids(Volt(1.4), Volt(1.3), ROOM).value();
        let vth = m.vth_at(ROOM, Volt(1.3)).value();
        let ratio_expected = ((1.4 - vth) / (0.9 - vth)).powi(2);
        let ratio = i2 / i1;
        assert!(
            (ratio / ratio_expected - 1.0).abs() < 0.15,
            "ratio {ratio} vs {ratio_expected}"
        );
    }

    #[test]
    fn subthreshold_current_increases_with_temperature() {
        let m = model();
        let cold = m.ids(Volt(0.35), Volt(0.2), Celsius(0.0)).value();
        let room = m.ids(Volt(0.35), Volt(0.2), ROOM).value();
        let hot = m.ids(Volt(0.35), Volt(0.2), Celsius(85.0)).value();
        assert!(cold < room && room < hot, "{cold} {room} {hot}");
        // The increase must be strong (exponential region).
        assert!(hot / cold > 3.0, "hot/cold = {}", hot / cold);
    }

    #[test]
    fn saturation_current_is_much_less_temperature_sensitive() {
        let m = model();
        let sweep = |v: Volt| {
            let i0 = m.ids(v, Volt(1.3), Celsius(0.0)).value();
            let i85 = m.ids(v, Volt(1.3), Celsius(85.0)).value();
            (i85 / i0 - 1.0).abs()
        };
        let sat_change = sweep(Volt(1.3));
        let sub_change = {
            let i0 = m.ids(Volt(0.35), Volt(0.3), Celsius(0.0)).value();
            let i85 = m.ids(Volt(0.35), Volt(0.3), Celsius(85.0)).value();
            (i85 / i0 - 1.0).abs()
        };
        assert!(
            sub_change > 3.0 * sat_change,
            "subthreshold {sub_change} vs saturation {sat_change}"
        );
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let m = model();
        let h = 1e-7;
        for &(vgs, vds) in &[
            (0.35, 0.2),
            (0.35, 0.05),
            (0.8, 0.6),
            (1.3, 1.3),
            (0.1, 0.01),
        ] {
            let s = m.evaluate(Volt(vgs), Volt(vds), ROOM);
            let ip = m.ids(Volt(vgs + h), Volt(vds), ROOM).value();
            let im = m.ids(Volt(vgs - h), Volt(vds), ROOM).value();
            let gm_fd = (ip - im) / (2.0 * h);
            assert!(
                (s.gm.value() - gm_fd).abs() <= 1e-5 * gm_fd.abs().max(1e-12),
                "gm analytic {} vs fd {gm_fd} at ({vgs},{vds})",
                s.gm.value()
            );
            let ip = m.ids(Volt(vgs), Volt(vds + h), ROOM).value();
            let im = m.ids(Volt(vgs), Volt(vds - h), ROOM).value();
            let gds_fd = (ip - im) / (2.0 * h);
            assert!(
                (s.gds.value() - gds_fd).abs() <= 1e-4 * gds_fd.abs().max(1e-12),
                "gds analytic {} vs fd {gds_fd} at ({vgs},{vds})",
                s.gds.value()
            );
        }
    }

    #[test]
    fn reverse_mode_is_antisymmetric() {
        let m = model();
        // I(vgs, vds) with swapped terminals: I(vg−vd as vgs, −vds).
        let fwd = m.ids(Volt(0.5), Volt(0.3), ROOM).value();
        let rev = m.ids(Volt(0.5 - 0.3), Volt(-0.3), ROOM).value();
        assert!(
            (fwd + rev).abs() < 1e-9 * fwd.abs().max(1e-12),
            "fwd {fwd} rev {rev}"
        );
    }

    #[test]
    fn reverse_mode_derivatives_match_finite_differences() {
        let m = model();
        let h = 1e-7;
        let (vgs, vds) = (0.2, -0.15);
        let s = m.evaluate(Volt(vgs), Volt(vds), ROOM);
        let gm_fd = (m.ids(Volt(vgs + h), Volt(vds), ROOM).value()
            - m.ids(Volt(vgs - h), Volt(vds), ROOM).value())
            / (2.0 * h);
        let gds_fd = (m.ids(Volt(vgs), Volt(vds + h), ROOM).value()
            - m.ids(Volt(vgs), Volt(vds - h), ROOM).value())
            / (2.0 * h);
        assert!((s.gm.value() - gm_fd).abs() <= 1e-4 * gm_fd.abs().max(1e-14));
        assert!((s.gds.value() - gds_fd).abs() <= 1e-4 * gds_fd.abs().max(1e-14));
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let m = model();
        let i = m.ids(Volt(0.8), Volt(0.0), ROOM).value();
        assert!(i.abs() < 1e-15, "got {i}");
    }

    #[test]
    fn current_scales_linearly_with_wl() {
        let wide = MosfetModel::new(MosfetParams::nmos_14nm().with_wl_ratio(20.0));
        let narrow = MosfetModel::new(MosfetParams::nmos_14nm().with_wl_ratio(2.0));
        let iw = wide.ids(Volt(0.35), Volt(0.2), ROOM).value();
        let inr = narrow.ids(Volt(0.35), Volt(0.2), ROOM).value();
        assert!((iw / inr - 10.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let bad = MosfetParams::nmos_14nm().with_width(-1.0);
        assert!(matches!(
            MosfetModel::try_new(bad),
            Err(DeviceError::InvalidParameter { name: "width", .. })
        ));
        let mut bad = MosfetParams::nmos_14nm();
        bad.ideality = 0.5;
        assert!(MosfetModel::try_new(bad).is_err());
        let mut bad = MosfetParams::nmos_14nm();
        bad.vth_temp_coeff = f64::NAN;
        assert!(MosfetModel::try_new(bad).is_err());
    }

    #[test]
    fn swing_is_realistic_at_room_temperature() {
        let s = model().subthreshold_swing_mv_per_dec(ROOM);
        assert!((70.0..80.0).contains(&s), "swing {s} mV/dec");
    }

    #[test]
    fn dibl_lowers_threshold_with_drain_bias() {
        let m = model();
        let vth_low = m.vth_at(ROOM, Volt(1.2)).value();
        let vth_high = m.vth_at(ROOM, Volt(0.05)).value();
        assert!(vth_low < vth_high);
    }
}
