//! Multi-domain Preisach hysteresis operator with nucleation-limited
//! switching (NLS) pulse kinetics.
//!
//! The ferroelectric gate stack of a FeFET is modelled as an ensemble of
//! independent domains (hysterons). Domain `i` switches *up* (toward
//! positive remanent polarization) when the applied gate field exceeds
//! its up-threshold `v_up[i]`, and *down* below its down-threshold
//! `v_dn[i]`. Thresholds are spread with a Gaussian-quantile profile
//! around the coercive voltages `±v_c`, which yields the smooth
//! saturating hysteresis loop measured on HfO₂ FeFETs and reproduces the
//! classical Preisach properties (return-point memory, congruent minor
//! loops, wipe-out).
//!
//! Real FeFET programming is *time*-dependent: the paper programs the
//! low-`V_TH` state with +4 V for 115 ns but needs 200 ns at −4 V for the
//! high-`V_TH` state. We capture this with a Merz-law switching time per
//! domain: a pulse `(v, t)` switches domain `i` up only if `v > v_up[i]`
//! **and** `t ≥ t₀·exp(v_act / (v − v_up[i]))`.
//!
//! # Example
//!
//! ```
//! use ferrocim_device::preisach::{Preisach, PreisachParams};
//! use ferrocim_units::{Volt, Second};
//!
//! let mut p = Preisach::new(PreisachParams::default());
//! p.apply_pulse(Volt(4.0), Second(115e-9));
//! assert!(p.polarization() > 0.95);
//! p.apply_pulse(Volt(-4.0), Second(200e-9));
//! assert!(p.polarization() < -0.95);
//! ```

use serde::{Deserialize, Serialize};

use ferrocim_units::{Second, Volt};

/// Parameters of the Preisach domain ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreisachParams {
    /// Number of domains. More domains give a smoother loop; 64 is
    /// plenty for circuit-level work.
    pub domains: usize,
    /// Mean coercive voltage (positive), volts. Up-thresholds centre on
    /// `+v_c`, down-thresholds on `−v_c`.
    pub coercive: Volt,
    /// Standard deviation of the domain threshold spread, volts.
    pub sigma: Volt,
    /// Merz-law attempt time `t₀`, seconds.
    pub attempt_time: Second,
    /// Merz-law activation voltage `v_act`, volts.
    pub activation: Volt,
    /// Multiplier on the attempt time for *down* (erase) switching;
    /// values > 1 make erasing slower than programming, matching the
    /// paper's 200 ns erase vs 115 ns program pulses.
    pub erase_slowdown: f64,
}

impl Default for PreisachParams {
    /// Calibration for which the paper's write pulses (+4 V/115 ns and
    /// −4 V/200 ns) fully switch the ensemble, while half-amplitude
    /// pulses leave minor loops.
    fn default() -> Self {
        PreisachParams {
            domains: 64,
            coercive: Volt(2.2),
            sigma: Volt(0.35),
            attempt_time: Second(2e-9),
            activation: Volt(2.0),
            erase_slowdown: 1.6,
        }
    }
}

/// The Preisach hysteresis state: an ensemble of binary domains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Preisach {
    params: PreisachParams,
    v_up: Vec<f64>,
    v_dn: Vec<f64>,
    /// Per-domain binary state: `true` = polarized up.
    state: Vec<bool>,
}

/// Inverse error function (Winitzki's approximation, |err| < 2e-3),
/// used to place domain thresholds on Gaussian quantiles
/// deterministically instead of sampling them.
fn erf_inv(x: f64) -> f64 {
    debug_assert!((-1.0..=1.0).contains(&x));
    let a = 0.147;
    let ln_term = (1.0 - x * x).ln();
    let first = 2.0 / (std::f64::consts::PI * a) + ln_term / 2.0;
    let inside = first * first - ln_term / a;
    (inside.sqrt() - first).sqrt().copysign(x)
}

impl Preisach {
    /// Builds the ensemble with all domains polarized *down*
    /// (high-`V_TH`, logic '0').
    ///
    /// # Panics
    ///
    /// Panics if `params.domains == 0` or any voltage/time parameter is
    /// non-positive — these are construction-time configuration bugs.
    pub fn new(params: PreisachParams) -> Self {
        assert!(
            params.domains > 0,
            "preisach ensemble needs at least one domain"
        );
        assert!(
            params.coercive.value() > 0.0,
            "coercive voltage must be positive"
        );
        assert!(
            params.sigma.value() > 0.0,
            "threshold spread must be positive"
        );
        assert!(
            params.attempt_time.value() > 0.0,
            "attempt time must be positive"
        );
        assert!(
            params.activation.value() > 0.0,
            "activation voltage must be positive"
        );
        assert!(
            params.erase_slowdown > 0.0,
            "erase slowdown must be positive"
        );
        let n = params.domains;
        let mut v_up = Vec::with_capacity(n);
        let mut v_dn = Vec::with_capacity(n);
        for i in 0..n {
            // Midpoint quantiles of the standard normal.
            let q = (i as f64 + 0.5) / n as f64;
            let z = std::f64::consts::SQRT_2 * erf_inv(2.0 * q - 1.0);
            v_up.push(params.coercive.value() + params.sigma.value() * z);
            v_dn.push(-params.coercive.value() + params.sigma.value() * z);
        }
        Preisach {
            state: vec![false; n],
            params,
            v_up,
            v_dn,
        }
    }

    /// The ensemble parameters.
    pub fn params(&self) -> &PreisachParams {
        &self.params
    }

    /// Net polarization in `[-1, 1]`: the mean of the domain states.
    pub fn polarization(&self) -> f64 {
        let up = self.state.iter().filter(|&&s| s).count() as f64;
        2.0 * up / self.state.len() as f64 - 1.0
    }

    /// Forces every domain up (`+1`) or down (`−1`) without pulse
    /// kinetics. Used to initialize memory states directly.
    pub fn saturate(&mut self, up: bool) {
        for s in &mut self.state {
            *s = up;
        }
    }

    /// Sets the polarization to approximately `p ∈ [-1, 1]` by switching
    /// the lowest-threshold domains first, as a staircase program pulse
    /// would. Values outside the range are clamped.
    pub fn set_polarization(&mut self, p: f64) {
        let p = p.clamp(-1.0, 1.0);
        let n = self.state.len();
        let up_count = ((p + 1.0) / 2.0 * n as f64).round() as usize;
        // Domains are built in ascending threshold order.
        for (i, s) in self.state.iter_mut().enumerate() {
            *s = i < up_count;
        }
    }

    /// Applies a quasi-static voltage (infinitely long dwell): every
    /// domain whose threshold is crossed switches.
    pub fn apply_quasi_static(&mut self, v: Volt) {
        for i in 0..self.state.len() {
            if v.value() >= self.v_up[i] {
                self.state[i] = true;
            } else if v.value() <= self.v_dn[i] {
                self.state[i] = false;
            }
        }
    }

    /// Applies a rectangular gate pulse of amplitude `v` and duration
    /// `t`, with Merz-law time-dependent switching. Positive amplitudes
    /// switch domains up; negative amplitudes switch them down (with the
    /// configured erase slowdown).
    pub fn apply_pulse(&mut self, v: Volt, t: Second) {
        if t.value() <= 0.0 {
            return;
        }
        let p = &self.params;
        for i in 0..self.state.len() {
            if v.value() > self.v_up[i] {
                let over = v.value() - self.v_up[i];
                let t_sw = p.attempt_time.value() * (p.activation.value() / over).exp();
                if t.value() >= t_sw {
                    self.state[i] = true;
                }
            } else if v.value() < self.v_dn[i] {
                let over = self.v_dn[i] - v.value();
                let t_sw =
                    p.attempt_time.value() * p.erase_slowdown * (p.activation.value() / over).exp();
                if t.value() >= t_sw {
                    self.state[i] = false;
                }
            }
        }
    }

    /// The fraction of domains currently polarized up, in `[0, 1]`.
    pub fn switched_fraction(&self) -> f64 {
        (self.polarization() + 1.0) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Preisach {
        Preisach::new(PreisachParams::default())
    }

    #[test]
    fn starts_fully_down() {
        assert_eq!(fresh().polarization(), -1.0);
    }

    #[test]
    fn paper_program_pulse_saturates_up() {
        let mut p = fresh();
        p.apply_pulse(Volt(4.0), Second(115e-9));
        assert!(p.polarization() > 0.95, "P = {}", p.polarization());
    }

    #[test]
    fn paper_erase_pulse_saturates_down() {
        let mut p = fresh();
        p.saturate(true);
        p.apply_pulse(Volt(-4.0), Second(200e-9));
        assert!(p.polarization() < -0.95, "P = {}", p.polarization());
    }

    #[test]
    fn erase_is_slower_than_program() {
        // For an equal (short) pulse width, +4 V must switch a larger
        // fraction up than −4 V switches down, reflecting the paper's
        // asymmetric write latencies (115 ns program vs 200 ns erase).
        let t = Second(20e-9);
        let mut p = fresh();
        p.apply_pulse(Volt(4.0), t);
        let programmed = p.switched_fraction();
        let mut q = fresh();
        q.saturate(true);
        q.apply_pulse(Volt(-4.0), t);
        let erased = 1.0 - q.switched_fraction();
        assert!(
            programmed > erased,
            "program fraction {programmed} must exceed erase fraction {erased}"
        );
    }

    #[test]
    fn half_amplitude_pulse_is_partial() {
        let mut p = fresh();
        p.apply_pulse(Volt(2.2), Second(115e-9));
        let pol = p.polarization();
        assert!(
            pol > -1.0 && pol < 0.9,
            "partial switching expected, P = {pol}"
        );
    }

    #[test]
    fn small_voltage_does_nothing() {
        let mut p = fresh();
        p.apply_pulse(Volt(0.35), Second(1.0)); // read disturb check
        assert_eq!(p.polarization(), -1.0);
        p.saturate(true);
        p.apply_pulse(Volt(-0.35), Second(1.0));
        assert_eq!(p.polarization(), 1.0);
    }

    #[test]
    fn return_point_memory() {
        // Classical Preisach wipe-out: returning to a previous field
        // extremum restores the same polarization.
        let mut p = fresh();
        p.apply_quasi_static(Volt(2.4));
        let after_first = p.polarization();
        p.apply_quasi_static(Volt(-1.0));
        p.apply_quasi_static(Volt(2.4));
        assert!((p.polarization() - after_first).abs() < 1e-12);
    }

    #[test]
    fn quasi_static_loop_is_monotone_in_field() {
        let mut p = fresh();
        let mut last = -1.0;
        for mv in (0..=4000).step_by(250) {
            p.apply_quasi_static(Volt(mv as f64 * 1e-3));
            let pol = p.polarization();
            assert!(
                pol >= last - 1e-12,
                "polarization decreased on rising field"
            );
            last = pol;
        }
        assert!((last - 1.0).abs() < 1e-12, "4 V quasi-static must saturate");
    }

    #[test]
    fn set_polarization_hits_target_levels() {
        let mut p = fresh();
        for target in [-1.0, -0.5, 0.0, 0.5, 1.0] {
            p.set_polarization(target);
            assert!((p.polarization() - target).abs() <= 2.0 / 64.0 + 1e-12);
        }
        p.set_polarization(7.0);
        assert_eq!(p.polarization(), 1.0);
    }

    #[test]
    fn switched_fraction_matches_polarization() {
        let mut p = fresh();
        p.set_polarization(0.5);
        assert!((p.switched_fraction() - 0.75).abs() < 0.02);
    }

    #[test]
    fn erf_inv_round_trip() {
        // erf(erf_inv(x)) ≈ x via the complementary relation at a few points.
        for &x in &[-0.9, -0.5, 0.0, 0.3, 0.8, 0.99] {
            let z = erf_inv(x);
            // erf via Abramowitz-Stegun 7.1.26.
            let t = 1.0 / (1.0 + 0.3275911 * z.abs());
            let y = 1.0
                - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
                    + 0.254829592)
                    * t
                    * (-z * z).exp();
            let erf = y.copysign(z);
            assert!((erf - x).abs() < 5e-3, "erf(erf_inv({x})) = {erf}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn zero_domains_rejected() {
        let params = PreisachParams {
            domains: 0,
            ..PreisachParams::default()
        };
        let _ = Preisach::new(params);
    }
}
