//! FeFET reliability models: retention (polarization decay over time)
//! and endurance (memory-window evolution over write cycling).
//!
//! The paper evaluates a fresh device; real HfO₂ FeFET deployments
//! must budget for both mechanisms, and any temperature-resilience
//! claim interacts with them (retention is thermally activated, so the
//! hot corner that the 2T-1FeFET cell survives electrically is also the
//! corner that ages the stored weights fastest). These models follow
//! the standard empirical forms from the HfO₂ ferroelectric literature:
//!
//! * **Retention** — stretched-exponential (Kohlrausch) decay of the
//!   remanent polarization with an Arrhenius-activated time constant:
//!   `P(t) = P₀ · exp(−(t/τ(T))^β)`, `τ(T) = τ₀ · exp(E_a / kT)`.
//! * **Endurance** — wake-up followed by fatigue: the memory window
//!   first widens slightly as pinned domains free up, then shrinks
//!   logarithmically until breakdown.

use crate::fefet::FefetParams;
use ferrocim_units::{Celsius, Second, BOLTZMANN, ELEMENTARY_CHARGE};
use serde::{Deserialize, Serialize};

/// Stretched-exponential retention with Arrhenius temperature
/// acceleration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionModel {
    /// Attempt time constant `τ₀`, seconds.
    pub tau0: Second,
    /// Activation energy, eV.
    pub activation_ev: f64,
    /// Stretching exponent `β ∈ (0, 1]`.
    pub beta: f64,
}

impl Default for RetentionModel {
    /// A 10-year-at-85 °C-class retention calibration, typical of
    /// reported HfO₂ FeFET data.
    fn default() -> Self {
        RetentionModel {
            tau0: Second(1e-9),
            activation_ev: 1.35,
            beta: 0.25,
        }
    }
}

impl RetentionModel {
    /// The Arrhenius-activated retention time constant at a temperature.
    pub fn tau(&self, temp: Celsius) -> Second {
        let kt = BOLTZMANN * temp.to_kelvin().value();
        let ea = self.activation_ev * ELEMENTARY_CHARGE;
        Second(self.tau0.value() * (ea / kt).exp())
    }

    /// The fraction of remanent polarization surviving after `elapsed`
    /// at `temp`: `exp(−(t/τ)^β)`, in `(0, 1]`.
    pub fn surviving_fraction(&self, elapsed: Second, temp: Celsius) -> f64 {
        if elapsed.value() <= 0.0 {
            return 1.0;
        }
        let ratio = elapsed.value() / self.tau(temp).value();
        (-(ratio.powf(self.beta))).exp()
    }

    /// The time at which the surviving fraction drops to `fraction`
    /// at the given temperature (the retention-life metric; e.g.
    /// `time_to_fraction(0.5, Celsius(85.0))`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    pub fn time_to_fraction(&self, fraction: f64, temp: Celsius) -> Second {
        assert!(
            (0.0..1.0).contains(&fraction) && fraction > 0.0,
            "fraction must be in (0, 1)"
        );
        let x = (-fraction.ln()).powf(1.0 / self.beta);
        Second(self.tau(temp).value() * x)
    }
}

/// Wake-up / fatigue endurance model for the memory window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnduranceModel {
    /// Cycle count at which wake-up peaks.
    pub wakeup_cycles: f64,
    /// Fractional window increase at the wake-up peak (e.g. 0.05).
    pub wakeup_gain: f64,
    /// Cycle count at which fatigue has halved the window.
    pub fatigue_half_cycles: f64,
    /// Hard-breakdown cycle count: beyond this the device is dead.
    pub breakdown_cycles: f64,
}

impl Default for EnduranceModel {
    /// A 10⁵-wake-up / 10¹⁰-class-endurance HfO₂ calibration.
    fn default() -> Self {
        EnduranceModel {
            wakeup_cycles: 1e4,
            wakeup_gain: 0.06,
            fatigue_half_cycles: 1e10,
            breakdown_cycles: 1e11,
        }
    }
}

impl EnduranceModel {
    /// The memory-window scaling factor after `cycles` program/erase
    /// cycles, or `None` past breakdown.
    ///
    /// The factor rises to `1 + wakeup_gain` around `wakeup_cycles`,
    /// then decays logarithmically, passing 0.5 at
    /// `fatigue_half_cycles`.
    pub fn window_factor(&self, cycles: f64) -> Option<f64> {
        if cycles >= self.breakdown_cycles {
            return None;
        }
        if cycles <= 0.0 {
            return Some(1.0);
        }
        // Wake-up: smooth rise saturating at wakeup_gain.
        let wake = self.wakeup_gain * (cycles / (cycles + self.wakeup_cycles));
        // Fatigue: log-linear decay starting two decades past wake-up
        // and reaching −0.5 at fatigue_half_cycles.
        let onset = self.wakeup_cycles * 100.0;
        let fatigue = if cycles > onset {
            0.5 * ((cycles / onset).ln() / (self.fatigue_half_cycles / onset).ln())
        } else {
            0.0
        };
        Some((1.0 + wake - fatigue).max(0.0))
    }

    /// Applies `cycles` of wear to a parameter set: the memory window
    /// shrinks symmetrically about its midpoint. Returns `None` past
    /// breakdown.
    pub fn age_params(&self, params: &FefetParams, cycles: f64) -> Option<FefetParams> {
        let factor = self.window_factor(cycles)?;
        let mid = 0.5 * (params.low_vt.value() + params.high_vt.value());
        let half = 0.5 * (params.high_vt.value() - params.low_vt.value()) * factor;
        let mut aged = params.clone();
        aged.low_vt = ferrocim_units::Volt(mid - half);
        aged.high_vt = ferrocim_units::Volt(mid + half);
        Some(aged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_is_thermally_activated() {
        let model = RetentionModel::default();
        let tau_room = model.tau(Celsius(27.0)).value();
        let tau_hot = model.tau(Celsius(85.0)).value();
        assert!(tau_hot < tau_room, "hotter must decay faster");
        // Arrhenius with 1.1 eV over 27→85 °C: several decades.
        assert!(tau_room / tau_hot > 1e2);
    }

    #[test]
    fn ten_year_retention_class_at_85c() {
        let model = RetentionModel::default();
        let ten_years = Second(10.0 * 365.25 * 24.0 * 3600.0);
        let surviving = model.surviving_fraction(ten_years, Celsius(85.0));
        // The default calibration keeps a solid majority of P after
        // 10 years at 85 °C.
        assert!(surviving > 0.5, "survives {surviving}");
        assert!(surviving < 1.0);
    }

    #[test]
    fn surviving_fraction_is_monotone_in_time() {
        let model = RetentionModel::default();
        let mut last = 1.0;
        for exp in 0..12 {
            let t = Second(10f64.powi(exp));
            let s = model.surviving_fraction(t, Celsius(85.0));
            assert!(s <= last + 1e-15);
            assert!(s > 0.0);
            last = s;
        }
        assert_eq!(model.surviving_fraction(Second(0.0), Celsius(85.0)), 1.0);
    }

    #[test]
    fn time_to_fraction_inverts_surviving_fraction() {
        let model = RetentionModel::default();
        let t50 = model.time_to_fraction(0.5, Celsius(85.0));
        let survived = model.surviving_fraction(t50, Celsius(85.0));
        assert!((survived - 0.5).abs() < 1e-9, "{survived}");
    }

    #[test]
    fn endurance_wakeup_then_fatigue() {
        let model = EnduranceModel::default();
        let fresh = model.window_factor(0.0).unwrap();
        let woken = model.window_factor(1e5).unwrap();
        let tired = model.window_factor(1e9).unwrap();
        let half = model.window_factor(1e10).unwrap();
        assert_eq!(fresh, 1.0);
        assert!(woken > 1.0, "wake-up widens the window ({woken})");
        assert!(tired < woken && tired > half);
        assert!(
            (half - 0.55).abs() < 0.1,
            "≈ half at the rated point: {half}"
        );
        assert!(model.window_factor(2e11).is_none(), "breakdown");
    }

    #[test]
    fn aged_params_shrink_the_window_symmetrically() {
        let params = FefetParams::paper_default();
        let model = EnduranceModel::default();
        let aged = model.age_params(&params, 1e9).unwrap();
        let mid_before = 0.5 * (params.low_vt.value() + params.high_vt.value());
        let mid_after = 0.5 * (aged.low_vt.value() + aged.high_vt.value());
        assert!((mid_before - mid_after).abs() < 1e-12, "midpoint preserved");
        assert!(aged.memory_window().value() < params.memory_window().value());
        assert!(model.age_params(&params, 1e12).is_none());
    }

    #[test]
    fn aged_device_still_builds_until_breakdown() {
        let model = EnduranceModel::default();
        let aged = model
            .age_params(&FefetParams::paper_default(), 5e9)
            .unwrap();
        assert!(aged.build().is_ok());
    }
}
