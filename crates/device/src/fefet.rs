//! Ferroelectric FET compact model: a Preisach-polarized gate stack on
//! top of the EKV transistor.
//!
//! The remanent polarization `P ∈ [-1, 1]` of the HfO₂ layer shifts the
//! underlying transistor's threshold voltage linearly across the memory
//! window `[V_TH_low, V_TH_high]`:
//!
//! ```text
//! V_TH(P) = V_mid − P · MW/2,    V_mid = (V_TH_low + V_TH_high)/2
//! ```
//!
//! so `P = +1` is the **low-`V_TH`** (logic '1', conducting at
//! `V_read = 0.35 V`) state and `P = −1` the **high-`V_TH`** (logic '0',
//! cut off) state — the two `I_D–V_G` branches of the paper's Fig. 1.
//!
//! Device-to-device process variation is applied as an additive
//! threshold offset (`σ_VT = 54 mV` in the paper's Fig. 9 Monte-Carlo).

use crate::mosfet::{MosfetModel, MosfetParams, SmallSignal};
use crate::preisach::{Preisach, PreisachParams};
use crate::DeviceError;
use ferrocim_units::{Ampere, Celsius, Second, Volt};
use serde::{Deserialize, Serialize};

/// The two nominal memory states of a binary-programmed FeFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolarizationState {
    /// Fully polarized up: low threshold voltage, logic '1'.
    LowVt,
    /// Fully polarized down: high threshold voltage, logic '0'.
    HighVt,
}

impl PolarizationState {
    /// The logic bit conventionally stored by this state.
    pub fn bit(self) -> bool {
        matches!(self, PolarizationState::LowVt)
    }

    /// The state that stores the given logic bit.
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            PolarizationState::LowVt
        } else {
            PolarizationState::HighVt
        }
    }
}

/// A write pulse: gate amplitude and duration.
///
/// The paper's write scheme is `+4 V / 115 ns` to program low-`V_TH`
/// and `−4 V / 200 ns` to erase to high-`V_TH`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramPulse {
    /// Gate voltage amplitude (signed).
    pub amplitude: Volt,
    /// Pulse width.
    pub width: Second,
}

impl ProgramPulse {
    /// The paper's program pulse: +4 V for 115 ns (→ low-`V_TH`).
    pub const PROGRAM: ProgramPulse = ProgramPulse {
        amplitude: Volt(4.0),
        width: Second(115e-9),
    };

    /// The paper's erase pulse: −4 V for 200 ns (→ high-`V_TH`).
    pub const ERASE: ProgramPulse = ProgramPulse {
        amplitude: Volt(-4.0),
        width: Second(200e-9),
    };
}

/// Static parameters of a FeFET.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FefetParams {
    /// The underlying transistor. Its `vth0` field is ignored — the
    /// threshold is set by the polarization state and the memory window.
    pub channel: MosfetParams,
    /// Threshold voltage of the fully-programmed low-`V_TH` state.
    pub low_vt: Volt,
    /// Threshold voltage of the fully-erased high-`V_TH` state.
    pub high_vt: Volt,
    /// Preisach ensemble parameters of the ferroelectric layer.
    pub preisach: PreisachParams,
    /// Additional temperature coefficient of the *memory window edges*
    /// relative to the plain transistor, V/K. HfO₂ FeFETs lose remanent
    /// polarization with temperature, which effectively narrows the
    /// window; a small negative value on the low edge and a larger
    /// negative value on the high edge reproduce the paper's Fig. 1
    /// observation that "temperature changes have a stronger impact on
    /// the high-V_TH state compared to the low-V_TH state".
    pub low_vt_temp_coeff: f64,
    /// Temperature coefficient of the high-`V_TH` edge, V/K.
    pub high_vt_temp_coeff: f64,
}

impl FefetParams {
    /// The calibration used throughout the paper reproduction: a
    /// 14 nm-class FeFET with a ≈1.3 V memory window centred so that
    /// `V_read = 0.35 V` lies in the subthreshold region of the
    /// low-`V_TH` branch and far below the high-`V_TH` branch.
    pub fn paper_default() -> Self {
        FefetParams {
            channel: MosfetParams::nmos_14nm().with_wl_ratio(10.0),
            low_vt: Volt(0.45),
            high_vt: Volt(1.75),
            preisach: PreisachParams::default(),
            // Both window edges drift down with temperature, the high
            // edge faster (the high-V_TH branch moves the most — paper
            // Fig. 1): the memory window narrows when hot.
            low_vt_temp_coeff: -0.3e-3,
            high_vt_temp_coeff: -1.1e-3,
        }
    }

    /// Validates and builds a fresh (erased) FeFET.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EmptyMemoryWindow`] if `low_vt >= high_vt`,
    /// or [`DeviceError::InvalidParameter`] if the channel transistor
    /// parameters are invalid.
    pub fn build(self) -> Result<Fefet, DeviceError> {
        Fefet::try_new(self)
    }

    /// The memory window width `high_vt − low_vt`.
    pub fn memory_window(&self) -> Volt {
        self.high_vt - self.low_vt
    }
}

/// A FeFET instance: immutable parameters plus mutable polarization
/// state and a per-device threshold variation offset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fefet {
    params: FefetParams,
    channel: MosfetModel,
    polarization: Preisach,
    vth_offset: Volt,
}

impl Fefet {
    /// Constructs a FeFET in the erased (high-`V_TH`) state.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters; use [`Fefet::try_new`] to handle
    /// the error instead.
    pub fn new(params: FefetParams) -> Self {
        match Self::try_new(params) {
            Ok(fefet) => fefet,
            Err(e) => panic!("invalid FeFET parameters: {e}"),
        }
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// See [`FefetParams::build`].
    pub fn try_new(params: FefetParams) -> Result<Self, DeviceError> {
        if params.low_vt.value() >= params.high_vt.value() {
            return Err(DeviceError::EmptyMemoryWindow {
                low_vt: params.low_vt.value(),
                high_vt: params.high_vt.value(),
            });
        }
        let channel = MosfetModel::try_new(params.channel.clone())?;
        let polarization = Preisach::new(params.preisach.clone());
        Ok(Fefet {
            params,
            channel,
            polarization,
            vth_offset: Volt::ZERO,
        })
    }

    /// The FeFET parameters.
    pub fn params(&self) -> &FefetParams {
        &self.params
    }

    /// Net remanent polarization in `[-1, 1]`.
    pub fn polarization(&self) -> f64 {
        self.polarization.polarization()
    }

    /// Sets a device-specific threshold offset (process variation).
    /// The paper's Fig. 9 uses Gaussian offsets with `σ_VT = 54 mV`.
    pub fn set_vth_offset(&mut self, offset: Volt) {
        self.vth_offset = offset;
    }

    /// The current threshold-variation offset.
    pub fn vth_offset(&self) -> Volt {
        self.vth_offset
    }

    /// Applies a gate write pulse through the Preisach kinetics.
    pub fn apply_pulse(&mut self, pulse: ProgramPulse) {
        self.polarization.apply_pulse(pulse.amplitude, pulse.width);
    }

    /// Programs the device to a nominal binary state using the paper's
    /// write pulses ([`ProgramPulse::PROGRAM`] / [`ProgramPulse::ERASE`]).
    pub fn program(&mut self, state: PolarizationState) {
        match state {
            PolarizationState::LowVt => self.apply_pulse(ProgramPulse::PROGRAM),
            PolarizationState::HighVt => self.apply_pulse(ProgramPulse::ERASE),
        }
    }

    /// Forces the polarization to a nominal state instantly, bypassing
    /// pulse kinetics. Convenient for array initialization in tests and
    /// experiments where write dynamics are not under study.
    pub fn force_state(&mut self, state: PolarizationState) {
        self.polarization
            .saturate(matches!(state, PolarizationState::LowVt));
    }

    /// Sets an analog (multi-level) polarization directly.
    pub fn set_polarization(&mut self, p: f64) {
        self.polarization.set_polarization(p);
    }

    /// The stored binary state inferred from the polarization sign, or
    /// `None` if the device is in an intermediate analog state
    /// (|P| < 0.9).
    pub fn stored_state(&self) -> Option<PolarizationState> {
        let p = self.polarization();
        if p > 0.9 {
            Some(PolarizationState::LowVt)
        } else if p < -0.9 {
            Some(PolarizationState::HighVt)
        } else {
            None
        }
    }

    /// Effective threshold voltage at a temperature for the current
    /// polarization, including the memory-window temperature drift and
    /// the per-device variation offset (excluding DIBL, which the
    /// transistor model adds per bias point).
    pub fn effective_vth(&self, temp: Celsius) -> Volt {
        let dt = temp.value() - MosfetParams::T_REF.value();
        let low = self.params.low_vt.value() + self.params.low_vt_temp_coeff * dt;
        let high = self.params.high_vt.value() + self.params.high_vt_temp_coeff * dt;
        let mid = 0.5 * (low + high);
        let half_window = 0.5 * (high - low);
        let p = self.polarization();
        Volt(mid - p * half_window + self.vth_offset.value())
    }

    /// Drain current and small-signal derivatives at a bias point.
    pub fn evaluate(&self, vgs: Volt, vds: Volt, temp: Celsius) -> SmallSignal {
        // The channel model applies its own vth0 + temp drift; replace
        // them with the polarization-controlled threshold by shifting.
        let base_vth = Volt(
            self.channel.params().vth0.value()
                + self.channel.params().vth_temp_coeff
                    * (temp.value() - MosfetParams::T_REF.value()),
        );
        let delta = self.effective_vth(temp) - base_vth;
        self.channel.evaluate_shifted(vgs, vds, temp, delta)
    }

    /// Drain current only.
    pub fn ids(&self, vgs: Volt, vds: Volt, temp: Celsius) -> Ampere {
        self.evaluate(vgs, vds, temp).ids
    }

    /// The `I_ON/I_OFF` ratio at a read bias: current in the low-`V_TH`
    /// state divided by current in the high-`V_TH` state, without
    /// mutating the device.
    pub fn on_off_ratio(&self, vgs: Volt, vds: Volt, temp: Celsius) -> f64 {
        let mut probe = self.clone();
        probe.force_state(PolarizationState::LowVt);
        let on = probe.ids(vgs, vds, temp).value();
        probe.force_state(PolarizationState::HighVt);
        let off = probe.ids(vgs, vds, temp).value();
        on / off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROOM: Celsius = Celsius(27.0);
    const V_READ_SUB: Volt = Volt(0.35);
    const V_READ_SAT: Volt = Volt(1.3);

    fn on_fefet() -> Fefet {
        let mut f = Fefet::new(FefetParams::paper_default());
        f.force_state(PolarizationState::LowVt);
        f
    }

    #[test]
    fn fresh_device_is_erased() {
        let f = Fefet::new(FefetParams::paper_default());
        assert_eq!(f.stored_state(), Some(PolarizationState::HighVt));
    }

    #[test]
    fn paper_pulses_program_and_erase() {
        let mut f = Fefet::new(FefetParams::paper_default());
        f.program(PolarizationState::LowVt);
        assert_eq!(f.stored_state(), Some(PolarizationState::LowVt));
        f.program(PolarizationState::HighVt);
        assert_eq!(f.stored_state(), Some(PolarizationState::HighVt));
    }

    #[test]
    fn read_voltage_is_subthreshold_for_low_vt_state() {
        let f = on_fefet();
        // V_read must sit below the low-Vt threshold: subthreshold.
        assert!(V_READ_SUB.value() < f.effective_vth(ROOM).value());
    }

    #[test]
    fn on_off_ratio_is_large_at_subthreshold_read() {
        let f = on_fefet();
        let ratio = f.on_off_ratio(V_READ_SUB, Volt(0.15), ROOM);
        assert!(ratio > 1e4, "I_ON/I_OFF = {ratio}");
    }

    #[test]
    fn high_vt_state_is_more_temperature_sensitive() {
        // Fig. 1 of the paper: the high-Vt branch moves more with T.
        let mut f = on_fefet();
        let on_swing = {
            let cold = f.ids(V_READ_SUB, Volt(0.15), Celsius(0.0)).value();
            let hot = f.ids(V_READ_SUB, Volt(0.15), Celsius(85.0)).value();
            hot / cold
        };
        f.force_state(PolarizationState::HighVt);
        let off_swing = {
            let cold = f.ids(V_READ_SUB, Volt(0.15), Celsius(0.0)).value();
            let hot = f.ids(V_READ_SUB, Volt(0.15), Celsius(85.0)).value();
            hot / cold
        };
        assert!(
            off_swing > on_swing,
            "high-Vt swing {off_swing} must exceed low-Vt swing {on_swing}"
        );
    }

    #[test]
    fn saturation_read_conducts_strongly() {
        let f = on_fefet();
        let i_sat = f.ids(V_READ_SAT, Volt(1.0), ROOM).value();
        let i_sub = f.ids(V_READ_SUB, Volt(1.0), ROOM).value();
        assert!(i_sat / i_sub > 50.0, "saturation read must be far larger");
    }

    #[test]
    fn vth_offset_shifts_current() {
        let mut f = on_fefet();
        let nominal = f.ids(V_READ_SUB, Volt(0.15), ROOM).value();
        f.set_vth_offset(Volt(0.054));
        let slow = f.ids(V_READ_SUB, Volt(0.15), ROOM).value();
        f.set_vth_offset(Volt(-0.054));
        let fast = f.ids(V_READ_SUB, Volt(0.15), ROOM).value();
        assert!(slow < nominal && nominal < fast);
        // ±54 mV in subthreshold ≈ ±0.7 decade: a strong effect.
        assert!(fast / slow > 10.0);
    }

    #[test]
    fn intermediate_polarization_is_recognized() {
        let mut f = Fefet::new(FefetParams::paper_default());
        f.set_polarization(0.0);
        assert_eq!(f.stored_state(), None);
        let vth_mid = f.effective_vth(ROOM).value();
        f.force_state(PolarizationState::LowVt);
        let vth_low = f.effective_vth(ROOM).value();
        f.force_state(PolarizationState::HighVt);
        let vth_high = f.effective_vth(ROOM).value();
        assert!(vth_low < vth_mid && vth_mid < vth_high);
        assert!((vth_mid - 0.5 * (vth_low + vth_high)).abs() < 1e-9);
    }

    #[test]
    fn empty_memory_window_rejected() {
        let mut p = FefetParams::paper_default();
        p.high_vt = Volt(0.3);
        assert!(matches!(
            Fefet::try_new(p),
            Err(DeviceError::EmptyMemoryWindow { .. })
        ));
    }

    #[test]
    fn memory_window_matches_params() {
        let p = FefetParams::paper_default();
        assert!((p.memory_window().value() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn read_disturb_is_negligible() {
        // Millions of subthreshold reads must not flip the state.
        let mut f = Fefet::new(FefetParams::paper_default());
        f.force_state(PolarizationState::HighVt);
        for _ in 0..1000 {
            f.apply_pulse(ProgramPulse {
                amplitude: Volt(0.35),
                width: Second(10e-9),
            });
        }
        assert_eq!(f.stored_state(), Some(PolarizationState::HighVt));
    }

    #[test]
    fn bit_round_trip() {
        assert_eq!(PolarizationState::from_bit(true), PolarizationState::LowVt);
        assert_eq!(
            PolarizationState::from_bit(false),
            PolarizationState::HighVt
        );
        assert!(PolarizationState::LowVt.bit());
        assert!(!PolarizationState::HighVt.bit());
    }
}
