//! Property-based tests of the device models: monotonicities, bounds,
//! and hysteresis invariants that must hold at every bias point.

use ferrocim_device::preisach::{Preisach, PreisachParams};
use ferrocim_device::{Fefet, FefetParams, MosfetModel, MosfetParams, PolarizationState};
use ferrocim_units::{Celsius, Second, Volt};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Drain current is finite and non-negative for forward bias at any
    /// operating point in the usable envelope.
    #[test]
    fn mosfet_current_is_finite_and_forward_positive(
        vgs in -0.5f64..2.0,
        vds in 0.0f64..2.0,
        t in 0.0f64..85.0,
        wl in 0.5f64..60.0,
    ) {
        let m = MosfetModel::new(MosfetParams::nmos_14nm().with_wl_ratio(wl));
        let i = m.ids(Volt(vgs), Volt(vds), Celsius(t)).value();
        prop_assert!(i.is_finite());
        prop_assert!(i >= -1e-18, "negative forward current {i}");
    }

    /// More gate drive never reduces the current (monotone in V_GS).
    #[test]
    fn mosfet_current_is_monotone_in_vgs(
        vgs in -0.2f64..1.5,
        delta in 0.001f64..0.3,
        vds in 0.01f64..1.5,
        t in 0.0f64..85.0,
    ) {
        let m = MosfetModel::new(MosfetParams::nmos_14nm());
        let lo = m.ids(Volt(vgs), Volt(vds), Celsius(t)).value();
        let hi = m.ids(Volt(vgs + delta), Volt(vds), Celsius(t)).value();
        prop_assert!(hi >= lo, "I({}) = {hi} < I({vgs}) = {lo}", vgs + delta);
    }

    /// Terminal-swap antisymmetry: I(vgs, vds) = −I(vgd, −vds).
    #[test]
    fn mosfet_is_source_drain_symmetric(
        vgs in -0.2f64..1.2,
        vds in -1.0f64..1.0,
        t in 0.0f64..85.0,
    ) {
        let m = MosfetModel::new(MosfetParams::nmos_14nm());
        let fwd = m.ids(Volt(vgs), Volt(vds), Celsius(t)).value();
        let rev = m.ids(Volt(vgs - vds), Volt(-vds), Celsius(t)).value();
        prop_assert!(
            (fwd + rev).abs() <= 1e-9 * fwd.abs().max(1e-15),
            "fwd {fwd}, rev {rev}"
        );
    }

    /// The analytic gm matches finite differences everywhere.
    #[test]
    fn mosfet_gm_matches_finite_difference(
        vgs in 0.0f64..1.2,
        vds in 0.05f64..1.2,
        t in 0.0f64..85.0,
    ) {
        let m = MosfetModel::new(MosfetParams::nmos_14nm());
        let s = m.evaluate(Volt(vgs), Volt(vds), Celsius(t));
        let h = 1e-7;
        let fd = (m.ids(Volt(vgs + h), Volt(vds), Celsius(t)).value()
            - m.ids(Volt(vgs - h), Volt(vds), Celsius(t)).value())
            / (2.0 * h);
        prop_assert!(
            (s.gm.value() - fd).abs() <= 1e-4 * fd.abs().max(1e-12),
            "gm {} vs fd {fd}",
            s.gm.value()
        );
    }

    /// Polarization stays in [-1, 1] under any pulse train, and
    /// saturating pulses drive it to the rails.
    #[test]
    fn preisach_polarization_is_bounded(
        pulses in prop::collection::vec((-5.0f64..5.0, 1e-9f64..1e-6), 0..20),
    ) {
        let mut p = Preisach::new(PreisachParams::default());
        for (v, t) in pulses {
            p.apply_pulse(Volt(v), Second(t));
            let pol = p.polarization();
            prop_assert!((-1.0..=1.0).contains(&pol), "P = {pol}");
        }
        p.apply_pulse(Volt(5.0), Second(1e-5));
        prop_assert!(p.polarization() > 0.99);
        p.apply_pulse(Volt(-5.0), Second(1e-5));
        prop_assert!(p.polarization() < -0.99);
    }

    /// Return-point memory: any excursion below a previous maximum field
    /// is wiped out when the maximum is re-applied quasi-statically.
    #[test]
    fn preisach_wipeout(
        v_max in 1.0f64..4.0,
        excursion in -4.0f64..0.5,
    ) {
        let mut p = Preisach::new(PreisachParams::default());
        p.apply_quasi_static(Volt(v_max));
        let reference = p.polarization();
        p.apply_quasi_static(Volt(excursion.min(v_max - 0.1)));
        p.apply_quasi_static(Volt(v_max));
        prop_assert!((p.polarization() - reference).abs() < 1e-12);
    }

    /// FeFET threshold interpolates monotonically with polarization.
    #[test]
    fn fefet_vth_monotone_in_polarization(
        p1 in -1.0f64..1.0,
        p2 in -1.0f64..1.0,
        t in 0.0f64..85.0,
    ) {
        let mut f = Fefet::new(FefetParams::paper_default());
        f.set_polarization(p1);
        let v1 = f.effective_vth(Celsius(t)).value();
        f.set_polarization(p2);
        let v2 = f.effective_vth(Celsius(t)).value();
        // Higher polarization (more 'up') → lower threshold.
        if p1 < p2 {
            prop_assert!(v1 >= v2 - 1e-12);
        } else {
            prop_assert!(v2 >= v1 - 1e-12);
        }
    }

    /// The ON/OFF ratio at the subthreshold read point stays large at
    /// every temperature in range and under ±3σ variation.
    #[test]
    fn fefet_on_off_ratio_is_robust(
        t in 0.0f64..85.0,
        offset_mv in -160.0f64..160.0,
    ) {
        let mut f = Fefet::new(FefetParams::paper_default());
        f.set_vth_offset(Volt(offset_mv * 1e-3));
        f.force_state(PolarizationState::LowVt);
        let ratio = f.on_off_ratio(Volt(0.35), Volt(0.15), Celsius(t));
        prop_assert!(ratio > 1e3, "ratio {ratio} at {t} C, offset {offset_mv} mV");
    }
}
