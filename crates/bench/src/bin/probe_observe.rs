//! Probe: cost and teeth of the observability layer (DESIGN.md §18).
//!
//! Three claims are measured on real workloads:
//!
//! 1. **Cost** — always-on flight recording must stay under 2%
//!    wall-clock overhead on the 256-cell row DC readout. The same
//!    solve is timed at `iterations` detail against a
//!    [`NoopRecorder`] and against a [`FlightRecorder`] ring, reps
//!    interleaved so machine-load drift cannot inflate one side
//!    (exactly the `probe_health` discipline).
//! 2. **Incident dump** — a chaos backend with a 100% blowup rate is
//!    served behind a tight circuit breaker and a flight recorder
//!    armed with [`DumpOn::BreakerOpen`]. The trip must leave an
//!    atomic `ferrocim-trace-v1` dump behind, and replaying that dump
//!    through `trace summary` ([`Summary::of`]) must recover the
//!    `ServeBreakerOpen` event and the per-tenant rollup — the
//!    post-incident black box actually answers questions.
//! 3. **Cardinality** — tenant labels are client-controlled, so a
//!    server whose aggregator caps them at 4 is driven with 9 distinct
//!    tenants; `/metrics` must expose per-tenant `_bucket`/`_sum`/
//!    `_count` latency series for at most cap + 1 labels, with the
//!    overflow collapsed into `other`.
//!
//! The gate bounds live in `baselines/probe_observe.json` (pass with
//! `--gate <path>`); like the serve gate these are hand-set limits,
//! because wall-clock overhead is machine-dependent. `--dump-dir DIR`
//! overrides where the incident dump lands (default
//! `target/flight-dumps/probe_observe`). Dumps
//! `results/probe_observe.json`.
//!
//! [`NoopRecorder`]: ferrocim_telemetry::NoopRecorder
//! [`FlightRecorder`]: ferrocim_telemetry::FlightRecorder
//! [`DumpOn::BreakerOpen`]: ferrocim_telemetry::DumpOn
//! [`Summary::of`]: ferrocim_traceview::Summary::of

use ferrocim_bench::schema::{
    ObserveCardinality, ObserveDump, ObserveGateBounds, ObserveOverhead, ObserveProbe,
};
use ferrocim_bench::{dump_json, Trace};
use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::{mac_operands, ArrayConfig, CimArray};
use ferrocim_serve::{
    http_request, BreakerConfig, ChaosBackend, ChaosPlan, CimBackend, ServeConfig, Server,
};
use ferrocim_spice::{Circuit, DcAnalysis, SolverConfig, SpiceError, Workspace};
use ferrocim_telemetry::{
    Aggregator, DetailLevel, DumpOn, FlightRecorder, NoopRecorder, Recorder, Tee, Telemetry,
};
use ferrocim_traceview::{read_trace, Summary};
use ferrocim_units::Farad;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Row width of the timed DC workload (~1029 MNA unknowns).
const CELLS: usize = 256;

/// Paired timing repetitions; the gated overhead is the *median* of
/// the per-rep paired ratios, so up to `REPS / 2` reps may be hit by
/// load bursts without moving the verdict.
const REPS: usize = 9;

/// Solves per timed block. Blocking several solves under one clock
/// shrinks the relative cost of scheduler noise on each sample; the
/// flight-recording overhead bound (2%) is four times tighter than
/// `probe_health`'s, so single-solve samples are too jittery to gate
/// on.
const BLOCK: usize = 4;

/// Flight-recording overhead bound in percent.
const OVERHEAD_LIMIT_PCT: f64 = 2.0;

/// Tenant cap configured on the cardinality scenario's aggregator.
const TENANT_CAP: usize = 4;

/// Distinct tenants driven at the cardinality scenario (> the cap).
const CARDINALITY_TENANTS: usize = 9;

/// Upper bound on chaos requests driven while waiting for the trip.
const DUMP_REQUESTS: usize = 16;

/// Per-client socket timeout — a hang shows up as a probe error, not
/// a test timeout.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// A row array scaled to `cells` columns, as in `probe_health`.
fn scaled_array(cells: usize) -> Result<CimArray<TwoTransistorOneFefet>, ferrocim_cim::CimError> {
    let base = ArrayConfig::paper_default();
    let config = ArrayConfig {
        cells_per_row: cells,
        c_acc: Farad(cells as f64 * base.c_o.value()),
        ..base
    };
    CimArray::new(TwoTransistorOneFefet::paper_default(), config)
}

/// MNA unknowns of the netlist: non-ground nodes plus one branch
/// current per voltage source.
fn unknown_count(ckt: &Circuit) -> usize {
    let sources = ckt
        .elements()
        .iter()
        .filter(|el| matches!(el, ferrocim_spice::Element::VoltageSource { .. }))
        .count();
    ckt.node_count() - 1 + sources
}

/// Times the full DC Newton solve recording into a no-op sink and
/// into a flight-recorder ring. Each rep clocks a [`BLOCK`]-solve
/// block per side, the two sides interleaved rep-by-rep with the
/// in-pair order alternating so machine-load drift and
/// second-position effects (cache warmth, turbo decay) cannot
/// systematically charge one side, and the gated overhead is the
/// median of the per-rep paired ratios — a single load burst lands on
/// one rep's ratio and is discarded, where a best-of comparison would
/// let it decide the verdict. One untimed warmup block per side
/// precedes the clocked reps. Both handles run at `iterations` detail
/// so the per-event cost is actually exercised. Returns the best
/// per-solve wall clocks in microseconds, the ring population, and
/// the median paired overhead in percent.
fn time_recorder_pair(ckt: &Circuit) -> Result<(f64, f64, usize, f64), SpiceError> {
    let noop = Telemetry::to(NoopRecorder).with_detail(DetailLevel::Iterations);
    let ring = Arc::new(FlightRecorder::new(4096));
    let flight = Telemetry::new(ring.clone()).with_detail(DetailLevel::Iterations);
    let timed_block = |tele: &Telemetry| -> Result<f64, SpiceError> {
        let start = Instant::now();
        for _ in 0..BLOCK {
            // A fresh workspace per solve so each timing includes the
            // full symbolic + numeric cost, not a warm rerun.
            let mut ws = Workspace::with_solver(SolverConfig::sparse());
            DcAnalysis::new(ckt)
                .with_recorder(tele.clone())
                .solve_in(&mut ws)?;
        }
        Ok(start.elapsed().as_secs_f64())
    };
    timed_block(&noop)?;
    timed_block(&flight)?;
    let mut best_noop = f64::INFINITY;
    let mut best_flight = f64::INFINITY;
    let mut ratios_pct = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        let (t_noop, t_flight) = if rep % 2 == 0 {
            let t_noop = timed_block(&noop)?;
            let t_flight = timed_block(&flight)?;
            (t_noop, t_flight)
        } else {
            let t_flight = timed_block(&flight)?;
            let t_noop = timed_block(&noop)?;
            (t_noop, t_flight)
        };
        best_noop = best_noop.min(t_noop);
        best_flight = best_flight.min(t_flight);
        ratios_pct.push((t_flight - t_noop) / t_noop * 100.0);
    }
    ratios_pct.sort_by(f64::total_cmp);
    let median_pct = ratios_pct[REPS / 2];
    Ok((
        best_noop / BLOCK as f64 * 1e6,
        best_flight / BLOCK as f64 * 1e6,
        ring.len(),
        median_pct,
    ))
}

fn mac_body(tenant: &str, path: &str) -> Vec<u8> {
    format!(
        r#"{{"tenant":"{tenant}","inputs":[true,true,true,false,false,true,false,false],
            "weights":[true,true,false,true,false,true,false,false],
            "timeout_ms":10000,"path":"{path}","temp_c":27.0}}"#
    )
    .into_bytes()
}

/// `--flag value` or `--flag=value` from the raw argument list.
fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            return iter.next().cloned();
        }
        if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.to_string());
        }
    }
    None
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = Trace::from_args()?;
    let args: Vec<String> = std::env::args().collect();
    let gate: ObserveGateBounds = match parse_flag(&args, "--gate") {
        Some(path) => serde_json::from_str(&std::fs::read_to_string(&path)?)
            .map_err(|e| format!("gate bounds {path}: {e}"))?,
        None => ObserveGateBounds {
            max_overhead_pct: OVERHEAD_LIMIT_PCT,
            min_dump_breaker_opens: 1,
            max_distinct_tenants: TENANT_CAP + 1,
        },
    };
    let dump_dir = parse_flag(&args, "--dump-dir")
        .unwrap_or_else(|| "target/flight-dumps/probe_observe".to_string());
    println!("# Probe — observability: recording cost, incident dumps, label cardinality\n");

    // Claim 1: cost. The 256-cell row DC readout recorded into a no-op
    // sink versus a flight-recorder ring.
    let array = scaled_array(CELLS)?;
    let (weights, inputs) = mac_operands(CELLS, CELLS / 2 + 1);
    let (ckt, _acc, _t_stop) = array.readout_circuit(&weights, &inputs)?;
    let unknowns = unknown_count(&ckt);
    let (noop_us, flight_us, flight_events, overhead_pct) = time_recorder_pair(&ckt)?;
    let overhead = ObserveOverhead {
        cells_per_row: CELLS,
        unknowns,
        reps: REPS,
        noop_us,
        flight_us,
        flight_events,
        overhead_pct,
        limit_pct: gate.max_overhead_pct,
    };
    println!(
        "{CELLS}-cell row DC readout ({unknowns} unknowns, {REPS} paired {BLOCK}-solve blocks, \
         iterations detail):"
    );
    println!("  no-op recorder    : {noop_us:.1} us/solve");
    println!("  flight recorder   : {flight_us:.1} us/solve  ({flight_events} events in the ring)");
    println!(
        "  median paired overhead = {:.2} % (limit {} %)",
        overhead.overhead_pct, overhead.limit_pct
    );

    // One calibrated backend shared by both serving scenarios.
    let agg = Arc::new(Aggregator::new());
    std::fs::create_dir_all(&dump_dir)?;
    let flight =
        Arc::new(FlightRecorder::new(1024).with_dump_dir(&dump_dir, &[DumpOn::BreakerOpen]));
    let tele = Telemetry::to(Tee::new(vec![
        agg.clone() as Arc<dyn Recorder>,
        flight.clone() as Arc<dyn Recorder>,
        Arc::new(trace.telemetry()),
    ]));
    let started = Instant::now();
    let backend = Arc::new(CimBackend::new(tele.clone(), 0)?);
    println!(
        "\ncalibrated the surrogate store (all-ones curve, 0-85 °C) in {:.0} ms",
        started.elapsed().as_secs_f64() * 1e3
    );

    // Claim 2: incident dump. Every live solve blows up, the breaker
    // trips, and the armed flight recorder must leave a parseable
    // black-box dump behind.
    let server = Server::start_observed(
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            breaker: BreakerConfig {
                window: 8,
                min_samples: 4,
                trip_error_rate: 0.5,
                cooldown: Duration::from_millis(200),
                ..BreakerConfig::default()
            },
            ..ServeConfig::default()
        },
        Arc::new(ChaosBackend::new(
            backend.clone(),
            ChaosPlan {
                seed: 0x0B5E_12EE,
                blowup_probability: 1.0,
                uncertified_probability: 0.0,
                panic_probability: 0.0,
            },
        )),
        tele.clone(),
        agg.clone(),
        Some(flight.clone()),
    )?;
    let addr = server.addr();
    let mut driven = 0usize;
    for i in 0..DUMP_REQUESTS {
        let body = mac_body(&format!("incident-{}", i % 3), "analytic");
        http_request(addr, "POST", "/v1/mac", &body, CLIENT_TIMEOUT)
            .map_err(|e| format!("chaos request {i}: {e}"))?;
        driven += 1;
        if agg.counts().serve_breaker_open >= 1 && flight.dumps_written() >= 1 {
            break;
        }
    }
    server.shutdown();
    let dump_path = flight
        .last_dump()
        .ok_or("the breaker tripped but no flight dump was written")?;
    let events = read_trace(&dump_path)?;
    let summary = Summary::of(&events);
    let summary_text = summary.render_text();
    let dump = ObserveDump {
        requests: driven,
        breaker_opens: agg.counts().serve_breaker_open,
        dumps_written: flight.dumps_written(),
        dump_path: dump_path.display().to_string(),
        dump_events: summary.events,
        dump_serve_breaker_open: summary.counts.serve_breaker_open,
        dump_tenants: summary.tenants.len(),
    };
    println!(
        "chaos burst: {} request(s), {} breaker trip(s), {} dump(s) written",
        dump.requests, dump.breaker_opens, dump.dumps_written
    );
    println!(
        "  {} replays as {} event(s): serve_breaker_open {} across {} tenant(s)",
        dump.dump_path, dump.dump_events, dump.dump_serve_breaker_open, dump.dump_tenants
    );

    // Claim 3: cardinality. Nine tenants against a cap of four; the
    // exposition must stay bounded with the overflow in `other`.
    let agg_cap = Arc::new(Aggregator::new().with_serve_tenant_cap(TENANT_CAP));
    let tele_cap = Telemetry::to(Tee::new(vec![
        agg_cap.clone() as Arc<dyn Recorder>,
        Arc::new(trace.telemetry()),
    ]));
    let server = Server::start_observed(
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            ..ServeConfig::default()
        },
        backend.clone(),
        tele_cap,
        agg_cap.clone(),
        None,
    )?;
    let addr = server.addr();
    for i in 0..CARDINALITY_TENANTS {
        let body = mac_body(&format!("tenant-{i}"), "analytic");
        let resp = http_request(addr, "POST", "/v1/mac", &body, CLIENT_TIMEOUT)
            .map_err(|e| format!("cardinality request {i}: {e}"))?;
        if resp.status != 200 {
            return Err(format!("cardinality request {i} returned {}", resp.status).into());
        }
    }
    let metrics = http_request(addr, "GET", "/metrics", b"", CLIENT_TIMEOUT)
        .map_err(|e| format!("metrics scrape: {e}"))?;
    server.shutdown();
    let text = String::from_utf8_lossy(&metrics.body).to_string();
    let mut tenants: Vec<&str> = text
        .lines()
        .filter(|line| line.starts_with("ferrocim_serve_requests_total{tenant=\""))
        .filter_map(|line| line.split("tenant=\"").nth(1)?.split('"').next())
        .collect();
    tenants.sort_unstable();
    tenants.dedup();
    let cardinality = ObserveCardinality {
        tenant_cap: TENANT_CAP,
        tenants_driven: CARDINALITY_TENANTS,
        distinct_request_series: tenants.len(),
        other_present: tenants.contains(&"other"),
        bucket_series_present: text.contains("ferrocim_serve_request_latency_ms_bucket{tenant=\""),
        sum_series_present: text.contains("ferrocim_serve_request_latency_ms_sum{tenant=\""),
        count_series_present: text.contains("ferrocim_serve_request_latency_ms_count{tenant=\""),
    };
    println!(
        "\ncardinality: {} tenants through a cap of {} -> {} request series \
         (other: {}, bucket/sum/count: {}/{}/{})",
        cardinality.tenants_driven,
        cardinality.tenant_cap,
        cardinality.distinct_request_series,
        cardinality.other_present,
        cardinality.bucket_series_present,
        cardinality.sum_series_present,
        cardinality.count_series_present
    );

    // The observability contract, then the tunable gate bounds.
    let mut violations = Vec::new();
    if overhead.flight_events == 0 {
        violations.push("overhead: the flight recorder never saw an event".to_string());
    }
    if overhead.overhead_pct >= gate.max_overhead_pct {
        violations.push(format!(
            "overhead: flight recording costs {:.2} % (limit {} %)",
            overhead.overhead_pct, gate.max_overhead_pct
        ));
    }
    if dump.dump_events == 0 {
        violations.push("dump: the incident dump replayed as zero events".to_string());
    }
    if dump.dump_serve_breaker_open < gate.min_dump_breaker_opens {
        violations.push(format!(
            "dump: {} ServeBreakerOpen event(s) in the dump (gate floor {})",
            dump.dump_serve_breaker_open, gate.min_dump_breaker_opens
        ));
    }
    if !summary_text.contains("serve_breaker_open") {
        violations.push("dump: trace summary does not surface serve_breaker_open".to_string());
    }
    if dump.dump_tenants == 0 {
        violations.push("dump: the per-tenant rollup of the dump is empty".to_string());
    }
    if cardinality.distinct_request_series > gate.max_distinct_tenants {
        violations.push(format!(
            "cardinality: {} tenant series exceed the {} bound",
            cardinality.distinct_request_series, gate.max_distinct_tenants
        ));
    }
    if !cardinality.other_present {
        violations.push("cardinality: the overflow never collapsed into `other`".to_string());
    }
    if !cardinality.bucket_series_present
        || !cardinality.sum_series_present
        || !cardinality.count_series_present
    {
        violations.push("cardinality: a per-tenant latency series is missing".to_string());
    }

    let out = ObserveProbe {
        overhead,
        dump,
        cardinality,
        gate,
        gate_passed: violations.is_empty(),
    };
    let path = dump_json("probe_observe", &out)?;
    println!("\nwrote {}", path.display());
    trace.finish()?;
    if !out.gate_passed {
        return Err(format!(
            "observability contract violated:\n  {}",
            violations.join("\n  ")
        )
        .into());
    }
    println!("observability contract held: recording cheap, dump parseable, cardinality bounded");
    Ok(())
}
