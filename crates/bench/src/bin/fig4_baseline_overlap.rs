//! **E4 / Fig. 4** — MAC output-voltage ranges of the subthreshold
//! 1FeFET-1R 8-cell array over 0–85 °C: adjacent levels overlap, which
//! is the computation-failure mode the proposed cell fixes.

use ferrocim_bench::schema::BaselineOverlap;
use ferrocim_bench::{dump_json, print_table};
use ferrocim_cim::cells::OneFefetOneR;
use ferrocim_cim::metrics::RangeTable;
use ferrocim_cim::{ArrayConfig, CimArray};
use ferrocim_spice::sweep::temperature_sweep;
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    println!("# Fig. 4 — subthreshold 1FeFET-1R array output ranges, 0-85 C\n");
    let array = CimArray::new(OneFefetOneR::subthreshold(), ArrayConfig::paper_default())?
        .with_recorder(trace.telemetry());
    let table = RangeTable::measure(&array, &temperature_sweep(18))?;
    let rows: Vec<Vec<String>> = table
        .ranges()
        .iter()
        .map(|r| {
            let overlap_next = if r.mac < table.max_mac() && table.nmr(r.mac) < 0.0 {
                "OVERLAPS next"
            } else {
                ""
            };
            vec![
                format!("MAC={}", r.mac),
                format!("{:.2} mV", r.lo.value() * 1e3),
                format!("{:.2} mV", r.hi.value() * 1e3),
                overlap_next.to_string(),
            ]
        })
        .collect();
    print_table(&["level", "lowest V_acc", "highest V_acc", "note"], &rows);
    let (idx, nmr) = table.nmr_min();
    println!("\nNMR_min = NMR_{idx} = {nmr:.3}");
    println!(
        "has_overlap = {} (paper: overlapping outputs cause computation errors)",
        table.has_overlap()
    );
    assert!(
        table.has_overlap(),
        "shape check: the subthreshold baseline array must overlap over 0-85 C"
    );
    let out = BaselineOverlap {
        nmr_min: nmr,
        nmr_min_index: idx,
        has_overlap: table.has_overlap(),
        ranges_mv: table
            .ranges()
            .iter()
            .map(|r| (r.mac, r.lo.value() * 1e3, r.hi.value() * 1e3))
            .collect(),
    };
    let path = dump_json("fig4_baseline_overlap", &out)?;
    println!("wrote {}", path.display());
    trace.finish()?;
    Ok(())
}
