//! Fault-injection probe: readout accuracy and noise margin of the
//! proposed 2T-1FeFET crossbar as the cell fault rate grows.
//!
//! For each fault rate a deterministic [`FaultPlan`] (seed 42) is
//! installed into a 4×8 crossbar and a fixed batch of input vectors is
//! evaluated through the fault-tolerant batched matrix–vector path at
//! three temperatures. Every digital readout is scored against the
//! fault-free true count, and an *empirical* worst-case noise margin is
//! computed from the observed analog outputs grouped by true count (the
//! analytic [`ferrocim_cim::metrics::RangeTable`] assumes identical
//! cells, which faults break). Rerunning the probe always prints the
//! same table.

use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::{ArrayConfig, CimArray, Crossbar, FaultPlan};
use ferrocim_spice::FailurePolicy;
use ferrocim_units::Celsius;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 4;
const SEED: u64 = 42;
const RATES: [f64; 5] = [0.0, 0.02, 0.05, 0.1, 0.2];
const TEMPS: [Celsius; 3] = [Celsius(0.0), Celsius(27.0), Celsius(85.0)];

/// The worst-case noise margin rate over adjacent observed true-count
/// levels: `min (lo_{k+1} - hi_k) / (hi_k - lo_k)`, computed from the
/// measured analog ranges (skipping counts never observed).
fn empirical_nmr_min(ranges: &[Option<(f64, f64)>]) -> Option<f64> {
    let observed: Vec<(f64, f64)> = ranges.iter().filter_map(|r| *r).collect();
    observed
        .windows(2)
        .map(|w| {
            let (lo_k, hi_k) = w[0];
            let (lo_next, _) = w[1];
            (lo_next - hi_k) / (hi_k - lo_k).max(1e-12)
        })
        .min_by(f64::total_cmp)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    let config = ArrayConfig::paper_default();
    let cols = config.cells_per_row;
    let array = CimArray::new(TwoTransistorOneFefet::paper_default(), config)?
        .with_recorder(trace.telemetry());
    let mut xbar = Crossbar::new(array, ROWS)?;

    // Deterministic weights and inputs, independent of the fault plan.
    let mut rng = StdRng::seed_from_u64(SEED);
    for r in 0..ROWS {
        let weights: Vec<bool> = (0..cols).map(|_| rng.random::<f64>() < 0.5).collect();
        xbar.program_row(r, &weights)?;
    }
    let inputs: Vec<Vec<bool>> = (0..16)
        .map(|_| (0..cols).map(|_| rng.random::<f64>() < 0.5).collect())
        .collect();

    println!(
        "fault-rate sweep: {ROWS}x{cols} 2T-1FeFET crossbar, seed {SEED}, \
         16 input vectors x {} temperatures",
        TEMPS.len()
    );
    println!("rate    faults  readout-acc  mean|err|  empirical NMR_min");
    for rate in RATES {
        let plan = FaultPlan::random(ROWS, cols, rate, SEED)?;
        let injected = plan.fault_count();
        let faulted = xbar.clone().with_fault_plan(plan)?;

        let mut reads = 0usize;
        let mut exact = 0usize;
        let mut abs_err = 0usize;
        // Observed analog range per true count, pooled over rows/temps.
        let mut ranges: Vec<Option<(f64, f64)>> = vec![None; cols + 1];
        for temp in TEMPS {
            let report = faulted.try_matvec_batch(
                &inputs,
                temp,
                &FailurePolicy::SkipAndReport { max_failures: 0 },
            )?;
            for (x, out) in inputs.iter().zip(report.values()) {
                for r in 0..ROWS {
                    let truth = faulted
                        .row(r)
                        .iter()
                        .zip(x)
                        .filter(|(w, &on)| w.bit() && on)
                        .count();
                    reads += 1;
                    if out.digital[r] == truth {
                        exact += 1;
                    }
                    abs_err += out.digital[r].abs_diff(truth);
                    let v = out.analog[r].value();
                    let (lo, hi) = ranges[truth].unwrap_or((v, v));
                    ranges[truth] = Some((lo.min(v), hi.max(v)));
                }
            }
        }

        let nmr = empirical_nmr_min(&ranges)
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "n/a".to_string());
        println!(
            "{rate:<7} {injected:<7} {:<12.4} {:<10.4} {nmr}",
            exact as f64 / reads as f64,
            abs_err as f64 / reads as f64,
        );
    }
    trace.finish()?;
    Ok(())
}
