//! Array-level calibration driver: tunes the 2T-1FeFET cell against the
//! whole-row NMR_min objective and prints the resulting level table.

use ferrocim_cim::metrics::RangeTable;
use ferrocim_cim::tune::ArrayTuneProblem;
use ferrocim_cim::CimArray;
use ferrocim_device::variation::VariationModel;
use ferrocim_spice::sweep::{temperature_sweep, warm_temperature_sweep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let problem = ArrayTuneProblem::paper_default();
    let outcome = problem.run(budget)?;
    println!("evaluations: {}", outcome.evaluations);
    println!("NMR_min (coarse grid): {:.4}", -outcome.objective);
    for (p, v) in problem.params().iter().zip(&outcome.best) {
        println!("  {:>14} = {v:.4}", p.name);
    }
    // Validate on a fine grid, full and warm ranges.
    let array = CimArray::new(problem.cell_for(&outcome.best), problem.config)?
        .with_recorder(trace.telemetry());
    let full = RangeTable::measure(&array, &temperature_sweep(18))?;
    let warm = RangeTable::measure(&array, &warm_temperature_sweep(14))?;
    let robust = RangeTable::measure_with_variation(
        &array,
        &temperature_sweep(8),
        &VariationModel::paper_default(),
        2.0,
    )?;
    let (ir, nr) = robust.nmr_min();
    println!("fine grid: variation-aware NMR_min(0-85C, 2 sigma) = NMR_{ir} = {nr:.3}");
    let (s_on, s_off) = array.cell_sigma(
        ferrocim_units::Celsius(27.0),
        &VariationModel::paper_default(),
    )?;
    println!("cell sigma at 27C: on {}, off {}", s_on, s_off);
    let (i_full, nmr_full) = full.nmr_min();
    let (i_warm, nmr_warm) = warm.nmr_min();
    println!("fine grid: NMR_min(0-85C)  = NMR_{i_full} = {nmr_full:.3}");
    println!("fine grid: NMR_min(20-85C) = NMR_{i_warm} = {nmr_warm:.3}");
    println!("level ranges over 0-85C:");
    for r in full.ranges() {
        println!(
            "  MAC={}: [{:.2} mV, {:.2} mV]",
            r.mac,
            r.lo.value() * 1e3,
            r.hi.value() * 1e3
        );
    }
    trace.finish()?;
    Ok(())
}
