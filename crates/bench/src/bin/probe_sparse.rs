//! Probe: sparse KLU-style MNA factorization vs. the dense LU baseline
//! over a row-width sweep (DESIGN.md §14).
//!
//! Builds the full-row MAC readout netlist at widths from the paper's
//! 8 cells up to a VGG-scale 512, DC-solves each through both
//! [`ferrocim_spice::SolverConfig`] backends, and reports wall clock,
//! the dense-to-sparse speedup, and the max-norm node-voltage parity.
//! The dense path is skipped above [`DENSE_LIMIT`] cells where its
//! cubic cost stops being worth timing; the sweep tops out with a
//! sparse-only 512-cell row plus one end-to-end 512-cell transient MAC
//! whose factor counters demonstrate the single symbolic analysis being
//! reused across every Newton iteration. Dumps
//! `results/probe_sparse.json`.

use ferrocim_bench::schema::{LargeRowMac, SparseProbe, SparseWidthPoint};
use ferrocim_bench::{dump_json, print_table};
use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::{mac_operands, ArrayConfig, CimArray, MacRequest};
use ferrocim_spice::{Circuit, DcAnalysis, NodeId, SolverConfig, Workspace};
use ferrocim_units::Farad;
use std::time::Instant;

/// Row widths swept, from the paper's array to a VGG-scale layer row.
const WIDTHS: &[usize] = &[8, 16, 32, 64, 128, 256, 512];

/// Widest row the dense backend is timed at; past this its cubic
/// factorization dominates the probe's runtime without adding signal.
const DENSE_LIMIT: usize = 256;

/// Max-norm node-voltage disagreement tolerated between the backends.
const PARITY_BOUND: f64 = 1e-10;

/// A row array scaled to `cells` columns: `C_acc` grows with the row
/// (≈1 fF per cell, as the shared capacitor would in layout) and the
/// timestep stays at the paper default.
fn scaled_array(cells: usize) -> Result<CimArray<TwoTransistorOneFefet>, ferrocim_cim::CimError> {
    let base = ArrayConfig::paper_default();
    let config = ArrayConfig {
        cells_per_row: cells,
        c_acc: Farad(cells as f64 * base.c_o.value()),
        ..base
    };
    CimArray::new(TwoTransistorOneFefet::paper_default(), config)
}

/// Every distinct node referenced by the circuit's elements (ground
/// excluded), for the parity comparison.
fn circuit_nodes(ckt: &Circuit) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = ckt
        .elements()
        .iter()
        .flat_map(|el| el.nodes())
        .filter(|n| !n.is_ground())
        .collect();
    nodes.sort();
    nodes.dedup();
    nodes
}

/// MNA unknowns of the netlist: non-ground nodes plus one branch
/// current per voltage source.
fn unknown_count(ckt: &Circuit) -> usize {
    let sources = ckt
        .elements()
        .iter()
        .filter(|el| matches!(el, ferrocim_spice::Element::VoltageSource { .. }))
        .count();
    ckt.node_count() - 1 + sources
}

/// Times the full DC Newton solve under one backend, returning the
/// best-of-`reps` wall clock and the converged operating point.
fn time_dc(
    ckt: &Circuit,
    config: SolverConfig,
    reps: usize,
) -> Result<(f64, ferrocim_spice::OperatingPoint), ferrocim_spice::SpiceError> {
    let mut best = f64::INFINITY;
    let mut op = None;
    for _ in 0..reps {
        // A fresh workspace per rep so each timing includes the
        // backend's full symbolic + numeric cost, not a warm rerun.
        let mut ws = Workspace::with_solver(config);
        let start = Instant::now();
        let solved = DcAnalysis::new(ckt).solve_in(&mut ws)?;
        best = best.min(start.elapsed().as_secs_f64());
        op = Some(solved);
    }
    Ok((best * 1e6, op.expect("reps > 0")))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    println!("# Probe — sparse vs. dense MNA factorization over row width\n");

    let mut widths = Vec::with_capacity(WIDTHS.len());
    let mut parity_ok = true;
    let mut rows = Vec::new();
    for &cells in WIDTHS {
        let array = scaled_array(cells)?;
        let (weights, inputs) = mac_operands(cells, cells / 2 + 1);
        let (ckt, _acc, _t_stop) = array.readout_circuit(&weights, &inputs)?;
        let unknowns = unknown_count(&ckt);
        let reps = if cells <= 64 { 3 } else { 1 };
        let (sparse_us, sparse_op) = time_dc(&ckt, SolverConfig::sparse(), reps)?;
        let (dense_us, max_delta_v) = if cells <= DENSE_LIMIT {
            let (us, dense_op) = time_dc(&ckt, SolverConfig::dense(), reps)?;
            let delta = circuit_nodes(&ckt)
                .iter()
                .map(|&n| (dense_op.voltage(n).value() - sparse_op.voltage(n).value()).abs())
                .fold(0.0f64, f64::max);
            parity_ok &= delta <= PARITY_BOUND;
            (Some(us), Some(delta))
        } else {
            (None, None)
        };
        let speedup = dense_us.map(|d| d / sparse_us);
        rows.push(vec![
            cells.to_string(),
            unknowns.to_string(),
            dense_us.map_or("-".into(), |u| format!("{u:.1}")),
            format!("{sparse_us:.1}"),
            speedup.map_or("-".into(), |s| format!("{s:.2}x")),
            max_delta_v.map_or("-".into(), |d| format!("{d:.2e}")),
        ]);
        widths.push(SparseWidthPoint {
            cells_per_row: cells,
            unknowns,
            dense_wall_us: dense_us,
            sparse_wall_us: sparse_us,
            speedup,
            max_delta_v,
        });
    }
    print_table(
        &[
            "cells",
            "unknowns",
            "dense [us]",
            "sparse [us]",
            "speedup",
            "max |dV|",
        ],
        &rows,
    );
    println!(
        "\nparity bound {PARITY_BOUND:.0e}: {}",
        if parity_ok { "ok" } else { "VIOLATED" }
    );

    // End-to-end: one VGG-scale row simulated as a single transient
    // MAC through the sparse backend. The factor counters prove the
    // symbolic analysis is reused across every Newton iteration and
    // step: one analysis per switch phase (the EN switches closing at
    // the share phase genuinely changes the matrix pattern) against
    // hundreds of numeric refactorizations.
    let cells = *WIDTHS.last().expect("widths non-empty");
    let array = scaled_array(cells)?.with_recorder(trace.telemetry());
    let (weights, inputs) = mac_operands(cells, cells / 2 + 1);
    let request = MacRequest::new(&inputs).weights(&weights);
    let mut ws = Workspace::with_solver(SolverConfig::sparse());
    let start = Instant::now();
    let out = array.run_in(&request, &mut ws)?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let (symbolic, numeric) = ws
        .sparse_factor_counts()
        .expect("the sparse backend was selected");
    println!(
        "\n{cells}-cell transient MAC: V_acc = {:.3} mV (expected count {}), \
         {wall_ms:.1} ms, {symbolic} symbolic / {numeric} numeric factorizations",
        out.v_acc.value() * 1e3,
        out.expected,
    );

    let probe = SparseProbe {
        widths,
        parity_bound: PARITY_BOUND,
        parity_ok,
        large_row: LargeRowMac {
            cells_per_row: cells,
            v_acc_mv: out.v_acc.value() * 1e3,
            expected: out.expected,
            wall_ms,
            symbolic_analyses: symbolic,
            numeric_factorizations: numeric,
        },
    };
    let path = dump_json("probe_sparse", &probe)?;
    println!("wrote {}", path.display());
    trace.finish()?;
    Ok(())
}
