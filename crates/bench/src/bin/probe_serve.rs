//! Probe: the serving layer's robustness contract under load
//! (DESIGN.md §16).
//!
//! Boots real `ferrocim-serve` instances on ephemeral ports and drives
//! them with concurrent in-process clients through five scenarios:
//!
//! 1. **Overload** — a burst of transient-path MACs against a
//!    deliberately small worker pool and queue. Some requests complete,
//!    the rest are shed; *every* response must be a typed `200` or a
//!    typed `429` with a `retry_after_ms` hint, the shed rate must stay
//!    under the gate bound, and client-observed p99 must stay bounded.
//! 2. **Deadline expiry** — transient solves under a 1 ms budget. The
//!    deadline propagates into the solver; responses are typed `504`s
//!    (or a `200` if a solve beats the clock), never hangs.
//! 3. **Chaos** — a [`ChaosBackend`] injects seeded solver blowups,
//!    uncertified solves, and outright panics. Every response is still
//!    a typed `200`: live after retries, or `degraded: true` from the
//!    surrogate's startup curve once retries/breaker give up.
//! 4. **Drain** — shutdown lands mid-burst; every admitted request
//!    completes, late arrivals are shed typed, and the listener closes.
//! 5. **Surrogate** — analytic in-domain MACs against the plain
//!    `CimBackend`. These must be answered by the certified surrogate
//!    fast path (`surrogate: true`, zero solver attempts); one
//!    deliberately out-of-domain request must fall through to a live
//!    solve instead of extrapolating, and the check-mode audit running
//!    underneath must report zero envelope violations.
//!
//! The gate bounds live in `baselines/probe_serve.json` (pass with
//! `--gate <path>`); unlike the trace-diff baselines these are hand-set
//! limits, because shed and retry counts are load-dependent by design.
//! Dumps `results/probe_serve.json`.

use ferrocim_bench::schema::{ServeCounters, ServeGateBounds, ServeProbe, ServeScenario};
use ferrocim_bench::{dump_json, print_table, Trace};
use ferrocim_serve::{
    http_request, BreakerConfig, ChaosBackend, ChaosPlan, CimBackend, HttpResponse, ServeConfig,
    Server,
};
use ferrocim_telemetry::{Aggregator, Recorder, Tee, Telemetry};
use serde_json::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Requests in the overload burst.
const OVERLOAD_REQUESTS: usize = 48;
/// Client threads driving the overload burst.
const OVERLOAD_CLIENTS: usize = 16;
/// Requests in the chaos scenario.
const CHAOS_REQUESTS: usize = 32;
/// Per-client socket timeout — far above any bound the gate allows, so
/// a hang shows up as an `untyped` failure, not a test timeout.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// How one observed response classifies against the typed taxonomy.
struct Observed {
    status: u16,
    latency_ms: f64,
    degraded: bool,
    surrogate: bool,
    typed: bool,
    /// Transport-level failure: the connection was refused or reset
    /// before any response arrived (legal only while draining).
    refused: bool,
}

fn classify(resp: &HttpResponse, latency_ms: f64) -> Observed {
    let doc: Option<Value> = resp.json();
    let typed = match (&doc, resp.status) {
        (Some(doc), 200) => doc.get("ok") == Some(&Value::Bool(true)),
        (Some(doc), 429) => {
            doc.get("error") == Some(&Value::String("overloaded".into()))
                && matches!(doc.get("retry_after_ms"), Some(Value::Number(n)) if *n > 0.0)
        }
        (Some(doc), 504) => doc.get("error") == Some(&Value::String("deadline_exceeded".into())),
        (Some(doc), 400) => doc.get("error") == Some(&Value::String("bad_request".into())),
        _ => false,
    };
    let degraded = doc
        .as_ref()
        .map(|d| d.get("degraded") == Some(&Value::Bool(true)))
        .unwrap_or(false);
    let surrogate = doc
        .as_ref()
        .map(|d| d.get("surrogate") == Some(&Value::Bool(true)))
        .unwrap_or(false);
    Observed {
        status: resp.status,
        latency_ms,
        degraded,
        surrogate,
        typed,
        refused: false,
    }
}

fn mac_body(tenant: &str, timeout_ms: u64, path: &str) -> Vec<u8> {
    mac_body_at(tenant, timeout_ms, path, 27.0)
}

fn mac_body_at(tenant: &str, timeout_ms: u64, path: &str, temp_c: f64) -> Vec<u8> {
    format!(
        r#"{{"tenant":"{tenant}","inputs":[true,true,true,false,false,true,false,false],
            "weights":[true,true,false,true,false,true,false,false],
            "timeout_ms":{timeout_ms},"path":"{path}","temp_c":{temp_c}}}"#
    )
    .into_bytes()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn census(name: &str, observed: Vec<Observed>) -> ServeScenario {
    let mut latencies: Vec<f64> = observed.iter().map(|o| o.latency_ms).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    ServeScenario {
        name: name.to_string(),
        requests: observed.len(),
        ok_live: observed
            .iter()
            .filter(|o| o.typed && o.status == 200 && !o.degraded && !o.surrogate)
            .count(),
        ok_surrogate: observed
            .iter()
            .filter(|o| o.typed && o.status == 200 && !o.degraded && o.surrogate)
            .count(),
        ok_degraded: observed
            .iter()
            .filter(|o| o.typed && o.status == 200 && o.degraded)
            .count(),
        shed: observed
            .iter()
            .filter(|o| o.typed && o.status == 429)
            .count(),
        deadline_exceeded: observed
            .iter()
            .filter(|o| o.typed && o.status == 504)
            .count(),
        refused: observed.iter().filter(|o| o.refused).count(),
        untyped: observed.iter().filter(|o| !o.typed && !o.refused).count(),
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
    }
}

/// Fires `total` requests from `clients` threads and classifies every
/// response. A transport error (reset, timeout) counts as untyped —
/// the contract is that clients always get an answer.
fn drive(
    addr: std::net::SocketAddr,
    total: usize,
    clients: usize,
    body: impl Fn(usize) -> Vec<u8> + Send + Sync,
) -> Vec<Observed> {
    let body = &body;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    let mut i = client;
                    while i < total {
                        let payload = body(i);
                        let start = Instant::now();
                        let resp = http_request(addr, "POST", "/v1/mac", &payload, CLIENT_TIMEOUT);
                        let latency_ms = start.elapsed().as_secs_f64() * 1e3;
                        seen.push(match resp {
                            Ok(resp) => classify(&resp, latency_ms),
                            Err(e) => Observed {
                                status: 0,
                                latency_ms,
                                degraded: false,
                                surrogate: false,
                                typed: false,
                                refused: matches!(
                                    e.kind(),
                                    std::io::ErrorKind::ConnectionRefused
                                        | std::io::ErrorKind::ConnectionReset
                                        | std::io::ErrorKind::ConnectionAborted
                                        | std::io::ErrorKind::UnexpectedEof
                                ),
                            },
                        });
                        i += clients;
                    }
                    seen
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    })
}

fn parse_gate_path(args: &[String]) -> Option<String> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--gate" {
            return iter.next().cloned();
        }
        if let Some(path) = arg.strip_prefix("--gate=") {
            return Some(path.to_string());
        }
    }
    None
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = Trace::from_args()?;
    let args: Vec<String> = std::env::args().collect();
    let gate: ServeGateBounds = match parse_gate_path(&args) {
        Some(path) => serde_json::from_str(&std::fs::read_to_string(&path)?)
            .map_err(|e| format!("gate bounds {path}: {e}"))?,
        None => ServeGateBounds {
            max_shed_rate: 0.95,
            max_p99_ms: 2000.0,
            min_ok: 2,
            min_surrogate_rate: 0.9,
        },
    };
    println!("# Probe — serving robustness: overload, deadlines, chaos, drain, surrogate\n");

    let agg = Arc::new(Aggregator::new());
    let tele = Telemetry::to(Tee::new(vec![
        agg.clone() as Arc<dyn Recorder>,
        Arc::new(trace.telemetry()),
    ]));
    let started = Instant::now();
    let backend = Arc::new(CimBackend::new(tele.clone(), 4)?);
    println!(
        "calibrated the surrogate store (all-ones curve, 0-85 °C) in {:.0} ms",
        started.elapsed().as_secs_f64() * 1e3
    );

    // Scenario 1: overload. Transient solves (~10 ms each) against 2
    // workers and a 4-deep queue; a 48-request burst must shed.
    let server = Server::start(
        ServeConfig {
            workers: 2,
            queue_capacity: 4,
            tenant_quota: 64,
            ..ServeConfig::default()
        },
        backend.clone(),
        tele.clone(),
        agg.clone(),
    )?;
    let addr = server.addr();
    let overload = census(
        "overload",
        drive(addr, OVERLOAD_REQUESTS, OVERLOAD_CLIENTS, |i| {
            mac_body(&format!("burst-{}", i % 4), 10_000, "transient")
        }),
    );
    server.shutdown();

    // Scenario 2: deadline expiry. A 1 ms budget cannot fit a transient
    // solve; the deadline must surface as a typed 504, not a hang.
    let server = Server::start(
        ServeConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServeConfig::default()
        },
        backend.clone(),
        tele.clone(),
        agg.clone(),
    )?;
    let addr = server.addr();
    let deadline = census(
        "deadline",
        drive(addr, 6, 2, |_| mac_body("tight", 1, "transient")),
    );
    server.shutdown();

    // Scenario 3: chaos. Seeded blowups, uncertified solves, and
    // panics; the retry ladder, breaker, and fallback keep every
    // response a typed 200.
    let server = Server::start(
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            breaker: BreakerConfig {
                cooldown: Duration::from_millis(100),
                ..BreakerConfig::default()
            },
            ..ServeConfig::default()
        },
        Arc::new(ChaosBackend::new(
            backend.clone(),
            ChaosPlan {
                seed: 0xC1A0_5EED,
                blowup_probability: 0.25,
                uncertified_probability: 0.15,
                panic_probability: 0.05,
            },
        )),
        tele.clone(),
        agg.clone(),
    )?;
    let addr = server.addr();
    let chaos = census(
        "chaos",
        drive(addr, CHAOS_REQUESTS, 4, |i| {
            mac_body(&format!("chaos-{}", i % 4), 10_000, "analytic")
        }),
    );
    server.shutdown();

    // Scenario 4: drain. Shutdown lands mid-burst; admitted work
    // completes, the rest is shed typed, and the port closes.
    let server = Server::start(
        ServeConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServeConfig::default()
        },
        backend.clone(),
        tele.clone(),
        agg.clone(),
    )?;
    let addr = server.addr();
    let stopper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();
    });
    let drain = census(
        "drain",
        drive(addr, 8, 4, |i| {
            mac_body(&format!("drain-{}", i % 2), 10_000, "transient")
        }),
    );
    stopper.join().expect("stopper thread");
    let port_closed =
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err();

    // Scenario 5: surrogate fast path. Analytic in-domain requests are
    // answered from the certified store with zero solver attempts;
    // index 24 asks for 120 °C — outside the calibrated 0–85 °C domain
    // — and must fall through to a live solve, never extrapolate. The
    // backend's check mode (one in 4) audits the answers underneath.
    let server = Server::start(
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            ..ServeConfig::default()
        },
        backend.clone(),
        tele.clone(),
        agg.clone(),
    )?;
    let addr = server.addr();
    let in_domain = [0.0, 12.5, 27.0, 45.5, 63.0, 85.0];
    let surrogate = census(
        "surrogate",
        drive(addr, 25, 4, |i| {
            let temp_c = if i == 24 {
                120.0
            } else {
                in_domain[i % in_domain.len()]
            };
            mac_body_at(&format!("surro-{}", i % 4), 10_000, "analytic", temp_c)
        }),
    );
    server.shutdown();

    let counts = agg.counts();
    let counters = ServeCounters {
        admitted: counts.serve_admitted,
        shed: counts.serve_shed,
        retries: counts.serve_retries,
        degraded: counts.serve_degraded,
        breaker_open: counts.serve_breaker_open,
        surrogate_hits: counts.surrogate_hits,
        surrogate_misses: counts.surrogate_misses,
        surrogate_checks: counts.surrogate_checks,
        surrogate_check_failures: counts.surrogate_check_failures,
    };

    let scenarios = vec![overload, deadline, chaos, drain, surrogate];
    print_table(
        &[
            "scenario",
            "requests",
            "ok",
            "surrogate",
            "degraded",
            "shed",
            "504",
            "refused",
            "untyped",
            "p50 ms",
            "p99 ms",
        ],
        &scenarios
            .iter()
            .map(|s| {
                vec![
                    s.name.clone(),
                    s.requests.to_string(),
                    s.ok_live.to_string(),
                    s.ok_surrogate.to_string(),
                    s.ok_degraded.to_string(),
                    s.shed.to_string(),
                    s.deadline_exceeded.to_string(),
                    s.refused.to_string(),
                    s.untyped.to_string(),
                    format!("{:.1}", s.p50_ms),
                    format!("{:.1}", s.p99_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\ncounters: admitted {} shed {} retries {} degraded {} breaker_open {} \
         surrogate_hits {} surrogate_misses {} surrogate_checks {} check_failures {}",
        counters.admitted,
        counters.shed,
        counters.retries,
        counters.degraded,
        counters.breaker_open,
        counters.surrogate_hits,
        counters.surrogate_misses,
        counters.surrogate_checks,
        counters.surrogate_check_failures
    );

    // The robustness contract, then the tunable gate bounds.
    let mut violations = Vec::new();
    for s in &scenarios {
        if s.untyped > 0 {
            violations.push(format!("{}: {} untyped response(s)", s.name, s.untyped));
        }
        if s.refused > 0 && s.name != "drain" {
            violations.push(format!(
                "{}: {} transport failure(s) while the service was up",
                s.name, s.refused
            ));
        }
    }
    let overload = &scenarios[0];
    let chaos = &scenarios[2];
    let surrogate = &scenarios[4];
    if overload.shed == 0 {
        violations.push("overload: the burst never hit the queue bound".into());
    }
    if chaos.ok_live + chaos.ok_degraded != chaos.requests {
        violations.push("chaos: a fault leaked out instead of degrading".into());
    }
    if !port_closed {
        violations.push("drain: the listener is still accepting after shutdown".into());
    }
    let surrogate_rate = surrogate.ok_surrogate as f64 / surrogate.requests as f64;
    if surrogate_rate < gate.min_surrogate_rate {
        violations.push(format!(
            "surrogate: fast-path rate {:.2} below the {:.2} bound",
            surrogate_rate, gate.min_surrogate_rate
        ));
    }
    if surrogate.ok_live == 0 {
        violations.push("surrogate: the out-of-domain request never reached a live solve".into());
    }
    if surrogate.ok_degraded > 0 {
        violations.push("surrogate: an in-domain analytic request degraded".into());
    }
    if counters.surrogate_check_failures > 0 {
        violations.push(format!(
            "surrogate: {} check-mode deviation(s) beyond the certified envelope",
            counters.surrogate_check_failures
        ));
    }
    let shed_rate = overload.shed as f64 / overload.requests as f64;
    if shed_rate > gate.max_shed_rate {
        violations.push(format!(
            "overload: shed rate {:.2} exceeds the {:.2} bound",
            shed_rate, gate.max_shed_rate
        ));
    }
    if overload.p99_ms > gate.max_p99_ms {
        violations.push(format!(
            "overload: p99 {:.0} ms exceeds the {:.0} ms bound",
            overload.p99_ms, gate.max_p99_ms
        ));
    }
    if ((overload.ok_live + overload.ok_degraded) as u64) < gate.min_ok {
        violations.push(format!(
            "overload: only {} requests completed (gate floor {})",
            overload.ok_live + overload.ok_degraded,
            gate.min_ok
        ));
    }

    let out = ServeProbe {
        scenarios,
        counters,
        gate,
        gate_passed: violations.is_empty(),
    };
    let path = dump_json("probe_serve", &out)?;
    println!("\nwrote {}", path.display());
    trace.finish()?;
    if !out.gate_passed {
        return Err(format!("serving contract violated:\n  {}", violations.join("\n  ")).into());
    }
    println!("serving contract held: every response typed, tail bounded, drain clean");
    Ok(())
}
