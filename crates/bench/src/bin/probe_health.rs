//! Probe: cost and teeth of the numerical-health layer (DESIGN.md §15).
//!
//! Two claims are measured on real workloads:
//!
//! 1. **Cost** — certifying every linear solve (backward-error check
//!    after each factor+solve) must stay under 8% wall-clock overhead
//!    on the 256-cell row DC readout, the widest workload the dense
//!    backend still times in `probe_sparse`. Both runs use a fresh
//!    workspace per repetition so the comparison includes the full
//!    symbolic + numeric cost, and the off/certified reps are
//!    interleaved so machine-load drift cannot inflate one side.
//! 2. **Teeth** — a solve held to an impossible backward-error
//!    tolerance must *refuse*: walk bounded iterative refinement, then
//!    the whole degradation ladder (fresh symbolic → alternate ordering
//!    → dense fallback, each emitting [`SolveDegraded`]), and come back
//!    with the typed `UncertifiedSolve` error instead of an unverified
//!    solution. The emitted counter events land in the `--trace` sink,
//!    so `trace summary --prometheus` and the bench gate see nonzero
//!    `solves_refined` / `solves_degraded` from this probe.
//!
//! Dumps `results/probe_health.json`.
//!
//! [`SolveDegraded`]: ferrocim_telemetry::Event::SolveDegraded

use ferrocim_bench::schema::{CertifiedQuality, GuardrailDemo, HealthOverhead, HealthProbe};
use ferrocim_bench::{dump_json, Trace};
use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::{mac_operands, ArrayConfig, CimArray};
use ferrocim_spice::{Circuit, DcAnalysis, HealthPolicy, SolverConfig, SpiceError, Workspace};
use ferrocim_telemetry::{Aggregator, Recorder, Tee, Telemetry};
use ferrocim_units::Farad;
use std::sync::Arc;
use std::time::Instant;

/// Row width of the timed DC workload (~1029 MNA unknowns).
const CELLS: usize = 256;

/// Best-of repetitions for each timing.
const REPS: usize = 9;

/// Certification overhead bound in percent.
const OVERHEAD_LIMIT_PCT: f64 = 8.0;

/// A row array scaled to `cells` columns, as in `probe_sparse`.
fn scaled_array(cells: usize) -> Result<CimArray<TwoTransistorOneFefet>, ferrocim_cim::CimError> {
    let base = ArrayConfig::paper_default();
    let config = ArrayConfig {
        cells_per_row: cells,
        c_acc: Farad(cells as f64 * base.c_o.value()),
        ..base
    };
    CimArray::new(TwoTransistorOneFefet::paper_default(), config)
}

/// MNA unknowns of the netlist: non-ground nodes plus one branch
/// current per voltage source.
fn unknown_count(ckt: &Circuit) -> usize {
    let sources = ckt
        .elements()
        .iter()
        .filter(|el| matches!(el, ferrocim_spice::Element::VoltageSource { .. }))
        .count();
    ckt.node_count() - 1 + sources
}

/// Times the full DC Newton solve with certification off and on,
/// rep-interleaved so machine-load drift lands on both paths equally
/// (two back-to-back best-of blocks let a single slow stretch inflate
/// one side and fail the overhead bound spuriously). Returns the
/// best-of-[`REPS`] wall clocks in microseconds and the quality the
/// last certified repetition reported.
fn time_dc_pair(ckt: &Circuit) -> Result<(f64, f64, ferrocim_spice::SolveQuality), SpiceError> {
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut quality = None;
    for _ in 0..REPS {
        // A fresh workspace per rep so each timing includes the full
        // symbolic + numeric cost, not a warm rerun.
        let mut ws = Workspace::with_solver(SolverConfig::sparse());
        let start = Instant::now();
        DcAnalysis::new(ckt)
            .with_health(HealthPolicy::off())
            .solve_in(&mut ws)?;
        best_off = best_off.min(start.elapsed().as_secs_f64());
        let mut ws = Workspace::with_solver(SolverConfig::sparse());
        let start = Instant::now();
        DcAnalysis::new(ckt)
            .with_health(HealthPolicy::default())
            .solve_in(&mut ws)?;
        best_on = best_on.min(start.elapsed().as_secs_f64());
        quality = ws.last_solve_quality();
    }
    let quality = quality.expect("the default policy certifies every solve");
    Ok((best_off * 1e6, best_on * 1e6, quality))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = Trace::from_args()?;
    println!("# Probe — numerical-health certification: cost and teeth\n");

    // Cost: the 256-cell row DC readout with certification off vs. on.
    let array = scaled_array(CELLS)?;
    let (weights, inputs) = mac_operands(CELLS, CELLS / 2 + 1);
    let (ckt, _acc, _t_stop) = array.readout_circuit(&weights, &inputs)?;
    let unknowns = unknown_count(&ckt);
    let (off_us, certified_us, quality) = time_dc_pair(&ckt)?;
    let overhead = HealthOverhead {
        cells_per_row: CELLS,
        unknowns,
        reps: REPS,
        off_us,
        certified_us,
        overhead_pct: (certified_us - off_us) / off_us * 100.0,
        limit_pct: OVERHEAD_LIMIT_PCT,
    };
    println!("{CELLS}-cell row DC readout ({unknowns} unknowns, best of {REPS}):");
    println!("  certification off : {off_us:.1} us");
    println!("  certification on  : {certified_us:.1} us");
    println!(
        "  overhead = {:.2} % (limit {} %)",
        overhead.overhead_pct, overhead.limit_pct
    );
    let policy = HealthPolicy::default();
    let quality = CertifiedQuality {
        residual: quality.residual,
        residual_tol: policy.residual_tol,
        refinement_passes: quality.refinement_passes,
        pivot_growth: quality.pivot_growth,
    };
    println!(
        "  certified: backward error {:.2e} (tol {:.0e}), {} refinement pass(es), \
         pivot growth {:.2}",
        quality.residual, quality.residual_tol, quality.refinement_passes, quality.pivot_growth
    );

    // Teeth: the paper-default row held to an unmeetable tolerance.
    // Refinement and ladder events are teed into the aggregator (for
    // the report below) and the `--trace` sink (for the bench gate).
    let agg = Arc::new(Aggregator::new());
    let tele = Telemetry::to(Tee::new(vec![
        agg.clone() as Arc<dyn Recorder>,
        Arc::new(trace.telemetry()),
    ]));
    let small = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )?;
    let cells = ArrayConfig::paper_default().cells_per_row;
    let (weights, inputs) = mac_operands(cells, cells / 2 + 1);
    let (small_ckt, _acc, _t_stop) = small.readout_circuit(&weights, &inputs)?;
    let strict = HealthPolicy {
        residual_tol: 1e-30,
        ..HealthPolicy::default()
    };
    let mut ws = Workspace::with_solver(SolverConfig::sparse());
    let refusal = DcAnalysis::new(&small_ckt)
        .with_health(strict)
        .with_recorder(tele)
        .solve_in(&mut ws);
    let (refused, reported_residual, cond_estimate) = match refusal {
        Err(SpiceError::UncertifiedSolve {
            residual,
            cond_estimate,
        }) => (true, residual, cond_estimate),
        Err(other) => return Err(format!("expected UncertifiedSolve, got {other:?}").into()),
        Ok(_) => (false, f64::NAN, None),
    };
    let counts = agg.counts();
    let guardrail = GuardrailDemo {
        residual_tol: strict.residual_tol,
        refused,
        reported_residual,
        cond_estimate,
        solves_refined: counts.solves_refined,
        solves_degraded: counts.solves_degraded,
    };
    println!(
        "\n{cells}-cell row held to an impossible tolerance ({:.0e}):",
        strict.residual_tol
    );
    println!(
        "  refused = {}, reported backward error {:.2e}, cond estimate {}",
        guardrail.refused,
        guardrail.reported_residual,
        guardrail
            .cond_estimate
            .map_or("-".into(), |c| format!("{c:.2e}")),
    );
    println!(
        "  ladder walked: {} refined solves, {} degradations",
        guardrail.solves_refined, guardrail.solves_degraded
    );

    let out = HealthProbe {
        overhead,
        quality,
        guardrail,
    };
    let path = dump_json("probe_health", &out)?;
    println!("\nwrote {}", path.display());
    trace.finish()?;
    if !out.guardrail.refused {
        return Err("the solver accepted a solve it could not certify".into());
    }
    if out.guardrail.solves_refined == 0 || out.guardrail.solves_degraded == 0 {
        return Err("the refusal did not walk the refinement + degradation ladder".into());
    }
    if out.overhead.overhead_pct >= out.overhead.limit_pct {
        return Err(format!(
            "certification overhead {:.2} % exceeds the {} % bound",
            out.overhead.overhead_pct, out.overhead.limit_pct
        )
        .into());
    }
    Ok(())
}
