//! **Ablation A8** — multi-level (2-bit-per-cell) weights on the
//! 2T-1FeFET array: measures the analog output separation of the four
//! polarization levels across 0–85 °C, extending the paper's binary
//! evaluation toward the cited multi-bit MAC design \[23\].

use ferrocim_bench::schema::LevelRange;
use ferrocim_bench::{dump_json, print_table};
use ferrocim_cim::cells::{CellOffsets, CellWeight, TwoTransistorOneFefet};
use ferrocim_cim::{ArrayConfig, CimArray, MacPath, MacRequest};
use ferrocim_spice::sweep::temperature_sweep;
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    println!("# Ablation — 2-bit-per-cell weights on the proposed array\n");
    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )?
    .with_recorder(trace.telemetry());
    let n = array.config().cells_per_row;
    let offsets = vec![CellOffsets::NOMINAL; n];
    let inputs = vec![true; n];
    let mut ranges = Vec::new();
    for level in 0u8..=3 {
        let weights = vec![CellWeight::Level { level, max: 3 }; n];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for t in temperature_sweep(10) {
            let out = array.run(
                &MacRequest::new(&inputs)
                    .weighted(&weights)
                    .at(t)
                    .offsets(&offsets)
                    .path(MacPath::Analytic),
            )?;
            lo = lo.min(out.v_acc.value());
            hi = hi.max(out.v_acc.value());
        }
        ranges.push(LevelRange {
            level,
            lo_mv: lo * 1e3,
            hi_mv: hi * 1e3,
        });
    }
    print_table(
        &["weight level", "lowest V_acc (0-85C)", "highest V_acc"],
        &ranges
            .iter()
            .map(|r| {
                vec![
                    format!("{}/3", r.level),
                    format!("{:.2} mV", r.lo_mv),
                    format!("{:.2} mV", r.hi_mv),
                ]
            })
            .collect::<Vec<_>>(),
    );
    // Are the analog levels monotone and separated over temperature?
    let separated = ranges.windows(2).all(|w| w[1].lo_mv > w[0].hi_mv);
    println!("\nfull-window encoding temperature-separated: {separated}");
    println!(
        "(expected: with a 1.38 V memory window, the 0.35 V subthreshold\n\
         read only conducts near full polarization — naive full-window\n\
         levels collapse, so MLC needs encoding-aware programming:)\n"
    );

    // Encoding-aware programming: pack the four levels near the
    // low-V_TH edge where the read has usable transconductance.
    let packed = [-1.0, 0.85, 0.93, 1.0];
    let mut packed_ranges = Vec::new();
    for (level, &p) in packed.iter().enumerate() {
        let weights = vec![CellWeight::Analog(p); n];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for t in temperature_sweep(10) {
            let out = array.run(
                &MacRequest::new(&inputs)
                    .weighted(&weights)
                    .at(t)
                    .offsets(&offsets)
                    .path(MacPath::Analytic),
            )?;
            lo = lo.min(out.v_acc.value());
            hi = hi.max(out.v_acc.value());
        }
        packed_ranges.push(LevelRange {
            level: level as u8,
            lo_mv: lo * 1e3,
            hi_mv: hi * 1e3,
        });
    }
    print_table(
        &["packed level (P)", "lowest V_acc (0-85C)", "highest V_acc"],
        &packed_ranges
            .iter()
            .zip(&packed)
            .map(|(r, p)| {
                vec![
                    format!("{} (P={p})", r.level),
                    format!("{:.2} mV", r.lo_mv),
                    format!("{:.2} mV", r.hi_mv),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let packed_separated = packed_ranges.windows(2).all(|w| w[1].lo_mv > w[0].hi_mv);
    println!("\npacked encoding temperature-separated: {packed_separated}");
    assert!(
        packed_ranges.windows(2).all(|w| w[1].hi_mv > w[0].hi_mv),
        "packed levels must be ordered"
    );
    let all = (ranges, packed_ranges);
    let path = dump_json("ablation_multilevel", &all)?;
    println!("wrote {}", path.display());
    trace.finish()?;
    Ok(())
}
