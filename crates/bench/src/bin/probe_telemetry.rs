//! Probe: the telemetry subsystem itself (DESIGN.md §12).
//!
//! Default mode runs an instrumented adaptive MAC-readout transient and
//! a fault-injecting Monte-Carlo sweep through an in-memory
//! [`Aggregator`] (teed into the `--trace` sink when one is given) and
//! checks the aggregated event counts bitwise against the simulator's
//! own reports (`StepReport`, `FanOutReport`). With `--overhead` it
//! additionally times the batched-MAC workload with telemetry off
//! versus a [`NoopRecorder`] attached — the full event-construction and
//! dispatch path with nothing behind it — and requires the overhead to
//! stay under 2 %.
//!
//! Dumps `results/probe_telemetry.json`.

use ferrocim_bench::schema::{CountCheck, Overhead, TelemetryProbe};
use ferrocim_bench::{dump_json, print_table, Trace};
use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::{mac_operands, ArrayConfig, ArrayEngine, CimArray};
use ferrocim_spice::{AdaptiveOptions, FailurePolicy, MonteCarlo, TransientAnalysis};
use ferrocim_telemetry::{Aggregator, NoopRecorder, Recorder, Tee, Telemetry};
use ferrocim_units::Celsius;
use rand::Rng as _;
use std::sync::Arc;
use std::time::Instant;

/// The acceptance bound on the NoopRecorder dispatch overhead.
const OVERHEAD_LIMIT_PCT: f64 = 2.0;

/// Monte-Carlo samples in the consistency sweep.
const MC_RUNS: usize = 40;

fn check(name: &str, expected: u64, observed: u64) -> CountCheck {
    CountCheck {
        name: name.to_string(),
        expected,
        observed,
    }
}

/// Runs the instrumented transient + Monte-Carlo demo and returns the
/// report-vs-aggregator comparisons.
fn consistency(trace: &Trace) -> Result<Vec<CountCheck>, Box<dyn std::error::Error>> {
    let agg = Arc::new(Aggregator::new());
    // One handle feeds the in-memory aggregator and (when `--trace` was
    // given) the JSONL sink — a Telemetry handle is itself a Recorder.
    let tele = Telemetry::to(Tee::new(vec![
        agg.clone() as Arc<dyn Recorder>,
        Arc::new(trace.telemetry()),
    ]));

    let config = ArrayConfig::paper_default();
    let array = CimArray::new(TwoTransistorOneFefet::paper_default(), config)?;
    let mac_level = config.cells_per_row / 2 + 1;
    let (weights, inputs) = mac_operands(config.cells_per_row, mac_level);
    let (ckt, _acc, t_stop) = array.readout_circuit(&weights, &inputs)?;
    let run = TransientAnalysis::over(&ckt, t_stop)
        .with_adaptive_options(AdaptiveOptions::for_duration(t_stop))
        .with_recorder(tele.clone())
        .run()?;
    let report = run.step_report();
    let after_transient = agg.counts();
    let mut checks = vec![
        check(
            "steps accepted == StepReport.accepted",
            report.accepted as u64,
            after_transient.steps_accepted,
        ),
        check(
            "steps rejected == StepReport.rejected",
            report.rejected as u64,
            after_transient.steps_rejected,
        ),
        check(
            "rescues succeeded == StepReport.rescued",
            report.rescued as u64,
            after_transient.rescues_succeeded,
        ),
    ];

    // A Monte-Carlo sweep where every fifth sample fails with a typed
    // error and is substituted, so the ok/failed split is non-trivial.
    let mc = MonteCarlo::new(MC_RUNS, 0xFE0F).with_recorder(tele.clone());
    let mc_report = mc
        .try_run(&FailurePolicy::Substitute(0.0f64), |run, rng| {
            if run % 5 == 0 {
                Err(format!("synthetic failure in run {run}"))
            } else {
                Ok(rng.random::<f64>())
            }
        })
        .map_err(|e| format!("fan-out failed: {e}"))?;
    let counts = agg.counts();
    checks.push(check(
        "mc runs started == runs",
        MC_RUNS as u64,
        counts.mc_runs_started,
    ));
    checks.push(check(
        "mc runs ok == runs - FanOutReport.failures",
        (MC_RUNS - mc_report.failures) as u64,
        counts.mc_runs_ok,
    ));
    checks.push(check(
        "mc runs failed == FanOutReport.failures",
        mc_report.failures as u64,
        counts.mc_runs_failed,
    ));
    Ok(checks)
}

fn time_batches(
    engine: &ArrayEngine<'_, TwoTransistorOneFefet>,
    inputs: &[Vec<bool>],
    reps: usize,
    batches: usize,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..batches {
            engine.mac_batch(inputs, Celsius(27.0))?;
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    Ok(best / batches as f64)
}

/// Times the `batch_mac` bench workload (16 jobs over 2 distinct
/// patterns on the 8-cell row) with telemetry off versus a
/// [`NoopRecorder`] attached.
fn overhead() -> Result<Overhead, Box<dyn std::error::Error>> {
    const REPS: usize = 7;
    const BATCHES: usize = 3;
    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )?;
    let weights = [true, true, false, true, true, false, true, true];
    let a: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
    let b: Vec<bool> = (0..8).map(|i| i < 5).collect();
    let inputs: Vec<Vec<bool>> = (0..16)
        .map(|j| if j % 2 == 0 { a.clone() } else { b.clone() })
        .collect();
    let off_engine = ArrayEngine::new(&array, &weights)?;
    let noop_engine =
        ArrayEngine::new(&array, &weights)?.with_recorder(Telemetry::to(NoopRecorder));
    // Warm both paths (lazy allocations, CPU frequency).
    off_engine.mac_batch(&inputs, Celsius(27.0))?;
    noop_engine.mac_batch(&inputs, Celsius(27.0))?;
    let off = time_batches(&off_engine, &inputs, REPS, BATCHES)?;
    let noop = time_batches(&noop_engine, &inputs, REPS, BATCHES)?;
    Ok(Overhead {
        reps: REPS,
        batches_per_rep: BATCHES,
        jobs_per_batch: inputs.len(),
        off_us_per_batch: off * 1e6,
        noop_us_per_batch: noop * 1e6,
        overhead_pct: (noop - off) / off * 100.0,
        limit_pct: OVERHEAD_LIMIT_PCT,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    let with_overhead = std::env::args().any(|a| a == "--overhead");
    println!("# Probe — telemetry count consistency and dispatch overhead\n");

    let checks = consistency(&trace)?;
    print_table(
        &["check", "expected", "observed", "status"],
        &checks
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    c.expected.to_string(),
                    c.observed.to_string(),
                    if c.expected == c.observed {
                        "ok".into()
                    } else {
                        "MISMATCH".into()
                    },
                ]
            })
            .collect::<Vec<_>>(),
    );
    let consistent = checks.iter().all(|c| c.expected == c.observed);

    let overhead = if with_overhead {
        let o = overhead()?;
        println!(
            "\nbatched-MAC dispatch overhead (NoopRecorder vs off, min of {} reps):",
            o.reps
        );
        println!("  off  : {:.1} us/batch", o.off_us_per_batch);
        println!("  noop : {:.1} us/batch", o.noop_us_per_batch);
        println!(
            "  overhead = {:.3} % (limit {} %)",
            o.overhead_pct, o.limit_pct
        );
        Some(o)
    } else {
        None
    };

    let out = TelemetryProbe {
        checks,
        consistent,
        overhead,
    };
    let path = dump_json("probe_telemetry", &out)?;
    println!("\nwrote {}", path.display());
    trace.finish()?;
    if !out.consistent {
        return Err("telemetry counts diverged from the simulator's own reports".into());
    }
    if let Some(o) = &out.overhead {
        if o.overhead_pct >= o.limit_pct {
            return Err(format!(
                "telemetry dispatch overhead {:.3} % exceeds the {} % bound",
                o.overhead_pct, o.limit_pct
            )
            .into());
        }
    }
    Ok(())
}
