//! Offline calibration driver: runs the 2T-1FeFET W/L tuner and prints
//! the resulting parameters and fluctuation profile, used to derive the
//! constants baked into `TwoTransistorOneFefet::paper_default`.

use ferrocim_cim::cells::{normalized_current_curve, CellDesign, CellOffsets};
use ferrocim_cim::tune::TuneProblem;
use ferrocim_spice::sweep::temperature_sweep;
use ferrocim_units::Celsius;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let warm = std::env::args().any(|a| a == "--warm");
    let mut problem = TuneProblem::paper_default();
    if warm {
        problem.temps = ferrocim_spice::sweep::warm_temperature_sweep(12);
    }
    let outcome = problem.run(budget)?;
    println!("evaluations: {}", outcome.evaluations);
    println!("objective:   {:.4}", outcome.objective);
    for (p, v) in problem.params().iter().zip(&outcome.best) {
        println!("  {:>10} = {v:.4}", p.name);
    }
    let cell = problem.cell_for(&outcome.best);
    let i_ref = cell.read_current(true, true, Celsius(27.0), &CellOffsets::NOMINAL)?;
    println!("I(27C) = {i_ref}");
    println!("normalized current vs temperature:");
    for (t, ratio) in normalized_current_curve(&cell, &temperature_sweep(18), Celsius(27.0))? {
        println!(
            "  {:5.1} C : {:.4}  (fluct {:+.1} %)",
            t.value(),
            ratio,
            (ratio - 1.0) * 100.0
        );
    }
    trace.finish()?;
    Ok(())
}
