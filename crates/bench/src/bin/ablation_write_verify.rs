//! **Ablation A6** — write-verify programming vs raw writes: repeats
//! the Fig. 9 Monte-Carlo with each '1' cell trimmed by the
//! program-verify loop (the paper's ref \[9\] technique) and compares the
//! readout-error profile.

use ferrocim_bench::schema::WriteVerifyRow;
use ferrocim_bench::{dump_json, print_table};
use ferrocim_cim::cells::{CellOffsets, CellWeight, TwoTransistorOneFefet};
use ferrocim_cim::program::{write_verify_row, WriteVerifyConfig};
use ferrocim_cim::transfer::Adc;
use ferrocim_cim::{mac_operands, ArrayConfig, CimArray, MacPath, MacRequest};
use ferrocim_device::variation::{GaussianSampler, VariationModel};
use ferrocim_spice::MonteCarlo;
use ferrocim_units::Celsius;
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    println!("# Ablation — write-verify programming (paper ref [9]) vs raw writes\n");
    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )?
    .with_recorder(trace.telemetry());
    let adc = Adc::calibrate(&array, Celsius(27.0))?;
    let variation = VariationModel::paper_default();
    let n = array.config().cells_per_row;
    let runs = 60;
    let mut rows = Vec::new();
    for verify in [false, true] {
        let mc = MonteCarlo::new(runs, 0xA11CE).with_recorder(trace.telemetry());
        let samples: Vec<Result<(usize, f64, f64), ferrocim_cim::CimError>> = mc.run(|_, rng| {
            let mut sampler = GaussianSampler::new();
            let mut worst = 0usize;
            let mut total = 0.0f64;
            let mut iters = 0.0f64;
            for k in [2usize, 5, 8] {
                let (w, x) = mac_operands(n, k);
                let raw: Vec<CellOffsets> = (0..n)
                    .map(|_| CellOffsets {
                        fefet: variation.sample_fefet_offset(rng, &mut sampler),
                        m1: variation.sample_mosfet_offset(rng, &mut sampler),
                        m2: variation.sample_mosfet_offset(rng, &mut sampler),
                    })
                    .collect();
                let offsets = if verify {
                    let weights: Vec<CellWeight> = w.iter().map(|&b| CellWeight::Bit(b)).collect();
                    let (trimmed, outcomes) = write_verify_row(
                        array.cell(),
                        &weights,
                        &raw,
                        &WriteVerifyConfig::default(),
                    )?;
                    iters += outcomes.iter().map(|o| o.iterations as f64).sum::<f64>();
                    trimmed
                } else {
                    raw
                };
                let out = array.run(
                    &MacRequest::new(&x)
                        .weights(&w)
                        .at(Celsius(27.0))
                        .offsets(&offsets)
                        .path(MacPath::Analytic),
                )?;
                let read = adc.quantize(out.v_acc);
                worst = worst.max(read.abs_diff(k));
                total += read.abs_diff(k) as f64;
            }
            Ok((worst, total / 3.0, iters / 3.0))
        });
        let mut worst = 0usize;
        let mut mean = 0.0;
        let mut iters = 0.0;
        for s in samples {
            let (w, m, i) = s?;
            worst = worst.max(w);
            mean += m / runs as f64;
            iters += i / runs as f64;
        }
        rows.push(WriteVerifyRow {
            scheme: if verify {
                "write-verify (ref [9])"
            } else {
                "raw write"
            }
            .into(),
            max_abs_error_levels: worst,
            mean_abs_error_levels: mean,
            mean_verify_iterations_per_row: iters,
        });
    }
    print_table(
        &[
            "scheme",
            "max |err| (levels)",
            "mean |err| (levels)",
            "verify iters/row",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.scheme.clone(),
                    r.max_abs_error_levels.to_string(),
                    format!("{:.3}", r.mean_abs_error_levels),
                    format!("{:.2}", r.mean_verify_iterations_per_row),
                ]
            })
            .collect::<Vec<_>>(),
    );
    assert!(
        rows[1].mean_abs_error_levels < rows[0].mean_abs_error_levels,
        "write-verify must reduce the mean readout error"
    );
    let path = dump_json("ablation_write_verify", &rows)?;
    println!("\nwrote {}", path.display());
    trace.finish()?;
    Ok(())
}
