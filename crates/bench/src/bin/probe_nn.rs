//! Diagnostic probe: trains VGG-nano on the synthetic dataset and
//! reports clean, quantized-ideal, and CIM-noisy accuracies.

use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::transfer::{TransferConfig, TransferModel};
use ferrocim_cim::{ArrayConfig, CimArray};
use ferrocim_nn::cim_exec::{CimMapping, CimNetwork, IdealMac};
use ferrocim_nn::data::Generator;
use ferrocim_nn::vgg::vgg_nano;
use ferrocim_nn::{try_train_recorded, TrainConfig};
use ferrocim_units::Celsius;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    let n_train: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let epochs: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let n_test = 300;
    let train_set = Generator::new(1).generate(n_train);
    let test_set = Generator::new(999).generate(n_test);

    let mut rng = StdRng::seed_from_u64(7);
    let mut net = vgg_nano(&mut rng);
    println!("params: {}", net.parameter_count());
    let t0 = Instant::now();
    let stats = try_train_recorded(
        &mut net,
        &train_set.images,
        &train_set.labels,
        &TrainConfig {
            epochs,
            learning_rate: 0.01,
            ..TrainConfig::default()
        },
        &trace.telemetry(),
    )?;
    println!("trained in {:.1}s", t0.elapsed().as_secs_f64());
    for s in &stats {
        println!(
            "  epoch {}: loss {:.3}, train acc {:.3}",
            s.epoch, s.loss, s.train_accuracy
        );
    }
    let clean = net.accuracy(&test_set.images, &test_set.labels);
    println!("clean test accuracy: {clean:.4}");

    let cim = CimNetwork::map(&net, CimMapping::default()).with_recorder(trace.telemetry());
    let t1 = Instant::now();
    let ideal = cim.accuracy(&test_set.images, &test_set.labels, &IdealMac(8), 11);
    println!(
        "quantized(ideal CIM) accuracy: {ideal:.4} in {:.1}s",
        t1.elapsed().as_secs_f64()
    );

    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )?
    .with_recorder(trace.telemetry());
    for temp in [0.0, 27.0, 85.0] {
        let t2 = Instant::now();
        let model = TransferModel::measure(&array, &TransferConfig::paper_default(Celsius(temp)))?;
        println!(
            "transfer model @ {temp} C: max rel err {:.3}, P(0->0) {:.3}, P(8->8) {:.3} ({:.1}s)",
            model.max_relative_error(),
            model.correct_probability(0),
            model.correct_probability(8),
            t2.elapsed().as_secs_f64()
        );
        let biases: Vec<String> = (0..=8)
            .map(|k| format!("{:+.2}", model.expected(k) - k as f64))
            .collect();
        println!("  readout bias per level: [{}]", biases.join(", "));
        let t3 = Instant::now();
        let noisy = cim.accuracy(&test_set.images, &test_set.labels, &model, 13);
        println!(
            "  CIM accuracy @ {temp} C: {noisy:.4} ({:.1}s)",
            t3.elapsed().as_secs_f64()
        );
    }
    trace.finish()?;
    Ok(())
}
