//! **E10 / Table I** — the VGG structure executed on CIFAR-10, printed
//! from the live network object (not hard-coded), plus the scaled
//! VGG-nano actually trained in this reproduction.

use ferrocim_bench::schema::VggLayerRow;
use ferrocim_bench::{dump_json, print_table};
use ferrocim_nn::vgg::{describe, vgg_nano, vgg_paper};
use rand::rngs::StdRng;
use rand::SeedableRng;
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    let mut rng = StdRng::seed_from_u64(0);
    println!("# Table I — VGG structure (from the live model)\n");
    let paper_net = vgg_paper(&mut rng);
    let rows = describe(&paper_net, 32);
    print_table(
        &["Layer", "Input Map", "Output Map", "Non Linearity"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.layer.clone(),
                    r.input_map.clone(),
                    r.output_map.clone(),
                    r.non_linearity.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("parameters: {}\n", paper_net.parameter_count());

    println!("# VGG-nano — the trainable substitute (same topology, ~10x narrower)\n");
    let nano = vgg_nano(&mut rng);
    let nano_rows = describe(&nano, 32);
    print_table(
        &["Layer", "Input Map", "Output Map", "Non Linearity"],
        &nano_rows
            .iter()
            .map(|r| {
                vec![
                    r.layer.clone(),
                    r.input_map.clone(),
                    r.output_map.clone(),
                    r.non_linearity.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("parameters: {}", nano.parameter_count());

    let json: Vec<VggLayerRow> = rows
        .into_iter()
        .map(|r| VggLayerRow {
            layer: r.layer,
            input_map: r.input_map,
            output_map: r.output_map,
            non_linearity: r.non_linearity,
        })
        .collect();
    let path = dump_json("table1_vgg_structure", &json)?;
    println!("\nwrote {}", path.display());
    trace.finish()?;
    Ok(())
}
