//! Diagnostic probe: prints on/off currents, node-A levels, and the
//! temperature profile of a 2T-1FeFET cell configuration given on the
//! command line as `m1_wl m2_wl fefet_wl m1_vth0`.

use ferrocim_cim::cells::{normalized_current_curve, CellDesign, CellOffsets};
use ferrocim_cim::tune::TuneProblem;
use ferrocim_spice::sweep::temperature_sweep;
use ferrocim_units::Celsius;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    if std::env::args().any(|a| a == "--r-sweep") {
        // Sweep the 1FeFET-1R series resistance: saturation-read and
        // subthreshold-read worst-case fluctuation vs R.
        use ferrocim_cim::cells::{current_fluctuation, OneFefetOneR};
        use ferrocim_units::Ohm;
        let temps = temperature_sweep(12);
        println!("{:>10} {:>10} {:>10}", "R", "sat", "sub");
        for r in [5e3, 10e3, 25e3, 50e3, 100e3, 250e3, 500e3] {
            let mut sat = OneFefetOneR::saturation();
            sat.resistance = Ohm(r);
            let mut sub = OneFefetOneR::subthreshold();
            sub.resistance = Ohm(r);
            println!(
                "{:>8.0}k {:>9.1}% {:>9.1}%",
                r / 1e3,
                current_fluctuation(&sat, &temps, Celsius(27.0))? * 100.0,
                current_fluctuation(&sub, &temps, Celsius(27.0))? * 100.0,
            );
        }
        return Ok(());
    }
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    assert_eq!(
        args.len(),
        4,
        "usage: probe_cell M1_WL M2_WL FEFET_WL M1_VTH0"
    );
    let problem = TuneProblem::paper_default();
    let cell = problem.cell_for(&args);
    let room = Celsius(27.0);
    let i_on = cell.read_current(true, true, room, &CellOffsets::NOMINAL)?;
    println!("I_on(27C, probe) = {i_on}");
    let mut off_cell = cell.clone();
    off_cell.v_out_probe = off_cell.bias.v_sl;
    for &(w, x) in &[(true, false), (false, true), (false, false)] {
        for t in [Celsius(0.0), room, Celsius(85.0)] {
            let i = off_cell.read_current(w, x, t, &CellOffsets::NOMINAL)?;
            println!(
                "I_off(w={}, x={}, {:2.0}C, out@SL) = {}  ratio {:.0}",
                w as u8,
                x as u8,
                t.value(),
                i,
                i_on.value() / i.value().abs().max(1e-18)
            );
        }
    }
    println!("objective = {:.4}", problem.objective(&args)?);
    println!("normalized current vs temperature:");
    for (t, r) in normalized_current_curve(&cell, &temperature_sweep(18), room)? {
        println!("  {:5.1} C : {:+.1} %", t.value(), (r - 1.0) * 100.0);
    }
    trace.finish()?;
    Ok(())
}
