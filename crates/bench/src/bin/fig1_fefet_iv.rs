//! **E1 / Fig. 1** — FeFET `I_D–V_G` characteristics at several
//! temperatures for both polarization states, with the subthreshold
//! read point `V_read = 0.35 V` marked.
//!
//! Regenerates the device-level picture motivating the paper: the two
//! `V_TH` branches of the programmed FeFET, their temperature spread,
//! and that the high-`V_TH` branch moves more than the low-`V_TH` one.

use ferrocim_bench::schema::IvCurve;
use ferrocim_bench::{dump_json, print_series};
use ferrocim_device::{Fefet, FefetParams, PolarizationState};
use ferrocim_spice::sweep::voltage_sweep;
use ferrocim_units::{Celsius, Volt};
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    let temps = [Celsius(0.0), Celsius(27.0), Celsius(85.0)];
    let vds = Volt(0.15);
    let mut curves = Vec::new();
    println!("# Fig. 1 — FeFET ID-VG vs temperature, both states");
    println!("# V_DS = {vds}, V_read marker at 0.35 V\n");
    for (state, label) in [
        (PolarizationState::LowVt, "low-Vt (logic '1')"),
        (PolarizationState::HighVt, "high-Vt (logic '0')"),
    ] {
        let mut fefet = Fefet::new(FefetParams::paper_default());
        fefet.force_state(state);
        for &t in &temps {
            let points: Vec<(f64, f64)> = voltage_sweep(Volt(0.0), Volt(2.2), 45)
                .into_iter()
                .map(|vg| (vg.value(), fefet.ids(vg, vds, t).value().max(1e-18).log10()))
                .collect();
            print_series(
                &format!("{label} at {} C", t.value()),
                "V_G [V]",
                "log10(I_D [A])",
                &points,
            );
            curves.push(IvCurve {
                state: if state == PolarizationState::LowVt {
                    "low_vt"
                } else {
                    "high_vt"
                }
                .into(),
                temp_c: t.value(),
                points,
            });
        }
    }
    // Verify the Fig. 1 caption claims numerically.
    let mut low = Fefet::new(FefetParams::paper_default());
    low.force_state(PolarizationState::LowVt);
    let mut high = Fefet::new(FefetParams::paper_default());
    high.force_state(PolarizationState::HighVt);
    let v_read = Volt(0.35);
    let spread = |f: &Fefet| {
        let cold = f.ids(v_read, vds, Celsius(0.0)).value();
        let hot = f.ids(v_read, vds, Celsius(85.0)).value();
        hot / cold
    };
    println!("\nread-point temperature swing I(85C)/I(0C):");
    println!("  low-Vt  branch: {:.2}x", spread(&low));
    println!(
        "  high-Vt branch: {:.2}x (must exceed the low-Vt swing)",
        spread(&high)
    );
    println!(
        "  I_ON/I_OFF at V_read, 27C: {:.2e}",
        low.on_off_ratio(v_read, vds, Celsius(27.0))
    );
    let path = dump_json("fig1_fefet_iv", &curves)?;
    println!("\nwrote {}", path.display());
    trace.finish()?;
    Ok(())
}
