//! **E6+E7+E8 / Fig. 8 and the NMR numbers** — the proposed 2T-1FeFET
//! 8-cell array: (a) MAC output ranges over 0–85 °C (non-overlapping),
//! (b) energy per operation per MAC value, plus `NMR_min` over the full
//! and warm temperature ranges (paper: `NMR_0 = 0.22` and
//! `NMR_7 = 2.3`), average energy (paper: 3.14 fJ/op) and TOPS/W
//! (paper: 2866).

use ferrocim_bench::schema::ProposedArraySummary;
use ferrocim_bench::{dump_json, print_series, print_table};
use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::metrics::{EnergyReport, RangeTable};
use ferrocim_cim::{ArrayConfig, CimArray};
use ferrocim_spice::sweep::{temperature_sweep, warm_temperature_sweep};
use ferrocim_units::Celsius;
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    println!("# Fig. 8 — proposed 2T-1FeFET 8-cell array\n");
    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )?
    .with_recorder(trace.telemetry());
    let full = RangeTable::measure(&array, &temperature_sweep(18))?;
    let warm = RangeTable::measure(&array, &warm_temperature_sweep(14))?;

    println!("## (a) MAC output ranges over 0-85 C");
    let rows: Vec<Vec<String>> = full
        .ranges()
        .iter()
        .map(|r| {
            let nmr = if r.mac < full.max_mac() {
                format!("{:.2}", full.nmr(r.mac))
            } else {
                "-".into()
            };
            vec![
                format!("MAC={}", r.mac),
                format!("{:.2} mV", r.lo.value() * 1e3),
                format!("{:.2} mV", r.hi.value() * 1e3),
                nmr,
            ]
        })
        .collect();
    print_table(&["level", "lowest V_acc", "highest V_acc", "NMR_i"], &rows);
    let (if_, nf) = full.nmr_min();
    let (iw, nw) = warm.nmr_min();
    println!("\nNMR_min(0-85 C)  = NMR_{if_} = {nf:.3}   (paper: NMR_0 = 0.22)");
    println!("NMR_min(20-85 C) = NMR_{iw} = {nw:.3}   (paper: NMR_7 = 2.3)");
    println!("has_overlap = {}\n", full.has_overlap());
    assert!(
        !full.has_overlap(),
        "shape check: proposed array must not overlap"
    );

    println!("## (b) energy per operation at 27 C");
    let report = EnergyReport::measure(&array, Celsius(27.0))?;
    let energy_curve: Vec<(f64, f64)> = report
        .per_mac
        .iter()
        .enumerate()
        .map(|(k, e)| (k as f64, e.value() * 1e15))
        .collect();
    print_series(
        "energy per MAC operation",
        "MAC value",
        "energy [fJ]",
        &energy_curve,
    );
    println!("\naverage energy = {}   (paper: 3.14 fJ)", report.average);
    println!(
        "energy efficiency = {:.0} TOPS/W   (paper: 2866 TOPS/W)",
        report.tops_per_watt
    );
    println!("MAC latency = {}   (paper: 6.9 ns)", report.latency);

    let out = ProposedArraySummary {
        nmr_min_full: (if_, nf),
        nmr_min_warm: (iw, nw),
        has_overlap: full.has_overlap(),
        ranges_mv: full
            .ranges()
            .iter()
            .map(|r| (r.mac, r.lo.value() * 1e3, r.hi.value() * 1e3))
            .collect(),
        energy_per_mac_fj: report.per_mac.iter().map(|e| e.value() * 1e15).collect(),
        average_energy_fj: report.average.value() * 1e15,
        tops_per_watt: report.tops_per_watt,
        latency_ns: report.latency.as_nanos(),
    };
    let path = dump_json("fig8_proposed_array", &out)?;
    println!("\nwrote {}", path.display());
    trace.finish()?;
    Ok(())
}
