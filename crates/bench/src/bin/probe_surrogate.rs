//! Probe: the certified surrogate fast path (DESIGN.md §17).
//!
//! Calibrates a `ferrocim-surrogate` store against the paper-default
//! 8-cell array over the 0–85 °C grid, then measures what the
//! subsystem promises:
//!
//! 1. **Speedup** — the same seeded query mix (random inputs,
//!    in-domain temperatures) is timed twice: through cache-hit
//!    surrogate evaluations and through live analytic solves. The gate
//!    requires the surrogate to be at least 50× faster.
//! 2. **Certificate** — every timed surrogate answer is compared
//!    against its live solve; the worst deviation must stay inside the
//!    curve's certified error envelope, and the envelope itself must
//!    stay under the gate bound.
//! 3. **Check mode** — a second store runs the same mix with
//!    `CheckPolicy::every(4)`: a seeded one-in-four subsample is
//!    re-solved live and compared to the envelope. Zero violations are
//!    tolerated — the envelope is a promise, not a statistic.
//! 4. **Domain refusal** — a 120 °C query must be refused with the
//!    typed `OutOfDomain` error, never extrapolated.
//!
//! Like `probe_serve`, the gate bounds in
//! `baselines/probe_surrogate.json` are hand-set limits (wall-clock
//! ratios are machine-dependent); `--update` never rewrites them.
//! Dumps `results/probe_surrogate.json`.

use ferrocim_bench::schema::{
    SurrogateCalibration, SurrogateCheckAudit, SurrogateDomainDemo, SurrogateGateBounds,
    SurrogateProbe, SurrogateSpeedup,
};
use ferrocim_bench::{dump_json, print_table, Trace};
use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::transfer::Adc;
use ferrocim_cim::{ArrayConfig, CimArray, MacPath, MacRequest};
use ferrocim_surrogate::{CheckPolicy, MacSurrogate, SurrogateError};
use ferrocim_telemetry::{Aggregator, Recorder, Tee, Telemetry};
use ferrocim_units::Celsius;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// The calibration temperature grid: the paper's operating range with
/// a room-temperature anchor (the same grid `ferrocim-serve` uses).
const GRID_C: [f64; 3] = [0.0, 27.0, 85.0];
/// Queries in the timed mix.
const QUERIES: usize = 128;
/// In-domain temperatures the query mix draws from. A small discrete
/// set keeps the per-temperature reference ADCs cheap to calibrate.
const QUERY_TEMPS_C: [f64; 6] = [0.0, 13.5, 27.0, 40.0, 56.0, 85.0];
/// The deliberately out-of-domain temperature for the refusal demo.
const OUT_OF_DOMAIN_C: f64 = 120.0;
/// Query-mix RNG seed (reproducible run-to-run).
const MIX_SEED: u64 = 0x05E5_EF17;
/// Check-mode sampling period.
const CHECK_EVERY: u64 = 4;

fn parse_gate_path(args: &[String]) -> Option<String> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--gate" {
            return iter.next().cloned();
        }
        if let Some(path) = arg.strip_prefix("--gate=") {
            return Some(path.to_string());
        }
    }
    None
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = Trace::from_args()?;
    let args: Vec<String> = std::env::args().collect();
    let gate: SurrogateGateBounds = match parse_gate_path(&args) {
        Some(path) => serde_json::from_str(&std::fs::read_to_string(&path)?)
            .map_err(|e| format!("gate bounds {path}: {e}"))?,
        None => SurrogateGateBounds {
            min_speedup: 50.0,
            max_envelope_v: 0.02,
            max_check_failures: 0,
        },
    };
    println!("# Probe — certified surrogate fast path: speedup, envelope, checks, domain\n");

    let agg = Arc::new(Aggregator::new());
    let tele = Telemetry::to(Tee::new(vec![
        agg.clone() as Arc<dyn Recorder>,
        Arc::new(trace.telemetry()),
    ]));
    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )?
    .with_recorder(tele.clone());
    let n = array.config().cells_per_row;
    let grid: Vec<Celsius> = GRID_C.iter().map(|&t| Celsius(t)).collect();
    let surrogate = MacSurrogate::new(array.clone(), &grid)?.with_recorder(tele.clone());

    // Calibrate the timed curve (a mixed weight pattern, so the probe
    // does not ride the all-ones special case) and record its cost.
    let weights: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
    let started = Instant::now();
    let curve = surrogate.curve_for(&weights)?;
    let calibration_wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let envelope = curve.envelope();
    println!(
        "calibrated {} cells over {:?} °C in {:.0} ms ({} live solves, envelope {:.3} mV)",
        n,
        GRID_C,
        calibration_wall_ms,
        curve.solves(),
        envelope.max_v * 1e3
    );

    // The seeded query mix: random inputs, temperatures from the
    // discrete in-domain set.
    let mut rng = StdRng::seed_from_u64(MIX_SEED);
    let mix: Vec<(Vec<bool>, Celsius)> = (0..QUERIES)
        .map(|_| {
            let inputs: Vec<bool> = (0..n).map(|_| rng.random::<bool>()).collect();
            let temp = Celsius(QUERY_TEMPS_C[rng.random_range(0..QUERY_TEMPS_C.len())]);
            (inputs, temp)
        })
        .collect();

    // Timed pass 1: cache-hit surrogate evaluations.
    let started = Instant::now();
    let mut surrogate_answers = Vec::with_capacity(QUERIES);
    for (inputs, temp) in &mix {
        surrogate_answers.push(surrogate.evaluate(&weights, inputs, *temp)?);
    }
    let surrogate_us = started.elapsed().as_secs_f64() * 1e6;

    // Timed pass 2: the same queries through live analytic solves.
    let started = Instant::now();
    let mut live_answers = Vec::with_capacity(QUERIES);
    for (inputs, temp) in &mix {
        live_answers.push(
            array.run(
                &MacRequest::new(inputs)
                    .weights(&weights)
                    .at(*temp)
                    .path(MacPath::Analytic),
            )?,
        );
    }
    let live_us = started.elapsed().as_secs_f64() * 1e6;

    // The certificate, measured: worst |v_surrogate − v_live| across
    // the mix, plus readout agreement against a per-temperature
    // reference ADC (informational — a deviation inside the envelope
    // may still legally cross a quantization threshold).
    let mut max_abs_deviation_v = 0.0f64;
    let mut readout_mismatches = 0usize;
    for ((inputs, temp), (fast, live)) in mix
        .iter()
        .zip(surrogate_answers.iter().zip(live_answers.iter()))
    {
        let _ = inputs;
        max_abs_deviation_v = max_abs_deviation_v.max((fast.v_acc - live.v_acc).value().abs());
        let adc = Adc::calibrate(&array, *temp)?;
        if fast.readout != adc.quantize(live.v_acc) {
            readout_mismatches += 1;
        }
    }
    let speedup = SurrogateSpeedup {
        queries: QUERIES,
        live_us_per_query: live_us / QUERIES as f64,
        surrogate_us_per_query: surrogate_us / QUERIES as f64,
        speedup: live_us / surrogate_us,
        max_abs_deviation_v,
        readout_mismatches,
    };

    // Check mode: a fresh store (so check-mode live solves never
    // pollute the timing above) replays the mix under
    // `CheckPolicy::every(4)`.
    let checker = MacSurrogate::new(array.clone(), &grid)?
        .with_recorder(tele.clone())
        .with_check(CheckPolicy::every(CHECK_EVERY));
    for (inputs, temp) in &mix {
        checker.evaluate(&weights, inputs, *temp)?;
    }
    let counts = checker.counts();
    let check = SurrogateCheckAudit {
        every: CHECK_EVERY,
        queries: QUERIES,
        checks: counts.checks,
        check_failures: counts.check_failures,
    };

    // Domain refusal: 120 °C is outside the grid and must come back as
    // the typed `OutOfDomain`, not an extrapolated number.
    let (lo_c, hi_c) = surrogate.domain_c();
    let inputs = vec![true; n];
    let rejected_typed = matches!(
        surrogate.evaluate(&weights, &inputs, Celsius(OUT_OF_DOMAIN_C)),
        Err(SurrogateError::OutOfDomain { .. })
    );
    let domain = SurrogateDomainDemo {
        lo_c,
        hi_c,
        rejected_temp_c: OUT_OF_DOMAIN_C,
        rejected_typed,
    };

    let calibration = SurrogateCalibration {
        curves: surrogate.store().len(),
        solves: curve.solves() as u64,
        wall_ms: calibration_wall_ms,
        envelope_max_v: envelope.max_v,
        envelope_rms_v: envelope.rms_v,
        envelope_probes: envelope.probes,
    };

    print_table(
        &["measure", "value"],
        &[
            vec![
                "live µs/query".to_string(),
                format!("{:.2}", speedup.live_us_per_query),
            ],
            vec![
                "surrogate µs/query".to_string(),
                format!("{:.3}", speedup.surrogate_us_per_query),
            ],
            vec!["speedup".to_string(), format!("{:.0}x", speedup.speedup)],
            vec![
                "certified envelope".to_string(),
                format!("{:.4} mV", envelope.max_v * 1e3),
            ],
            vec![
                "worst observed deviation".to_string(),
                format!("{:.4} mV", max_abs_deviation_v * 1e3),
            ],
            vec![
                "readout mismatches".to_string(),
                format!("{}/{}", readout_mismatches, QUERIES),
            ],
            vec![
                "checks (1 in 4)".to_string(),
                format!("{} ({} failed)", check.checks, check.check_failures),
            ],
            vec![
                "120 °C query".to_string(),
                if rejected_typed {
                    "refused (typed OutOfDomain)".to_string()
                } else {
                    "NOT refused".to_string()
                },
            ],
        ],
    );

    let mut violations = Vec::new();
    if speedup.speedup < gate.min_speedup {
        violations.push(format!(
            "speedup {:.1}x below the {:.0}x bound",
            speedup.speedup, gate.min_speedup
        ));
    }
    if !(envelope.max_v.is_finite() && envelope.max_v > 0.0) {
        violations.push(format!(
            "certified envelope {} is not usable",
            envelope.max_v
        ));
    }
    if envelope.max_v > gate.max_envelope_v {
        violations.push(format!(
            "certified envelope {:.3} mV exceeds the {:.3} mV bound",
            envelope.max_v * 1e3,
            gate.max_envelope_v * 1e3
        ));
    }
    if max_abs_deviation_v > envelope.max_v {
        violations.push(format!(
            "observed deviation {:.3} mV escaped the certified {:.3} mV envelope",
            max_abs_deviation_v * 1e3,
            envelope.max_v * 1e3
        ));
    }
    if check.checks == 0 {
        violations.push("check mode never sampled a query".into());
    }
    if check.check_failures > gate.max_check_failures {
        violations.push(format!(
            "{} check-mode envelope violation(s) (gate allows {})",
            check.check_failures, gate.max_check_failures
        ));
    }
    if !rejected_typed {
        violations.push("the out-of-domain query was not refused with OutOfDomain".into());
    }

    let out = SurrogateProbe {
        cells_per_row: n,
        grid_c: GRID_C.to_vec(),
        calibration,
        speedup,
        check,
        domain,
        gate,
        gate_passed: violations.is_empty(),
    };
    let path = dump_json("probe_surrogate", &out)?;
    println!("\nwrote {}", path.display());
    trace.finish()?;
    if !out.gate_passed {
        return Err(format!(
            "surrogate contract violated:\n  {}",
            violations.join("\n  ")
        )
        .into());
    }
    println!("surrogate contract held: fast, certified, checked, and domain-honest");
    Ok(())
}
