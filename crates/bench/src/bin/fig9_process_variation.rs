//! **E9 / Fig. 9** — impact of process variation (`σ_VT = 54 mV`) on
//! the 2T-1FeFET CIM output at 27 °C, via 100 Monte-Carlo runs.
//!
//! Paper numbers: highest error ≈ 25 % with 8 cells per row, below 10 %
//! with 4 cells per row (both ≪ the 6T SRAM CIM's 50 %).

use ferrocim_bench::schema::ProcessVariationPoint;
use ferrocim_bench::{dump_json, print_series, print_table};
use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::transfer::{TransferConfig, TransferModel};
use ferrocim_cim::{ArrayConfig, CimArray};
use ferrocim_units::Celsius;
fn run(
    cells: usize,
    tele: &ferrocim_telemetry::Telemetry,
) -> Result<ProcessVariationPoint, Box<dyn std::error::Error>> {
    let config = ArrayConfig {
        cells_per_row: cells,
        ..ArrayConfig::paper_default()
    };
    let array =
        CimArray::new(TwoTransistorOneFefet::paper_default(), config)?.with_recorder(tele.clone());
    let model = TransferModel::measure(&array, &TransferConfig::paper_default(Celsius(27.0)))?;
    Ok(ProcessVariationPoint {
        cells_per_row: cells,
        max_relative_error: model.max_relative_error(),
        correct_probability: (0..=cells).map(|k| model.correct_probability(k)).collect(),
        confusion: model.confusion().to_vec(),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    println!("# Fig. 9 — Monte-Carlo process variation (sigma_VT = 54 mV, 27 C)\n");
    let mut outputs = Vec::new();
    for cells in [8usize, 4] {
        let out = run(cells, &trace.telemetry())?;
        println!("## {cells} cells per row");
        let histogram: Vec<(f64, f64)> = out
            .correct_probability
            .iter()
            .enumerate()
            .map(|(k, &p)| (k as f64, p))
            .collect();
        print_series(
            "P(readout == true MAC)",
            "true MAC value",
            "probability",
            &histogram,
        );
        println!(
            "  max |readout - true| / full-scale = {:.1} %  (paper: {} %)\n",
            out.max_relative_error * 100.0,
            if cells == 8 { "~25" } else { "<10" }
        );
        outputs.push(out);
    }
    print_table(
        &["cells/row", "max relative error", "paper"],
        &outputs
            .iter()
            .map(|o| {
                vec![
                    o.cells_per_row.to_string(),
                    format!("{:.1} %", o.max_relative_error * 100.0),
                    if o.cells_per_row == 8 {
                        "~25 %"
                    } else {
                        "<10 %"
                    }
                    .into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\n(6T SRAM CIM reference from the paper: up to 50 % error)");
    let path = dump_json("fig9_process_variation", &outputs)?;
    println!("wrote {}", path.display());
    trace.finish()?;
    Ok(())
}
