//! **E2+E3 / Fig. 3** — output current of a single 1FeFET-1R cell over
//! 0–85 °C at the saturation read (`V_read = 1.3 V`, Fig. 3(a)) and the
//! subthreshold read (`V_read = 0.35 V`, Fig. 3(b)), normalized to the
//! 27 °C reference.
//!
//! Paper numbers: 20.6 % worst-case fluctuation in saturation,
//! 52.1 % in subthreshold.

use ferrocim_bench::schema::RegionResult;
use ferrocim_bench::{dump_json, print_series, print_table};
use ferrocim_cim::cells::{
    current_fluctuation, normalized_current_curve, CellDesign, CellOffsets, OneFefetOneR,
};
use ferrocim_spice::sweep::temperature_sweep;
use ferrocim_units::Celsius;
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    let reference = Celsius(27.0);
    let temps = temperature_sweep(18);
    let mut results = Vec::new();
    println!("# Fig. 3 — 1FeFET-1R cell output current vs temperature\n");
    for (cell, region, paper) in [
        (OneFefetOneR::saturation(), "saturation (Fig. 3a)", 0.206),
        (
            OneFefetOneR::subthreshold(),
            "subthreshold (Fig. 3b)",
            0.521,
        ),
    ] {
        let curve: Vec<(f64, f64)> = normalized_current_curve(&cell, &temps, reference)?
            .into_iter()
            .map(|(t, r)| (t.value(), r))
            .collect();
        let worst = current_fluctuation(&cell, &temps, reference)?;
        let i_ref = cell.read_current(true, true, reference, &CellOffsets::NOMINAL)?;
        print_series(
            &format!("{region}: I(T)/I(27C), I_ref = {i_ref}"),
            "T [C]",
            "normalized I",
            &curve,
        );
        println!(
            "  worst-case fluctuation: {:.1} % (paper: {:.1} %)\n",
            worst * 100.0,
            paper * 100.0
        );
        results.push(RegionResult {
            region: region.into(),
            v_read: cell.bias.v_read().value(),
            worst_fluctuation: worst,
            paper_fluctuation: paper,
            curve,
        });
    }
    print_table(
        &["region", "V_read", "measured fluct", "paper fluct"],
        &results
            .iter()
            .map(|r| {
                vec![
                    r.region.clone(),
                    format!("{:.2} V", r.v_read),
                    format!("{:.1} %", r.worst_fluctuation * 100.0),
                    format!("{:.1} %", r.paper_fluctuation * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    assert!(
        results[1].worst_fluctuation > 1.8 * results[0].worst_fluctuation,
        "shape check: subthreshold fluctuation must dwarf saturation"
    );
    let path = dump_json("fig3_cell_fluctuation", &results)?;
    println!("\nwrote {}", path.display());
    trace.finish()?;
    Ok(())
}
