//! **Ablation A1** — what the M1/M2 feedback ring actually buys:
//! compares the proposed 2T-1FeFET cell against an open-loop variant in
//! which M2's gate is tied to a constant bias (the feedback path cut),
//! everything else identical.

use ferrocim_bench::schema::AblationFeedbackRow;
use ferrocim_bench::{dump_json, print_table};
use ferrocim_cim::cells::{CellContext, CellDesign, CellOffsets, TwoTransistorOneFefet};
use ferrocim_cim::{CimError, ReadBias};
use ferrocim_spice::sweep::temperature_sweep;
use ferrocim_spice::{Circuit, DcAnalysis, Element, NodeId};
use ferrocim_units::{Ampere, Celsius, Volt};
/// The proposed cell with the feedback loop cut: M2's gate is tied to a
/// fixed bias node instead of the cell output.
#[derive(Debug, Clone)]
struct OpenLoopCell {
    inner: TwoTransistorOneFefet,
    /// The constant gate bias replacing the feedback connection.
    m2_gate_bias: Volt,
}

impl CellDesign for OpenLoopCell {
    fn name(&self) -> &'static str {
        "2T-1FeFET (open loop)"
    }

    fn bias(&self) -> ReadBias {
        self.inner.bias
    }

    fn build_cell(&self, ckt: &mut Circuit, ctx: &CellContext<'_>) -> Result<(), CimError> {
        // Reuse the closed-loop builder, then re-wire by building into a
        // private context whose "out" feeds M2's gate... simpler: build
        // the devices directly here, mirroring the inner topology but
        // with a fixed M2 gate node.
        let a = ckt.node(&format!("cell{}_a", ctx.index));
        let fixed = ckt.node(&format!("cell{}_fixed", ctx.index));
        ckt.add(Element::vdc(
            format!("VFIX{}", ctx.index),
            fixed,
            NodeId::GROUND,
            self.m2_gate_bias,
        ))?;
        let mut fefet = ferrocim_device::Fefet::new(self.inner.fefet.clone());
        fefet.set_polarization(ctx.weight.polarization());
        fefet.set_vth_offset(ctx.offsets.fefet);
        ckt.add(Element::fefet(
            format!("F{}", ctx.index),
            ctx.bl,
            ctx.wl,
            a,
            fefet,
        ))?;
        let m2_source = if self.inner.m2_source_grounded {
            NodeId::GROUND
        } else {
            ctx.sl
        };
        ckt.add(Element::Mosfet {
            name: format!("M2_{}", ctx.index),
            drain: a,
            gate: fixed,
            source: m2_source,
            model: ferrocim_device::MosfetModel::new(self.inner.m2.clone()),
            vth_offset: ctx.offsets.m2,
        })?;
        ckt.add(Element::Mosfet {
            name: format!("M1_{}", ctx.index),
            drain: ctx.bl,
            gate: a,
            source: ctx.out,
            model: ferrocim_device::MosfetModel::new(self.inner.m1.clone()),
            vth_offset: ctx.offsets.m1,
        })?;
        ckt.add(Element::capacitor(
            format!("CA{}", ctx.index),
            a,
            NodeId::GROUND,
            self.inner.c_node_a,
        ))?;
        Ok(())
    }

    fn read_current(
        &self,
        stored: bool,
        input: bool,
        temp: Celsius,
        offsets: &CellOffsets,
    ) -> Result<Ampere, CimError> {
        let mut ckt = Circuit::new();
        let bl = ckt.node("bl");
        let sl = ckt.node("sl");
        let wl = ckt.node("wl");
        let out = ckt.node("out");
        ckt.add(Element::vdc(
            "VBL",
            bl,
            NodeId::GROUND,
            self.inner.bias.v_bl,
        ))?;
        ckt.add(Element::vdc(
            "VSL",
            sl,
            NodeId::GROUND,
            self.inner.bias.v_sl,
        ))?;
        ckt.add(Element::vdc(
            "VWL",
            wl,
            NodeId::GROUND,
            self.inner.bias.wl_for(input),
        ))?;
        ckt.add(Element::vdc(
            "VOUT",
            out,
            NodeId::GROUND,
            self.inner.v_out_probe,
        ))?;
        let ctx = CellContext {
            index: 0,
            bl,
            sl,
            wl,
            out,
            weight: ferrocim_cim::cells::CellWeight::Bit(stored),
            offsets,
        };
        self.build_cell(&mut ckt, &ctx)?;
        let op = DcAnalysis::new(&ckt).at(temp).solve()?;
        Ok(Ampere(op.source_current("VOUT")?.value()))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    println!("# Ablation — the value of the M2 feedback connection\n");
    println!(
        "The feedback acts through the output trajectory (M2's gate rides\n\
         the cell output while C_o charges), so the fair comparison is at\n\
         the array level: the same row simulated with the feedback wire\n\
         versus M2's gate pinned to a matched constant bias.\n"
    );
    use ferrocim_cim::metrics::RangeTable;
    use ferrocim_cim::{ArrayConfig, CimArray};
    let temps = temperature_sweep(10);
    let closed_cell = TwoTransistorOneFefet::paper_default();
    let open_cell = OpenLoopCell {
        m2_gate_bias: closed_cell.v_out_probe,
        inner: closed_cell.clone(),
    };
    let config = ArrayConfig::paper_default();
    let closed = RangeTable::measure(
        &CimArray::new(closed_cell, config)?.with_recorder(trace.telemetry()),
        &temps,
    )?;
    let open = RangeTable::measure(
        &CimArray::new(open_cell, config)?.with_recorder(trace.telemetry()),
        &temps,
    )?;
    let (ci, cn) = closed.nmr_min();
    let (oi, on) = open.nmr_min();
    print_table(
        &["variant", "NMR_min (0-85 C)", "overlap"],
        &[
            vec![
                "closed loop (proposed)".into(),
                format!("NMR_{ci} = {cn:.3}"),
                closed.has_overlap().to_string(),
            ],
            vec![
                "open loop (M2 gate fixed)".into(),
                format!("NMR_{oi} = {on:.3}"),
                open.has_overlap().to_string(),
            ],
        ],
    );
    println!(
        "\nfeedback margin improvement: NMR_min {:.3} -> {:.3}",
        on, cn
    );
    let results = vec![
        AblationFeedbackRow {
            variant: "closed".into(),
            nmr_min: cn,
            nmr_min_index: ci,
            has_overlap: closed.has_overlap(),
        },
        AblationFeedbackRow {
            variant: "open".into(),
            nmr_min: on,
            nmr_min_index: oi,
            has_overlap: open.has_overlap(),
        },
    ];
    let path = dump_json("ablation_feedback", &results)?;
    println!("wrote {}", path.display());
    trace.finish()?;
    Ok(())
}
