//! **E5 / Fig. 7** — normalized output current of the proposed
//! 2T-1FeFET cell over 0–85 °C, against both 1FeFET-1R baselines.
//!
//! Paper numbers: worst-case 26.6 % (at 0 °C), improving to 12.4 % when
//! restricted to 20–85 °C — close to the *saturation* baseline
//! (20.6 %) and far better than the subthreshold baseline (52.1 %).

use ferrocim_bench::schema::ProposedCellRow;
use ferrocim_bench::{dump_json, print_series, print_table};
use ferrocim_cim::cells::{
    current_fluctuation, normalized_current_curve, CellDesign, OneFefetOneR, OneFefetOneT,
    TwoTransistorOneFefet,
};
use ferrocim_spice::sweep::{temperature_sweep, warm_temperature_sweep};
use ferrocim_units::Celsius;
fn measure<C: CellDesign>(cell: &C) -> Result<ProposedCellRow, ferrocim_cim::CimError> {
    let reference = Celsius(27.0);
    let full = temperature_sweep(18);
    let warm = warm_temperature_sweep(14);
    Ok(ProposedCellRow {
        cell: cell.name().to_string(),
        fluct_full_range: current_fluctuation(cell, &full, reference)?,
        fluct_warm_range: current_fluctuation(cell, &warm, reference)?,
        curve: normalized_current_curve(cell, &full, reference)?
            .into_iter()
            .map(|(t, r)| (t.value(), r))
            .collect(),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    println!("# Fig. 7 — 2T-1FeFET cell temperature resilience\n");
    let proposed = measure(&TwoTransistorOneFefet::paper_default())?;
    let sat = measure(&OneFefetOneR::saturation())?;
    let sub = measure(&OneFefetOneR::subthreshold())?;
    let cascode = measure(&OneFefetOneT::subthreshold())?;
    print_series(
        "proposed 2T-1FeFET: I(T)/I(27C)",
        "T [C]",
        "normalized I",
        &proposed.curve,
    );
    print_table(
        &["cell", "fluct 0-85C", "fluct 20-85C", "paper 0-85C"],
        &[
            vec![
                format!("{} (proposed)", proposed.cell),
                format!("{:.1} %", proposed.fluct_full_range * 100.0),
                format!("{:.1} %", proposed.fluct_warm_range * 100.0),
                "26.6 %".into(),
            ],
            vec![
                format!("{} saturation", sat.cell),
                format!("{:.1} %", sat.fluct_full_range * 100.0),
                format!("{:.1} %", sat.fluct_warm_range * 100.0),
                "20.6 %".into(),
            ],
            vec![
                format!("{} subthreshold", sub.cell),
                format!("{:.1} %", sub.fluct_full_range * 100.0),
                format!("{:.1} %", sub.fluct_warm_range * 100.0),
                "52.1 %".into(),
            ],
            vec![
                format!("{} cascode [19]", cascode.cell),
                format!("{:.1} %", cascode.fluct_full_range * 100.0),
                format!("{:.1} %", cascode.fluct_warm_range * 100.0),
                "(not reported)".into(),
            ],
        ],
    );
    assert!(
        proposed.fluct_full_range < sub.fluct_full_range,
        "shape check: the proposed cell must beat the subthreshold baseline"
    );
    assert!(
        proposed.fluct_warm_range <= proposed.fluct_full_range + 1e-12,
        "shape check: the warm range is where the design is optimized"
    );
    assert!(
        proposed.fluct_full_range < cascode.fluct_full_range,
        "shape check: the proposed cell must also beat the cascode baseline"
    );
    let results = [proposed, sat, sub, cascode];
    let path = dump_json("fig7_proposed_cell", &results)?;
    println!("\nwrote {}", path.display());
    trace.finish()?;
    Ok(())
}
