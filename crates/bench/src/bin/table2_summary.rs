//! **E11+E12 / Table II** — the cross-design performance summary, with
//! the "This work" row measured live from the simulated array, plus the
//! paper's energy-ratio call-outs. With `--accuracy`, also trains
//! VGG-nano on the synthetic dataset and evaluates it through the CIM
//! transfer model at 27 °C (the Sec. IV-B experiment; several minutes).

use ferrocim_bench::schema::ComparisonRow;
use ferrocim_bench::{dump_json, print_table};
use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::compare::{comparison_table, energy_ratios, ComparisonEntry, EnergyFigure};
use ferrocim_cim::transfer::{TransferConfig, TransferModel};
use ferrocim_cim::{ArrayConfig, CimArray};
use ferrocim_nn::cim_exec::{CimMapping, CimNetwork};
use ferrocim_nn::data::Generator;
use ferrocim_nn::vgg::vgg_nano;
use ferrocim_nn::{try_train_recorded, Telemetry, TrainConfig};
use ferrocim_units::Celsius;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn energy_cell(e: &EnergyFigure) -> String {
    match e {
        EnergyFigure::PerOperation(j) => format!("{j} (/op)"),
        EnergyFigure::PerInference(j) => format!("{j} (/inference)"),
        EnergyFigure::Unreported => "NA".into(),
    }
}

fn measure_accuracy(tele: &Telemetry) -> Result<f64, Box<dyn std::error::Error>> {
    eprintln!("training VGG-nano on the synthetic dataset (noise-aware)...");
    let train_set = Generator::new(1).generate(1500);
    let test_set = Generator::new(999).generate(400);
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = vgg_nano(&mut rng);
    let stats = try_train_recorded(
        &mut net,
        &train_set.images,
        &train_set.labels,
        &TrainConfig {
            epochs: 24,
            learning_rate: 0.01,
            ..TrainConfig::default()
        },
        tele,
    )?;
    eprintln!(
        "clean train accuracy after {} epochs: {:.3}",
        stats.len(),
        stats.last().map(|s| s.train_accuracy).unwrap_or(0.0)
    );
    let clean = net.accuracy(&test_set.images, &test_set.labels);
    eprintln!("clean test accuracy: {clean:.4}");
    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )?
    .with_recorder(tele.clone());
    let cim = CimNetwork::map(&net, CimMapping::default()).with_recorder(tele.clone());
    // The paper's headline number is at nominal conditions; the
    // temperature corners demonstrate the resilience claim.
    let mut acc_27 = 0.0;
    for temp_c in [0.0, 27.0, 85.0] {
        let model =
            TransferModel::measure(&array, &TransferConfig::paper_default(Celsius(temp_c)))?;
        let acc = cim.accuracy(&test_set.images, &test_set.labels, &model, 13);
        eprintln!("CIM accuracy at {temp_c} C: {acc:.4}");
        if temp_c == 27.0 {
            acc_27 = acc;
        }
    }
    Ok(acc_27)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    let with_accuracy = std::env::args().any(|a| a == "--accuracy");
    let accuracy = if with_accuracy {
        Some(measure_accuracy(&trace.telemetry())?)
    } else {
        None
    };
    println!("# Table II — performance summary\n");
    let rows = comparison_table(Celsius(27.0), accuracy)?;
    print_table(
        &[
            "Related Work",
            "Device",
            "Process",
            "Cell",
            "Dataset",
            "Network",
            "Accuracy",
            "Energy",
            "TOPS/W",
        ],
        &rows
            .iter()
            .map(|r: &ComparisonEntry| {
                vec![
                    r.work.clone(),
                    r.device.into(),
                    r.process.into(),
                    r.cell.into(),
                    r.dataset.unwrap_or("/").into(),
                    r.network.unwrap_or("/").into(),
                    r.accuracy
                        .map(|a| format!("{:.2} %", a * 100.0))
                        .unwrap_or_else(|| "/".into()),
                    energy_cell(&r.energy),
                    r.tops_per_watt
                        .map(|t| format!("{t:.0}"))
                        .unwrap_or_else(|| "NA".into()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let this_work = rows.last().expect("this-work row");
    if let EnergyFigure::PerOperation(e) = this_work.energy {
        // The paper's ratios divide the competitors' per-op figures by
        // the 3.14 fJ per-MAC energy directly (1.4 pJ / 3.14 fJ = 445.9).
        let (reram, mtj) = energy_ratios(e);
        println!("\nenergy ratios vs this work (paper: ReRAM 64.6x, MTJ 445.9x):");
        println!("  ReRAM [14]: {reram:.1}x more energy per op");
        println!("  MTJ   [36]: {mtj:.1}x more energy per op");
    }
    let json: Vec<ComparisonRow> = rows.iter().map(ComparisonRow::from).collect();
    let path = dump_json("table2_summary", &json)?;
    println!("\nwrote {}", path.display());
    trace.finish()?;
    Ok(())
}
