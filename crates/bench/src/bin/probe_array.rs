//! Diagnostic probe: energy report, NMR, and baseline-overlap check for
//! the paper-default arrays.

use ferrocim_cim::cells::{OneFefetOneR, TwoTransistorOneFefet};
use ferrocim_cim::metrics::{EnergyReport, RangeTable};
use ferrocim_cim::{ArrayConfig, CimArray};
use ferrocim_spice::sweep::temperature_sweep;
use ferrocim_units::Celsius;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    let config = ArrayConfig::paper_default();
    let proposed = CimArray::new(TwoTransistorOneFefet::paper_default(), config)?
        .with_recorder(trace.telemetry());
    let report = EnergyReport::measure(&proposed, Celsius(27.0))?;
    println!("proposed 2T-1FeFET array:");
    println!("  average energy/MAC = {}", report.average);
    println!("  TOPS/W             = {:.0}", report.tops_per_watt);
    for (k, e) in report.per_mac.iter().enumerate() {
        println!("  MAC={k}: {e}");
    }
    let temps = temperature_sweep(18);
    let table = RangeTable::measure(&proposed, &temps)?;
    let (i, nmr) = table.nmr_min();
    println!(
        "  NMR_min = NMR_{i} = {nmr:.3}, overlap = {}",
        table.has_overlap()
    );

    let baseline =
        CimArray::new(OneFefetOneR::subthreshold(), config)?.with_recorder(trace.telemetry());
    let table_b = RangeTable::measure(&baseline, &temps)?;
    let (ib, nmrb) = table_b.nmr_min();
    println!("baseline subthreshold 1FeFET-1R array:");
    println!(
        "  NMR_min = NMR_{ib} = {nmrb:.3}, overlap = {}",
        table_b.has_overlap()
    );
    for r in table_b.ranges() {
        println!(
            "  MAC={}: [{:.2} mV, {:.2} mV]",
            r.mac,
            r.lo.value() * 1e3,
            r.hi.value() * 1e3
        );
    }
    trace.finish()?;
    Ok(())
}
