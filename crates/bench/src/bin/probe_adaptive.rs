//! Probe: adaptive LTE-controlled stepping vs. the fixed-step baseline
//! on the paper-default MAC readout transient (DESIGN.md §11).
//!
//! Runs the same 8-cell 2T-1FeFET row readout netlist through both
//! stepping modes, reports accepted/rejected/rescued step counts and
//! wall-clock timings, and dumps `results/probe_adaptive.json`.

use ferrocim_bench::schema::{AdaptiveProbe, PathStats};
use ferrocim_bench::{dump_json, print_table};
use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::{mac_operands, ArrayConfig, CimArray};
use ferrocim_spice::{AdaptiveOptions, Circuit, NodeId, TransientAnalysis};
use ferrocim_units::Second;
use std::time::Instant;

/// Wall-clock repetitions per stepping mode; the minimum is reported so
/// a background hiccup on one run does not skew the comparison.
const REPS: usize = 5;

fn time_run<'a>(
    make: impl Fn() -> TransientAnalysis<'a>,
    ckt_acc: NodeId,
) -> Result<(PathStats, f64), ferrocim_spice::SpiceError> {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let run = make().run()?;
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(run);
    }
    let run = result.expect("REPS > 0");
    let report = run.step_report();
    let v_acc = run.final_voltage(ckt_acc).value();
    Ok((
        PathStats {
            samples: run.times().len(),
            accepted: report.accepted,
            rejected: report.rejected,
            rescued: report.rescued,
            wall_clock_us: best * 1e6,
            v_acc_mv: v_acc * 1e3,
        },
        v_acc,
    ))
}

fn stats_row(label: &str, s: &PathStats) -> Vec<String> {
    vec![
        label.into(),
        s.samples.to_string(),
        s.accepted.to_string(),
        s.rejected.to_string(),
        s.rescued.to_string(),
        format!("{:.1}", s.wall_clock_us),
        format!("{:.3}", s.v_acc_mv),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = ferrocim_bench::Trace::from_args()?;
    println!("# Probe — adaptive vs. fixed stepping on the MAC readout\n");
    let config = ArrayConfig::paper_default();
    let array = CimArray::new(TwoTransistorOneFefet::paper_default(), config)?;
    // A mid-scale MAC level exercises both the charge and the share
    // phase with several cells active.
    let mac_level = config.cells_per_row / 2 + 1;
    let (weights, inputs) = mac_operands(config.cells_per_row, mac_level);
    let (ckt, acc, t_stop): (Circuit, NodeId, Second) = array.readout_circuit(&weights, &inputs)?;

    let opts = AdaptiveOptions::for_duration(t_stop);
    let (fixed, v_fixed) = time_run(
        || {
            TransientAnalysis::over(&ckt, t_stop)
                .with_fixed_step(config.dt)
                .with_recorder(trace.telemetry())
        },
        acc,
    )?;
    let (adaptive, v_adaptive) = time_run(
        || {
            TransientAnalysis::over(&ckt, t_stop)
                .with_adaptive_options(opts)
                .with_recorder(trace.telemetry())
        },
        acc,
    )?;

    print_table(
        &[
            "stepping",
            "samples",
            "accepted",
            "rejected",
            "rescued",
            "wall [us]",
            "V_acc [mV]",
        ],
        &[stats_row("fixed", &fixed), stats_row("adaptive", &adaptive)],
    );

    let endpoint_delta_uv = (v_adaptive - v_fixed).abs() * 1e6;
    let step_ratio = fixed.accepted as f64 / adaptive.accepted.max(1) as f64;
    let speedup = fixed.wall_clock_us / adaptive.wall_clock_us;
    println!("\nendpoint delta = {endpoint_delta_uv:.2} uV");
    println!("step ratio (fixed/adaptive accepted) = {step_ratio:.2}x");
    println!("wall-clock speedup = {speedup:.2}x");

    let out = AdaptiveProbe {
        cells_per_row: config.cells_per_row,
        mac_level,
        t_stop_ns: t_stop.value() * 1e9,
        fixed_dt_ps: config.dt.value() * 1e12,
        lte_tol: opts.lte_tol,
        fixed,
        adaptive,
        endpoint_delta_uv,
        step_ratio,
        speedup,
    };
    let path = dump_json("probe_adaptive", &out)?;
    println!("\nwrote {}", path.display());
    trace.finish()?;
    Ok(())
}
