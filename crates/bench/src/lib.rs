//! Experiment harness shared by the figure/table reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation section (see DESIGN.md §4 for the index). This library
//! provides the common console-table/series formatting and the JSON
//! results dump used by EXPERIMENTS.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;

/// Prints an aligned console table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |sep: &str| {
        let cells: Vec<String> = widths.iter().map(|w| sep.repeat(*w)).collect();
        format!("+-{}-+", cells.join("-+-"))
    };
    println!("{}", line("-"));
    let head: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("| {} |", head.join(" | "));
    println!("{}", line("-"));
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("| {} |", cells.join(" | "));
    }
    println!("{}", line("-"));
}

/// Prints an `(x, y)` series as a fixed-width two-column block plus a
/// crude ASCII sparkline, which is how the figure binaries render curves.
pub fn print_series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) {
    println!("## {title}");
    if points.is_empty() {
        println!("  (no data)");
        return;
    }
    let y_min = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let y_max = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let span = (y_max - y_min).max(1e-30);
    const BARS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let spark: String = points
        .iter()
        .map(|p| {
            let t = ((p.1 - y_min) / span * (BARS.len() - 1) as f64).round() as usize;
            BARS[t.min(BARS.len() - 1)]
        })
        .collect();
    println!("  {y_label} vs {x_label}:  {spark}");
    for (x, y) in points {
        println!("  {x:>10.3}  {y:>14.6}");
    }
}

/// Where experiment JSON dumps land (`results/` at the workspace root,
/// overridable with `FERROCIM_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("FERROCIM_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Serializes an experiment result to `results/<name>.json` so that
/// EXPERIMENTS.md can reference machine-readable outputs.
///
/// # Errors
///
/// Returns I/O errors from directory creation or the write.
pub fn dump_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut file = std::fs::File::create(&path)?;
    let text = serde_json::to_string_pretty(value)?;
    file.write_all(text.as_bytes())?;
    file.write_all(b"\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rejects_ragged_rows() {
        let result = std::panic::catch_unwind(|| {
            print_table(&["a", "b"], &[vec!["1".into()]]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn json_dump_round_trips() {
        let dir = std::env::temp_dir().join("ferrocim-test-results");
        std::env::set_var("FERROCIM_RESULTS_DIR", &dir);
        let path = dump_json("unit-test", &serde_json::json!({"x": 1})).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"x\": 1"));
        std::env::remove_var("FERROCIM_RESULTS_DIR");
    }
}
