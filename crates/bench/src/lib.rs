//! Experiment harness shared by the figure/table reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation section (see DESIGN.md §4 for the index). This library
//! provides the common console-table/series formatting and the JSON
//! results dump used by EXPERIMENTS.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ferrocim_telemetry::{DetailLevel, Event, JsonlSink, Recorder as _, Telemetry};
use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

pub mod schema;

/// Prints an aligned console table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |sep: &str| {
        let cells: Vec<String> = widths.iter().map(|w| sep.repeat(*w)).collect();
        format!("+-{}-+", cells.join("-+-"))
    };
    println!("{}", line("-"));
    let head: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("| {} |", head.join(" | "));
    println!("{}", line("-"));
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("| {} |", cells.join(" | "));
    }
    println!("{}", line("-"));
}

/// Prints an `(x, y)` series as a fixed-width two-column block plus a
/// crude ASCII sparkline, which is how the figure binaries render curves.
pub fn print_series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) {
    println!("## {title}");
    if points.is_empty() {
        println!("  (no data)");
        return;
    }
    let y_min = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let y_max = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let span = (y_max - y_min).max(1e-30);
    const BARS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let spark: String = points
        .iter()
        .map(|p| {
            let t = ((p.1 - y_min) / span * (BARS.len() - 1) as f64).round() as usize;
            BARS[t.min(BARS.len() - 1)]
        })
        .collect();
    println!("  {y_label} vs {x_label}:  {spark}");
    for (x, y) in points {
        println!("  {x:>10.3}  {y:>14.6}");
    }
}

/// Where experiment JSON dumps land (`results/` at the workspace root,
/// overridable with `FERROCIM_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("FERROCIM_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Serializes an experiment result to `results/<name>.json` so that
/// EXPERIMENTS.md can reference machine-readable outputs.
///
/// # Errors
///
/// Returns I/O errors from directory creation or the write.
pub fn dump_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut file = std::fs::File::create(&path)?;
    let text = serde_json::to_string_pretty(value)?;
    file.write_all(text.as_bytes())?;
    file.write_all(b"\n")?;
    Ok(path)
}

/// Optional JSONL trace capture shared by every experiment binary.
///
/// `--trace <path>` (or `--trace=<path>`) on the command line opens a
/// [`JsonlSink`] there: the first recorded event is an
/// [`Event::Manifest`] naming the binary and its argument list, and the
/// run's telemetry streams after it. Without the flag the handle is
/// off, so the instrumentation sites the binaries thread it into cost
/// nothing.
///
/// `--trace-detail <off|reports|iterations>` selects the
/// [`DetailLevel`] of the handle (default `reports`); `iterations`
/// additionally records per-iteration Newton residuals and fine-grained
/// MAC spans, at a substantial trace-size cost.
#[derive(Debug)]
pub struct Trace {
    sink: Option<Arc<JsonlSink>>,
    telemetry: Telemetry,
}

impl Trace {
    /// Builds the trace from the process arguments.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from opening the sink, and `InvalidInput`
    /// when `--trace` is given without a path.
    pub fn from_args() -> std::io::Result<Trace> {
        let args: Vec<String> = std::env::args().collect();
        Trace::from_arg_list(&args)
    }

    /// [`Trace::from_args`] over an explicit argument list (with
    /// `argv[0]` first), split out so tests can drive it.
    ///
    /// # Errors
    ///
    /// See [`Trace::from_args`].
    pub fn from_arg_list(args: &[String]) -> std::io::Result<Trace> {
        let detail = parse_trace_detail(args)?;
        let Some(path) = parse_trace_path(args)? else {
            return Ok(Trace {
                sink: None,
                telemetry: Telemetry::off(),
            });
        };
        let sink = Arc::new(JsonlSink::create(path)?);
        let telemetry =
            Telemetry::new(sink.clone()).with_detail(detail.unwrap_or(DetailLevel::Reports));
        let bin = args
            .first()
            .map(|arg0| {
                std::path::Path::new(arg0)
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| arg0.clone())
            })
            .unwrap_or_default();
        // The manifest goes through the sink directly so the header
        // lands even when `--trace-detail off` silences the handle.
        sink.record(&Event::Manifest {
            bin,
            args: args.iter().skip(1).cloned().collect(),
        });
        Ok(Trace {
            sink: Some(sink),
            telemetry,
        })
    }

    /// The handle to thread into simulation builders (`with_recorder`)
    /// and recorded entry points. Off when `--trace` was not given.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// Whether a trace file is being written.
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Flushes and atomically publishes the trace file, printing where
    /// it landed. A no-op without `--trace`.
    ///
    /// # Errors
    ///
    /// Returns the sink's first latched write error, or flush/rename
    /// failures.
    pub fn finish(self) -> std::io::Result<()> {
        if let Some(sink) = self.sink {
            let events = sink.events_written();
            let path = sink.finish()?;
            println!("wrote trace {} ({events} events)", path.display());
        }
        Ok(())
    }
}

fn parse_trace_path(args: &[String]) -> std::io::Result<Option<PathBuf>> {
    let mut iter = args.iter().skip(1);
    while let Some(arg) = iter.next() {
        if arg == "--trace" {
            return match iter.next() {
                Some(path) => Ok(Some(PathBuf::from(path))),
                None => Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "--trace requires a path argument",
                )),
            };
        }
        if let Some(path) = arg.strip_prefix("--trace=") {
            return Ok(Some(PathBuf::from(path)));
        }
    }
    Ok(None)
}

fn parse_trace_detail(args: &[String]) -> std::io::Result<Option<DetailLevel>> {
    let bad = |value: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("--trace-detail expects off|reports|iterations, got {value:?}"),
        )
    };
    let mut iter = args.iter().skip(1);
    while let Some(arg) = iter.next() {
        if arg == "--trace-detail" {
            return match iter.next() {
                Some(value) => DetailLevel::parse(value)
                    .map(Some)
                    .ok_or_else(|| bad(value)),
                None => Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "--trace-detail requires a level argument",
                )),
            };
        }
        if let Some(value) = arg.strip_prefix("--trace-detail=") {
            return DetailLevel::parse(value)
                .map(Some)
                .ok_or_else(|| bad(value));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rejects_ragged_rows() {
        let result = std::panic::catch_unwind(|| {
            print_table(&["a", "b"], &[vec!["1".into()]]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn trace_is_off_without_the_flag() {
        let args = vec!["bench-bin".to_string(), "--other".to_string()];
        let trace = Trace::from_arg_list(&args).expect("no flag parses");
        assert!(!trace.is_on());
        assert!(!trace.telemetry().is_on());
        trace.finish().expect("off finish is a no-op");
    }

    #[test]
    fn trace_flag_without_path_is_rejected() {
        let args = vec!["bench-bin".to_string(), "--trace".to_string()];
        let err = Trace::from_arg_list(&args).expect_err("missing path");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn trace_writes_a_manifest_header() {
        let path =
            std::env::temp_dir().join(format!("ferrocim-bench-trace-{}.jsonl", std::process::id()));
        let args = vec![
            "/usr/bin/probe_x".to_string(),
            format!("--trace={}", path.display()),
            "--runs".to_string(),
            "5".to_string(),
        ];
        let trace = Trace::from_arg_list(&args).expect("sink opens");
        assert!(trace.is_on());
        trace.telemetry().record(&Event::McRunStarted { run: 0 });
        trace.finish().expect("finish");
        let events = ferrocim_telemetry::read_trace(&path).expect("readable");
        assert_eq!(
            events[0],
            Event::Manifest {
                bin: "probe_x".to_string(),
                args: vec![
                    format!("--trace={}", path.display()),
                    "--runs".to_string(),
                    "5".to_string(),
                ],
            }
        );
        assert_eq!(events[1], Event::McRunStarted { run: 0 });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_detail_selects_the_level() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let deep = dir.join(format!("ferrocim-bench-detail-deep-{pid}.jsonl"));
        let args = vec![
            "bench-bin".to_string(),
            format!("--trace={}", deep.display()),
            "--trace-detail".to_string(),
            "iterations".to_string(),
        ];
        let trace = Trace::from_arg_list(&args).expect("parses");
        assert!(trace.telemetry().wants_iterations());
        drop(trace);
        let _ = std::fs::remove_file(&deep);

        // `off` silences the handle but still writes the manifest
        // header, so the file remains a valid (near-empty) trace.
        let off = dir.join(format!("ferrocim-bench-detail-off-{pid}.jsonl"));
        let args = vec![
            "bench-bin".to_string(),
            format!("--trace={}", off.display()),
            "--trace-detail=off".to_string(),
        ];
        let trace = Trace::from_arg_list(&args).expect("parses");
        assert!(trace.is_on(), "the sink is open");
        assert!(!trace.telemetry().is_on(), "the handle is silenced");
        trace.finish().expect("finish");
        let events = ferrocim_telemetry::read_trace(&off).expect("readable");
        assert_eq!(events.len(), 1, "manifest only");
        assert!(matches!(events[0], Event::Manifest { .. }));
        let _ = std::fs::remove_file(&off);
    }

    #[test]
    fn trace_detail_rejects_unknown_levels() {
        let args = vec![
            "bench-bin".to_string(),
            "--trace-detail=verbose".to_string(),
        ];
        let err = Trace::from_arg_list(&args).expect_err("bad level");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        let args = vec!["bench-bin".to_string(), "--trace-detail".to_string()];
        let err = Trace::from_arg_list(&args).expect_err("missing level");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn json_dump_round_trips() {
        let dir = std::env::temp_dir().join("ferrocim-test-results");
        std::env::set_var("FERROCIM_RESULTS_DIR", &dir);
        let path = dump_json("unit-test", &serde_json::json!({"x": 1})).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"x\": 1"));
        std::env::remove_var("FERROCIM_RESULTS_DIR");
    }
}
