//! Serde schemas for every artifact under `results/`.
//!
//! Each reproduction binary dumps its JSON through one of these types
//! instead of a private ad-hoc struct, and the tier-1 test
//! `tests/results_schema.rs` deserializes every checked-in
//! `results/*.json` back through the same types. A bin therefore cannot
//! silently drift its output shape away from what the checked-in
//! artifacts (and EXPERIMENTS.md) promise: renaming or retyping a field
//! fails the schema test until the artifact is regenerated.
//!
//! Naming convention: the type for `results/<name>.json` is listed next
//! to each definition. Roots that are JSON arrays are validated as
//! `Vec<Row>` of the row type given here.

use serde::{Deserialize, Serialize};

/// One row of `results/ablation_feedback.json` (root: array).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationFeedbackRow {
    /// Ablation variant label (for example `proposed` or `open-loop`).
    pub variant: String,
    /// Worst-case noise-margin ratio across adjacent level pairs.
    pub nmr_min: f64,
    /// Index of the level pair attaining `nmr_min`.
    pub nmr_min_index: usize,
    /// Whether any adjacent output ranges overlap.
    pub has_overlap: bool,
}

/// One MAC-level output range of `results/ablation_multilevel.json`
/// (root: array of per-configuration arrays of these).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelRange {
    /// MAC output level.
    pub level: u8,
    /// Lower edge of the accumulated voltage range, in millivolts.
    pub lo_mv: f64,
    /// Upper edge of the accumulated voltage range, in millivolts.
    pub hi_mv: f64,
}

/// One row of `results/ablation_write_verify.json` (root: array).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteVerifyRow {
    /// Programming scheme label.
    pub scheme: String,
    /// Worst per-cell error in quantized levels.
    pub max_abs_error_levels: usize,
    /// Mean per-cell error in quantized levels.
    pub mean_abs_error_levels: f64,
    /// Mean verify iterations needed per programmed row.
    pub mean_verify_iterations_per_row: f64,
}

/// One curve of `results/fig1_fefet_iv.json` (root: array).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IvCurve {
    /// Polarization state (`low_vt` / `high_vt`).
    pub state: String,
    /// Simulation temperature in Celsius.
    pub temp_c: f64,
    /// `(v_gs, log10(i_d))` samples along the sweep.
    pub points: Vec<(f64, f64)>,
}

/// One operating region of `results/fig3_cell_fluctuation.json`
/// (root: array).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionResult {
    /// Operating-region label (for example `subthreshold`).
    pub region: String,
    /// Read voltage applied to the cell, in volts.
    pub v_read: f64,
    /// Worst relative current fluctuation over the temperature sweep.
    pub worst_fluctuation: f64,
    /// The paper's reported fluctuation for the same region.
    pub paper_fluctuation: f64,
    /// `(temperature_c, relative_current)` samples.
    pub curve: Vec<(f64, f64)>,
}

/// Root of `results/fig4_baseline_overlap.json` (single object).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineOverlap {
    /// Worst-case noise-margin ratio across adjacent level pairs.
    pub nmr_min: f64,
    /// Index of the level pair attaining `nmr_min`.
    pub nmr_min_index: usize,
    /// Whether any adjacent output ranges overlap.
    pub has_overlap: bool,
    /// `(level, lo_mv, hi_mv)` output ranges.
    pub ranges_mv: Vec<(usize, f64, f64)>,
}

/// One cell variant of `results/fig7_proposed_cell.json` (root: array).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProposedCellRow {
    /// Cell structure label.
    pub cell: String,
    /// Relative fluctuation over the full temperature range.
    pub fluct_full_range: f64,
    /// Relative fluctuation over the warm sub-range.
    pub fluct_warm_range: f64,
    /// `(temperature_c, relative_current)` samples.
    pub curve: Vec<(f64, f64)>,
}

/// Root of `results/fig8_proposed_array.json` (single object).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProposedArraySummary {
    /// `(level_pair_index, nmr)` minimum over the full temperature range.
    pub nmr_min_full: (usize, f64),
    /// `(level_pair_index, nmr)` minimum over the warm sub-range.
    pub nmr_min_warm: (usize, f64),
    /// Whether any adjacent output ranges overlap.
    pub has_overlap: bool,
    /// `(level, lo_mv, hi_mv)` output ranges.
    pub ranges_mv: Vec<(usize, f64, f64)>,
    /// Per-level MAC energy in femtojoules.
    pub energy_per_mac_fj: Vec<f64>,
    /// Average MAC energy in femtojoules (paper: 3.14 fJ).
    pub average_energy_fj: f64,
    /// Energy efficiency in TOPS/W.
    pub tops_per_watt: f64,
    /// MAC latency in nanoseconds.
    pub latency_ns: f64,
}

/// One row-width sample of `results/fig9_process_variation.json`
/// (root: array).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessVariationPoint {
    /// Active cells per accumulated row.
    pub cells_per_row: usize,
    /// Worst relative MAC error across Monte-Carlo samples.
    pub max_relative_error: f64,
    /// Per-level probability of exact readout.
    pub correct_probability: Vec<f64>,
    /// Level-confusion matrix (rows: programmed, columns: read).
    pub confusion: Vec<Vec<f64>>,
}

/// One layer of `results/table1_vgg_structure.json` (root: array).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VggLayerRow {
    /// Layer label.
    pub layer: String,
    /// Input feature-map shape.
    pub input_map: String,
    /// Output feature-map shape.
    pub output_map: String,
    /// Non-linearity applied after the layer.
    pub non_linearity: String,
}

/// Energy figure of a comparison row — mirrors
/// `ferrocim_cim::compare::EnergyFigure`, with the `Joule` newtype
/// widened to `f64` so the schema side derives `Deserialize`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EnergyFigure {
    /// Joules per elementary MAC operation.
    PerOperation(f64),
    /// Joules per full network inference.
    PerInference(f64),
    /// Not reported.
    Unreported,
}

/// One row of `results/table2_summary.json` (root: array) — the owned
/// mirror of `ferrocim_cim::compare::ComparisonEntry`, whose
/// `&'static str` fields cannot implement `Deserialize`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Work label (citation key or "This work").
    pub work: String,
    /// Device technology (CMOS, FeFET, ReRAM, MTJ…).
    pub device: String,
    /// Process node label.
    pub process: String,
    /// Cell structure name.
    pub cell: String,
    /// Dataset evaluated, if any.
    pub dataset: Option<String>,
    /// Network architecture evaluated, if any.
    pub network: Option<String>,
    /// Reported classification accuracy, if any (fraction, 0–1).
    pub accuracy: Option<f64>,
    /// Reported energy figure.
    pub energy: EnergyFigure,
    /// Reported energy efficiency in TOPS/W, if any.
    pub tops_per_watt: Option<f64>,
}

impl From<&ferrocim_cim::compare::ComparisonEntry> for ComparisonRow {
    fn from(entry: &ferrocim_cim::compare::ComparisonEntry) -> ComparisonRow {
        use ferrocim_cim::compare::EnergyFigure as CimEnergy;
        ComparisonRow {
            work: entry.work.clone(),
            device: entry.device.to_string(),
            process: entry.process.to_string(),
            cell: entry.cell.to_string(),
            dataset: entry.dataset.map(str::to_string),
            network: entry.network.map(str::to_string),
            accuracy: entry.accuracy,
            energy: match entry.energy {
                CimEnergy::PerOperation(j) => EnergyFigure::PerOperation(j.0),
                CimEnergy::PerInference(j) => EnergyFigure::PerInference(j.0),
                CimEnergy::Unreported => EnergyFigure::Unreported,
            },
            tops_per_watt: entry.tops_per_watt,
        }
    }
}

/// Per-stepping-path statistics of `results/probe_adaptive.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathStats {
    /// Accepted waveform samples produced.
    pub samples: usize,
    /// Accepted integration steps.
    pub accepted: usize,
    /// Rejected (re-done) integration steps.
    pub rejected: usize,
    /// Steps that needed the convergence-rescue ladder.
    pub rescued: usize,
    /// Wall-clock time of the run in microseconds.
    pub wall_clock_us: f64,
    /// Final accumulated voltage in millivolts.
    pub v_acc_mv: f64,
}

/// Root of `results/probe_adaptive.json` (single object).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveProbe {
    /// Active cells per accumulated row.
    pub cells_per_row: usize,
    /// Programmed MAC level of the active cells.
    pub mac_level: usize,
    /// Simulated stop time in nanoseconds.
    pub t_stop_ns: f64,
    /// Fixed-path step size in picoseconds.
    pub fixed_dt_ps: f64,
    /// Adaptive-path local-truncation-error tolerance.
    pub lte_tol: f64,
    /// Fixed-step reference path.
    pub fixed: PathStats,
    /// Adaptive-step path under test.
    pub adaptive: PathStats,
    /// Endpoint disagreement between the paths in microvolts.
    pub endpoint_delta_uv: f64,
    /// Fixed-to-adaptive accepted-step ratio.
    pub step_ratio: f64,
    /// Fixed-to-adaptive wall-clock speedup.
    pub speedup: f64,
}

/// One row-width sample of `results/probe_sparse.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseWidthPoint {
    /// Cells per accumulated row at this sweep point.
    pub cells_per_row: usize,
    /// MNA unknowns of the row netlist (non-ground nodes plus
    /// voltage-source branch currents).
    pub unknowns: usize,
    /// Dense-backend DC solve wall clock in microseconds; `None` above
    /// the width where the dense path is still worth timing.
    pub dense_wall_us: Option<f64>,
    /// Sparse-backend DC solve wall clock in microseconds.
    pub sparse_wall_us: f64,
    /// Dense-to-sparse wall-clock ratio (`> 1` = sparse faster), where
    /// both backends ran.
    pub speedup: Option<f64>,
    /// Max-norm node-voltage disagreement between the backends, where
    /// both ran.
    pub max_delta_v: Option<f64>,
}

/// The VGG-scale single-row transient of `results/probe_sparse.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LargeRowMac {
    /// Cells in the simulated row.
    pub cells_per_row: usize,
    /// Accumulated output voltage in millivolts.
    pub v_acc_mv: f64,
    /// Digital ground truth of the MAC.
    pub expected: usize,
    /// End-to-end wall clock of the transient in milliseconds.
    pub wall_ms: f64,
    /// Sparse symbolic analyses run across the whole transient.
    pub symbolic_analyses: u64,
    /// Sparse numeric factorizations run across the whole transient.
    pub numeric_factorizations: u64,
}

/// Root of `results/probe_sparse.json` (single object).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseProbe {
    /// Dense-vs-sparse samples over the row-width sweep.
    pub widths: Vec<SparseWidthPoint>,
    /// The parity bound every `max_delta_v` is checked against.
    pub parity_bound: f64,
    /// Whether every measured `max_delta_v` stayed within the bound.
    pub parity_ok: bool,
    /// The end-to-end wide-row transient demonstration.
    pub large_row: LargeRowMac,
}

/// One expected-vs-observed counter of `results/probe_telemetry.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountCheck {
    /// Counter name.
    pub name: String,
    /// Count implied by the run's reports.
    pub expected: u64,
    /// Count observed by the aggregator.
    pub observed: u64,
}

/// Overhead measurement of `results/probe_telemetry.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Overhead {
    /// Timing repetitions.
    pub reps: usize,
    /// MAC batches per repetition.
    pub batches_per_rep: usize,
    /// Jobs per MAC batch.
    pub jobs_per_batch: usize,
    /// Per-batch time with telemetry off, in microseconds.
    pub off_us_per_batch: f64,
    /// Per-batch time against a no-op recorder, in microseconds.
    pub noop_us_per_batch: f64,
    /// Measured off-path overhead in percent.
    pub overhead_pct: f64,
    /// The bound the probe enforces (2%).
    pub limit_pct: f64,
}

/// Overhead measurement of `results/probe_health.json`: the same DC
/// workload timed with certification off and on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthOverhead {
    /// Cells in the timed readout row.
    pub cells_per_row: usize,
    /// MNA unknowns of the row netlist.
    pub unknowns: usize,
    /// Timing repetitions (best-of).
    pub reps: usize,
    /// DC solve wall clock with `HealthPolicy::off()`, in microseconds.
    pub off_us: f64,
    /// DC solve wall clock with the default policy, in microseconds.
    pub certified_us: f64,
    /// Measured certification overhead in percent.
    pub overhead_pct: f64,
    /// The bound the probe enforces (5%).
    pub limit_pct: f64,
}

/// Certified quality of the healthy solve in
/// `results/probe_health.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CertifiedQuality {
    /// Componentwise-relative backward error of the accepted solution.
    pub residual: f64,
    /// The tolerance it was certified against.
    pub residual_tol: f64,
    /// Iterative-refinement passes the final solve needed.
    pub refinement_passes: u32,
    /// Element growth of the final factorization.
    pub pivot_growth: f64,
}

/// The guardrail demonstration of `results/probe_health.json`: a solve
/// held to an impossible tolerance must walk the full refinement +
/// degradation ladder and then refuse with a typed error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardrailDemo {
    /// The unmeetable backward-error tolerance demanded.
    pub residual_tol: f64,
    /// Whether the solver refused with `UncertifiedSolve` (it must).
    pub refused: bool,
    /// Backward error reported by the refusal.
    pub reported_residual: f64,
    /// Hager condition estimate attached to the refusal, if computed.
    pub cond_estimate: Option<f64>,
    /// `SolveRefined` events observed during the walk.
    pub solves_refined: u64,
    /// `SolveDegraded` events observed during the walk.
    pub solves_degraded: u64,
}

/// Root of `results/probe_health.json` (single object).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthProbe {
    /// Certification overhead on the wide-row DC workload.
    pub overhead: HealthOverhead,
    /// Quality report of the certified wide-row solve.
    pub quality: CertifiedQuality,
    /// The impossible-tolerance refusal demonstration.
    pub guardrail: GuardrailDemo,
}

/// One load scenario of `results/probe_serve.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeScenario {
    /// Scenario label (`overload`, `deadline`, `chaos`, `drain`,
    /// `surrogate`).
    pub name: String,
    /// Requests issued by the probe's client threads.
    pub requests: usize,
    /// `200` responses answered by a live solve.
    pub ok_live: usize,
    /// `200` responses answered by the certified surrogate fast path
    /// (`surrogate: true`, `degraded: false`).
    pub ok_surrogate: usize,
    /// `200` responses answered by the degraded fallback curve.
    pub ok_degraded: usize,
    /// Typed `429 Overloaded` sheds.
    pub shed: usize,
    /// Typed `504 Deadline Exceeded` responses.
    pub deadline_exceeded: usize,
    /// Transport-level failures (connection refused/reset before any
    /// response) — only legal in the drain scenario, after the
    /// listener has closed.
    pub refused: usize,
    /// Responses outside the typed taxonomy (must be zero).
    pub untyped: usize,
    /// Median client-observed latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile client-observed latency, milliseconds.
    pub p99_ms: f64,
}

/// The `serve_*` counters the probe's aggregator accumulated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeCounters {
    /// Requests admitted past the bounded queue.
    pub admitted: u64,
    /// Requests shed (queue full or tenant quota).
    pub shed: u64,
    /// Backoff retries spent from the retry budget.
    pub retries: u64,
    /// Responses answered by the degraded fallback.
    pub degraded: u64,
    /// Circuit-breaker trip events.
    pub breaker_open: u64,
    /// Surrogate-store lookups that found a calibrated curve.
    pub surrogate_hits: u64,
    /// Surrogate-store lookups that calibrated a new curve.
    pub surrogate_misses: u64,
    /// Surrogate answers re-solved live by check mode.
    pub surrogate_checks: u64,
    /// Check-mode deviations beyond the certified envelope (must be 0).
    pub surrogate_check_failures: u64,
}

/// The gate bounds checked into `baselines/probe_serve.json`. Unlike
/// the trace-diff baselines, these are hand-set *limits*, not recorded
/// counter values: shed counts and retry counts are load-dependent, so
/// the gate pins the robustness contract (typed responses, bounded
/// tail latency, bounded shed rate) rather than exact numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeGateBounds {
    /// Maximum tolerated shed fraction in the overload scenario.
    pub max_shed_rate: f64,
    /// Maximum tolerated client-observed p99 in the overload scenario,
    /// milliseconds.
    pub max_p99_ms: f64,
    /// Minimum `200` responses the overload scenario must complete.
    pub min_ok: u64,
    /// Minimum fraction of the surrogate scenario's requests that must
    /// be answered by the surrogate fast path (`surrogate: true`).
    pub min_surrogate_rate: f64,
}

/// Root of `results/probe_serve.json` (single object).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeProbe {
    /// Per-scenario response censuses.
    pub scenarios: Vec<ServeScenario>,
    /// Aggregated `serve_*` counters across all scenarios.
    pub counters: ServeCounters,
    /// The gate bounds this run was checked against.
    pub gate: ServeGateBounds,
    /// Whether every gate bound held.
    pub gate_passed: bool,
}

/// Overhead of always-on flight recording in
/// `results/probe_observe.json`: the same DC workload timed against a
/// no-op recorder and a flight-recorder ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserveOverhead {
    /// Cells in the timed readout row.
    pub cells_per_row: usize,
    /// MNA unknowns of the row netlist.
    pub unknowns: usize,
    /// Paired timing repetitions (each rep times one multi-solve
    /// block per recorder).
    pub reps: usize,
    /// Best per-solve wall clock recording into
    /// `ferrocim_telemetry::NoopRecorder`, in microseconds.
    pub noop_us: f64,
    /// Best per-solve wall clock recording into a flight-recorder
    /// ring, in microseconds.
    pub flight_us: f64,
    /// Events sitting in the ring after the timed reps (must be
    /// nonzero, or the timing never exercised the recorder).
    pub flight_events: usize,
    /// Flight-recording overhead in percent: the median over the
    /// paired reps of each rep's (flight - noop) / noop ratio, which
    /// discards load-burst outliers a best-of comparison would gate
    /// on.
    pub overhead_pct: f64,
    /// The bound the probe enforces (2%).
    pub limit_pct: f64,
}

/// The incident-dump demonstration of `results/probe_observe.json`: a
/// chaos-driven breaker trip must leave a parseable flight dump behind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserveDump {
    /// MAC requests driven at the chaos server.
    pub requests: usize,
    /// Breaker trips the live aggregator counted.
    pub breaker_opens: u64,
    /// Automatic dumps the flight recorder wrote.
    pub dumps_written: u64,
    /// Path of the dump the probe parsed back.
    pub dump_path: String,
    /// Events recovered from the dump.
    pub dump_events: usize,
    /// `ServeBreakerOpen` events the replayed `trace summary` counted
    /// inside the dump (must cover the trip that triggered it).
    pub dump_serve_breaker_open: u64,
    /// Tenants in the dump's per-tenant rollup.
    pub dump_tenants: usize,
}

/// The label-cardinality demonstration of
/// `results/probe_observe.json`: more tenants than the cap must
/// collapse into `other`, never unbounded `/metrics` series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserveCardinality {
    /// The tenant cap the aggregator was configured with.
    pub tenant_cap: usize,
    /// Distinct tenants the probe drove through the server.
    pub tenants_driven: usize,
    /// Distinct tenant labels in the `ferrocim_serve_requests_total`
    /// family (at most `tenant_cap + 1`, counting `other`).
    pub distinct_request_series: usize,
    /// Whether the `other` overflow label appeared.
    pub other_present: bool,
    /// Whether per-tenant `_bucket` latency series were exposed.
    pub bucket_series_present: bool,
    /// Whether per-tenant `_sum` latency series were exposed.
    pub sum_series_present: bool,
    /// Whether per-tenant `_count` latency series were exposed.
    pub count_series_present: bool,
}

/// The gate bounds checked into `baselines/probe_observe.json`.
/// Hand-set limits like the serve gate: wall-clock overhead is
/// machine-dependent, so the gate pins the observability contract
/// (cheap recording, a parseable incident dump, bounded cardinality)
/// rather than exact numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserveGateBounds {
    /// Maximum tolerated flight-recording overhead in percent.
    pub max_overhead_pct: f64,
    /// Minimum `ServeBreakerOpen` events the parsed dump must contain.
    pub min_dump_breaker_opens: u64,
    /// Maximum distinct tenant labels tolerated in `/metrics`.
    pub max_distinct_tenants: usize,
}

/// Root of `results/probe_observe.json` (single object).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserveProbe {
    /// Flight-recording overhead on the wide-row DC workload.
    pub overhead: ObserveOverhead,
    /// The chaos-driven incident-dump demonstration.
    pub dump: ObserveDump,
    /// The tenant-cardinality demonstration.
    pub cardinality: ObserveCardinality,
    /// The gate bounds this run was checked against.
    pub gate: ObserveGateBounds,
    /// Whether every gate bound held.
    pub gate_passed: bool,
}

/// Calibration cost and certified envelope of
/// `results/probe_surrogate.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateCalibration {
    /// Calibrated curves in the store after the workload.
    pub curves: usize,
    /// Live solves spent calibrating the timed curve.
    pub solves: u64,
    /// Wall clock of the timed curve's calibration, milliseconds.
    pub wall_ms: f64,
    /// Certified per-query worst-case error bound, volts.
    pub envelope_max_v: f64,
    /// RMS deviation observed while probing the envelope, volts.
    pub envelope_rms_v: f64,
    /// Probe evaluations behind the envelope.
    pub envelope_probes: usize,
}

/// Cache-hit-vs-live timing comparison of
/// `results/probe_surrogate.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateSpeedup {
    /// Queries timed through each path.
    pub queries: usize,
    /// Mean live analytic solve time per query, microseconds.
    pub live_us_per_query: f64,
    /// Mean surrogate evaluation time per query, microseconds.
    pub surrogate_us_per_query: f64,
    /// Live-to-surrogate wall-clock ratio.
    pub speedup: f64,
    /// Worst `|v_surrogate − v_live|` across the timed queries, volts.
    pub max_abs_deviation_v: f64,
    /// Queries whose surrogate and live readouts disagreed.
    pub readout_mismatches: usize,
}

/// Check-mode audit of `results/probe_surrogate.json`: a seeded
/// subsample of surrogate answers re-solved through the live solver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateCheckAudit {
    /// The configured sampling period (one in `every`).
    pub every: u64,
    /// Queries evaluated under check mode.
    pub queries: usize,
    /// Queries the policy selected for a live re-solve.
    pub checks: u64,
    /// Deviations beyond the certified envelope (must be 0).
    pub check_failures: u64,
}

/// Domain-refusal demonstration of `results/probe_surrogate.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateDomainDemo {
    /// Lower edge of the calibrated temperature domain, Celsius.
    pub lo_c: f64,
    /// Upper edge of the calibrated temperature domain, Celsius.
    pub hi_c: f64,
    /// The out-of-domain temperature the probe queried, Celsius.
    pub rejected_temp_c: f64,
    /// Whether the query was refused with the typed `OutOfDomain`
    /// error (it must be — the surrogate never extrapolates).
    pub rejected_typed: bool,
}

/// The gate bounds checked into `baselines/probe_surrogate.json`.
/// Hand-set limits like the serve gate: wall-clock ratios are
/// machine-dependent, so the gate pins the contract (a real speedup, a
/// sane envelope, zero check failures) rather than exact numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateGateBounds {
    /// Minimum tolerated live-to-surrogate speedup.
    pub min_speedup: f64,
    /// Maximum tolerated certified envelope, volts.
    pub max_envelope_v: f64,
    /// Maximum tolerated check-mode failures (0: the envelope is a
    /// promise, not a statistic).
    pub max_check_failures: u64,
}

/// Root of `results/probe_surrogate.json` (single object).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateProbe {
    /// Cells per row of the probed array.
    pub cells_per_row: usize,
    /// The calibration temperature grid, Celsius.
    pub grid_c: Vec<f64>,
    /// Calibration cost and the certified envelope.
    pub calibration: SurrogateCalibration,
    /// Cache-hit timing versus live analytic solves.
    pub speedup: SurrogateSpeedup,
    /// The seeded check-mode audit.
    pub check: SurrogateCheckAudit,
    /// The out-of-domain refusal demonstration.
    pub domain: SurrogateDomainDemo,
    /// The gate bounds this run was checked against.
    pub gate: SurrogateGateBounds,
    /// Whether every gate bound held.
    pub gate_passed: bool,
}

/// Root of `results/probe_telemetry.json` (single object).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryProbe {
    /// Report-vs-aggregator consistency checks.
    pub checks: Vec<CountCheck>,
    /// Whether every check matched.
    pub consistent: bool,
    /// Overhead measurement (absent under `--skip-overhead`).
    pub overhead: Option<Overhead>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_row_mirrors_the_cim_entry_serialization() {
        use ferrocim_cim::compare::{ComparisonEntry, EnergyFigure as CimEnergy};
        use ferrocim_units::Joule;
        let entry = ComparisonEntry {
            work: "This work".to_string(),
            device: "FeFET",
            process: "28nm",
            cell: "2T-1FeFET",
            dataset: Some("CIFAR-10"),
            network: None,
            accuracy: Some(0.9),
            energy: CimEnergy::PerOperation(Joule(3.14e-15)),
            tops_per_watt: Some(5100.0),
        };
        let mirrored = ComparisonRow::from(&entry);
        assert_eq!(
            serde_json::to_string(&entry).expect("entry"),
            serde_json::to_string(&mirrored).expect("mirror"),
            "the schema mirror must serialize byte-identically"
        );
        let text = serde_json::to_string(&mirrored).expect("serialize");
        let back: ComparisonRow = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, mirrored);
    }

    #[test]
    fn tuple_heavy_schemas_round_trip() {
        let summary = ProposedArraySummary {
            nmr_min_full: (0, 0.21),
            nmr_min_warm: (1, 0.29),
            has_overlap: false,
            ranges_mv: vec![(0, 0.04, 5.6), (1, 6.8, 12.0)],
            energy_per_mac_fj: vec![3.1, 3.2],
            average_energy_fj: 3.15,
            tops_per_watt: 5100.0,
            latency_ns: 2.0,
        };
        let text = serde_json::to_string(&summary).expect("serialize");
        let back: ProposedArraySummary = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, summary);
    }
}
