//! Tier-1 guard: every checked-in `results/*.json` artifact must
//! deserialize through the shared schema types in
//! `ferrocim_bench::schema`. A bin that drifts its output shape (or a
//! hand-edited artifact) fails here until the two agree again.

use ferrocim_bench::schema::{
    AblationFeedbackRow, AdaptiveProbe, BaselineOverlap, ComparisonRow, HealthProbe, IvCurve,
    LevelRange, ObserveProbe, ProcessVariationPoint, ProposedArraySummary, ProposedCellRow,
    RegionResult, ServeProbe, SparseProbe, SurrogateProbe, TelemetryProbe, VggLayerRow,
    WriteVerifyRow,
};
use std::path::{Path, PathBuf};

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Returns a validator for the artifact name, or `None` for names the
/// schema does not know — which the test treats as a failure, so new
/// artifacts must land together with their schema type.
fn validate(name: &str, text: &str) -> Option<Result<(), serde_json::Error>> {
    fn check<T: serde::Deserialize>(text: &str) -> Result<(), serde_json::Error> {
        serde_json::from_str::<T>(text).map(|_| ())
    }
    Some(match name {
        "ablation_feedback" => check::<Vec<AblationFeedbackRow>>(text),
        "ablation_multilevel" => check::<Vec<Vec<LevelRange>>>(text),
        "ablation_write_verify" => check::<Vec<WriteVerifyRow>>(text),
        "fig1_fefet_iv" => check::<Vec<IvCurve>>(text),
        "fig3_cell_fluctuation" => check::<Vec<RegionResult>>(text),
        "fig4_baseline_overlap" => check::<BaselineOverlap>(text),
        "fig7_proposed_cell" => check::<Vec<ProposedCellRow>>(text),
        "fig8_proposed_array" => check::<ProposedArraySummary>(text),
        "fig9_process_variation" => check::<Vec<ProcessVariationPoint>>(text),
        "probe_adaptive" => check::<AdaptiveProbe>(text),
        "probe_health" => check::<HealthProbe>(text),
        "probe_observe" => check::<ObserveProbe>(text),
        "probe_serve" => check::<ServeProbe>(text),
        "probe_sparse" => check::<SparseProbe>(text),
        "probe_surrogate" => check::<SurrogateProbe>(text),
        "probe_telemetry" => check::<TelemetryProbe>(text),
        "table1_vgg_structure" => check::<Vec<VggLayerRow>>(text),
        "table2_summary" => check::<Vec<ComparisonRow>>(text),
        _ => return None,
    })
}

#[test]
fn every_results_artifact_matches_its_schema() {
    let dir = results_dir();
    let entries = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("results dir {} must exist: {e}", dir.display()));
    let mut validated = 0usize;
    let mut failures = Vec::new();
    for entry in entries {
        let path = entry.expect("read_dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf8 artifact name")
            .to_string();
        let text = std::fs::read_to_string(&path).expect("readable artifact");
        match validate(&name, &text) {
            None => failures.push(format!(
                "{name}: no schema type — add one to crates/bench/src/schema.rs \
                 and map it in this test"
            )),
            Some(Err(e)) => failures.push(format!("{name}: does not match its schema: {e}")),
            Some(Ok(())) => validated += 1,
        }
    }
    assert!(
        failures.is_empty(),
        "schema violations:\n  {}",
        failures.join("\n  ")
    );
    assert!(
        validated >= 15,
        "expected at least the 15 known artifacts, validated {validated}"
    );
}
