//! Criterion bench for E9 (Fig. 9): Monte-Carlo throughput of the
//! variation study — per-sample cost and the seeded-fanout overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use ferrocim_cim::cells::{CellOffsets, TwoTransistorOneFefet};
use ferrocim_cim::{mac_operands, ArrayConfig, CimArray, MacPath, MacRequest};
use ferrocim_device::variation::{GaussianSampler, VariationModel};
use ferrocim_spice::MonteCarlo;
use ferrocim_units::{Celsius, Volt};
use std::hint::black_box;

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_monte_carlo");
    group.sample_size(10);
    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )
    .expect("valid config");
    let variation = VariationModel::paper_default();
    let (w, x) = mac_operands(8, 4);
    group.bench_function("one_variation_sample", |b| {
        let mc = MonteCarlo::new(1, 9);
        let mut rng = mc.rng_for(0);
        let mut sampler = GaussianSampler::new();
        b.iter(|| {
            let offsets: Vec<CellOffsets> = (0..8)
                .map(|_| CellOffsets {
                    fefet: variation.sample_fefet_offset(&mut rng, &mut sampler),
                    m1: variation.sample_mosfet_offset(&mut rng, &mut sampler),
                    m2: variation.sample_mosfet_offset(&mut rng, &mut sampler),
                })
                .collect();
            array
                .run(
                    &MacRequest::new(&x)
                        .weights(&w)
                        .at(Celsius(27.0))
                        .offsets(&offsets)
                        .path(MacPath::Analytic),
                )
                .expect("mac")
        })
    });
    group.bench_function("mc_fanout_16_runs", |b| {
        b.iter(|| {
            let mc = MonteCarlo::new(16, 9);
            let out: Vec<f64> = mc.run(|_, rng| {
                let mut sampler = GaussianSampler::new();
                let offsets: Vec<CellOffsets> = (0..8)
                    .map(|_| CellOffsets {
                        fefet: variation.sample_fefet_offset(rng, &mut sampler),
                        m1: Volt::ZERO,
                        m2: Volt::ZERO,
                    })
                    .collect();
                array
                    .run(
                        &MacRequest::new(&x)
                            .weights(&w)
                            .at(Celsius(27.0))
                            .offsets(&offsets)
                            .path(MacPath::Analytic),
                    )
                    .expect("mac")
                    .v_acc
                    .value()
            });
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_monte_carlo);
criterion_main!(benches);
