//! Criterion bench for E1 (Fig. 1): FeFET I-V evaluation throughput —
//! the primitive every experiment is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use ferrocim_device::{Fefet, FefetParams, MosfetModel, MosfetParams, PolarizationState};
use ferrocim_units::{Celsius, Volt};
use std::hint::black_box;

fn bench_fefet_iv(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_fefet_iv");
    let mut fefet = Fefet::new(FefetParams::paper_default());
    fefet.force_state(PolarizationState::LowVt);
    group.bench_function("single_point", |b| {
        b.iter(|| {
            fefet.ids(
                black_box(Volt(0.35)),
                black_box(Volt(0.15)),
                black_box(Celsius(27.0)),
            )
        })
    });
    group.bench_function("full_iv_curve_45pts_3temps_2states", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for state in [PolarizationState::LowVt, PolarizationState::HighVt] {
                fefet.force_state(state);
                for t in [0.0, 27.0, 85.0] {
                    for i in 0..45 {
                        let vg = Volt(i as f64 * 2.2 / 44.0);
                        total += fefet.ids(vg, Volt(0.15), Celsius(t)).value();
                    }
                }
            }
            black_box(total)
        })
    });
    let mosfet = MosfetModel::new(MosfetParams::nmos_14nm());
    group.bench_function("mosfet_small_signal", |b| {
        b.iter(|| {
            mosfet.evaluate(
                black_box(Volt(0.35)),
                black_box(Volt(0.6)),
                black_box(Celsius(27.0)),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fefet_iv);
criterion_main!(benches);
