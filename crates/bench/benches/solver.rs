//! Criterion bench for the circuit-simulation substrate itself: DC
//! solves, transient steps, and the transient-vs-analytic ablation
//! (DESIGN.md §6.3), plus the backward-Euler vs trapezoidal comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use ferrocim_spice::{Circuit, DcAnalysis, Element, Integrator, NodeId, TransientAnalysis};
use ferrocim_units::{Celsius, Farad, Ohm, Second, Volt};
use std::hint::black_box;

/// An RC ladder with `n` stages — a representative linear workload.
fn ladder(n: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.add(Element::vdc("V1", prev, NodeId::GROUND, Volt(1.0)))
        .expect("add");
    for i in 0..n {
        let node = ckt.node(&format!("n{i}"));
        ckt.add(Element::resistor(format!("R{i}"), prev, node, Ohm(1e3)))
            .expect("add");
        ckt.add(Element::capacitor(
            format!("C{i}"),
            node,
            NodeId::GROUND,
            Farad(1e-12),
        ))
        .expect("add");
        prev = node;
    }
    ckt
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("spice_solver");
    let small = ladder(8);
    let large = ladder(32);
    group.bench_function("dc_ladder_8", |b| {
        b.iter(|| {
            DcAnalysis::new(&small)
                .at(black_box(Celsius(27.0)))
                .solve()
                .expect("dc")
        })
    });
    group.bench_function("dc_ladder_32", |b| {
        b.iter(|| {
            DcAnalysis::new(&large)
                .at(black_box(Celsius(27.0)))
                .solve()
                .expect("dc")
        })
    });
    group.sample_size(20);
    group.bench_function("transient_be_1000_steps", |b| {
        b.iter(|| {
            TransientAnalysis::over(&small, Second(1e-8))
                .with_fixed_step(Second(1e-11))
                .run()
                .expect("transient")
        })
    });
    group.bench_function("transient_trap_1000_steps", |b| {
        b.iter(|| {
            TransientAnalysis::over(&small, Second(1e-8))
                .with_fixed_step(Second(1e-11))
                .with_integrator(Integrator::Trapezoidal)
                .run()
                .expect("transient")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
