//! Criterion bench for E4/E6/E7 (Figs. 4 and 8): full-row MAC
//! transients and the analytic fast path, plus the `C_acc`-sizing
//! ablation (DESIGN.md §6.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ferrocim_cim::cells::{CellOffsets, TwoTransistorOneFefet};
use ferrocim_cim::{mac_operands, ArrayConfig, CimArray, MacPath, MacRequest};
use ferrocim_units::{Celsius, Farad};
use std::hint::black_box;

fn bench_array_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_array_mac");
    group.sample_size(10);
    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )
    .expect("valid config");
    let (w, x) = mac_operands(8, 5);
    let offsets = vec![CellOffsets::NOMINAL; 8];
    group.bench_function("full_transient_mac8", |b| {
        b.iter(|| {
            array
                .run(
                    &MacRequest::new(&x)
                        .weights(&w)
                        .at(black_box(Celsius(27.0)))
                        .offsets(&offsets),
                )
                .expect("transient")
        })
    });
    group.bench_function("analytic_mac8", |b| {
        b.iter(|| {
            array
                .run(
                    &MacRequest::new(&x)
                        .weights(&w)
                        .at(black_box(Celsius(27.0)))
                        .offsets(&offsets)
                        .path(MacPath::Analytic),
                )
                .expect("analytic")
        })
    });
    group.bench_function("level_table", |b| {
        b.iter(|| {
            array
                .level_voltages(black_box(Celsius(27.0)))
                .expect("levels")
        })
    });
    // Ablation: C_acc sizing trade (bigger C_acc → smaller signal,
    // same solve cost; the interesting output is the NMR, measured in
    // the ablation experiment, but the solve cost is tracked here).
    for c_acc_ff in [4.0, 8.0, 16.0] {
        let config = ArrayConfig {
            c_acc: Farad(c_acc_ff * 1e-15),
            ..ArrayConfig::paper_default()
        };
        let array =
            CimArray::new(TwoTransistorOneFefet::paper_default(), config).expect("valid config");
        group.bench_with_input(
            BenchmarkId::new("transient_vs_cacc_ff", c_acc_ff as u64),
            &array,
            |b, array| {
                b.iter(|| {
                    array
                        .run(
                            &MacRequest::new(&x)
                                .weights(&w)
                                .at(Celsius(27.0))
                                .offsets(&offsets),
                        )
                        .expect("transient")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_array_mac);
criterion_main!(benches);
