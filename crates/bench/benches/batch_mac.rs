//! Criterion bench for the batched MAC engine: `ArrayEngine::mac_batch`
//! throughput against the per-call `CimArray::run` loop it replaces.
//!
//! The workload models a bit-serial NN step: a burst of row MACs whose
//! input vectors repeat heavily (bit-planes of nearby activations are
//! mostly identical). The batch path builds the row netlist once,
//! reuses one solver workspace per worker thread, and collapses
//! duplicate `(inputs, temperature)` jobs onto a single transient —
//! the per-call loop pays netlist construction, workspace allocation,
//! and the full solve for every job.

use criterion::{criterion_group, criterion_main, Criterion};
use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::{ArrayConfig, ArrayEngine, CimArray};
use ferrocim_units::Celsius;
use std::hint::black_box;

/// 16 jobs over 2 distinct input patterns on the paper's 8-cell row.
fn burst_inputs() -> Vec<Vec<bool>> {
    let a: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
    let b: Vec<bool> = (0..8).map(|i| i < 5).collect();
    (0..16)
        .map(|j| if j % 2 == 0 { a.clone() } else { b.clone() })
        .collect()
}

fn bench_batch_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_mac");
    group.sample_size(10);
    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )
    .expect("valid config");
    let weights = [true, true, false, true, true, false, true, true];
    let engine = ArrayEngine::new(&array, &weights).expect("valid weights");
    let inputs = burst_inputs();
    group.bench_function("per_call_loop_16", |b| {
        b.iter(|| {
            engine
                .mac_serial(black_box(&inputs), Celsius(27.0))
                .expect("serial")
        })
    });
    group.bench_function("mac_batch_16", |b| {
        b.iter(|| {
            engine
                .mac_batch(black_box(&inputs), Celsius(27.0))
                .expect("batch")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_batch_mac);
criterion_main!(benches);
