//! Criterion bench for E2/E3/E5 (Figs. 3 and 7): single-cell DC read
//! solves for the baseline and proposed cells — the kernel of the
//! temperature-fluctuation sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use ferrocim_cim::cells::{
    current_fluctuation, CellDesign, CellOffsets, OneFefetOneR, TwoTransistorOneFefet,
};
use ferrocim_spice::sweep::temperature_sweep;
use ferrocim_units::Celsius;
use std::hint::black_box;

fn bench_cell_currents(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fig7_cell_currents");
    group.sample_size(30);
    let baseline_sat = OneFefetOneR::saturation();
    let baseline_sub = OneFefetOneR::subthreshold();
    let proposed = TwoTransistorOneFefet::paper_default();
    group.bench_function("1fefet1r_read_dc", |b| {
        b.iter(|| {
            baseline_sub
                .read_current(true, true, black_box(Celsius(27.0)), &CellOffsets::NOMINAL)
                .expect("dc solve")
        })
    });
    group.bench_function("2t1fefet_read_dc", |b| {
        b.iter(|| {
            proposed
                .read_current(true, true, black_box(Celsius(27.0)), &CellOffsets::NOMINAL)
                .expect("dc solve")
        })
    });
    group.bench_function("fig3a_full_sweep_saturation", |b| {
        let temps = temperature_sweep(18);
        b.iter(|| current_fluctuation(&baseline_sat, &temps, Celsius(27.0)).expect("sweep"))
    });
    group.bench_function("fig7_full_sweep_proposed", |b| {
        let temps = temperature_sweep(18);
        b.iter(|| current_fluctuation(&proposed, &temps, Celsius(27.0)).expect("sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench_cell_currents);
criterion_main!(benches);
