//! Criterion bench for E10–E12 (Tables I/II): VGG-nano inference —
//! float, quantized-ideal-CIM, and the per-layer costs of the
//! bit-serial mapping.

use criterion::{criterion_group, criterion_main, Criterion};
use ferrocim_nn::cim_exec::{cim_dot, CimMapping, CimNetwork, IdealMac};
use ferrocim_nn::data::Generator;
use ferrocim_nn::quant::{quantize_activations, quantize_weights};
use ferrocim_nn::vgg::vgg_nano;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_nn_inference");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(0);
    let net = vgg_nano(&mut rng);
    let ds = Generator::new(5).generate(4);
    group.bench_function("float_forward", |b| {
        b.iter(|| black_box(net.forward(&ds.images[0])))
    });
    let cim = CimNetwork::map(&net, CimMapping::default());
    group.bench_function("cim_ideal_forward", |b| {
        b.iter(|| black_box(cim.forward(&ds.images[0], &IdealMac(8), 3)))
    });
    group.bench_function("cim_dot_64_elements", |b| {
        let w: Vec<f32> = (0..64)
            .map(|i| ((i * 37) % 13) as f32 / 13.0 - 0.5)
            .collect();
        let a: Vec<f32> = (0..64).map(|i| ((i * 17) % 7) as f32 / 7.0).collect();
        let qw = quantize_weights(&w, 4);
        let qa = quantize_activations(&a, 4);
        let mapping = CimMapping::default();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| cim_dot(&qw, &qa.values, &mapping, &IdealMac(8), &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
