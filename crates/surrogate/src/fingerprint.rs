//! Content-addressed keys for calibrated curves.
//!
//! A surrogate answer is only as trustworthy as its key: if two
//! physically different arrays collide, a curve calibrated on one
//! silently answers for the other. The fingerprint therefore covers
//! everything the analytic MAC depends on — the netlist topology (cell
//! design, device parameters, injected faults, bias network), the array
//! geometry and timing, the calibration temperature grid, and the
//! per-column programmed state — while being *insensitive to
//! enumeration order*: callers that list the same cell states or fault
//! entries in a different order get bitwise-identical keys, because the
//! canonical form sorts by column before hashing.
//!
//! The hash is FNV-1a over a canonical byte stream (the same scheme as
//! [`ferrocim_spice::Circuit::content_hash`], which supplies the
//! topology component). FNV is not cryptographic; the store is a cache
//! keyed by trusted in-process state, not an integrity boundary.

use ferrocim_cim::{ArrayConfig, CellFault};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Minimal FNV-1a accumulator over canonical byte encodings.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        // Bit-exact: two grids differing in the last ulp are different
        // calibration domains and must not share a curve.
        self.u64(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The programmed state of one column: its position, stored weight bit,
/// and injected hardware fault (if any).
///
/// The *position* is part of the state on purpose: per-cell deltas are
/// tied to columns, so a fault moving from column 0 to column 1 is a
/// different array even when the fault multiset is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellState {
    /// Column index within the row.
    pub col: usize,
    /// The programmed weight bit.
    pub weight: bool,
    /// The injected fault, if any.
    pub fault: Option<CellFault>,
}

/// A stable small-integer tag per fault variant (0 = no fault).
fn fault_tag(fault: Option<CellFault>) -> u64 {
    match fault {
        None => 0,
        Some(CellFault::StuckAtLvt) => 1,
        Some(CellFault::StuckAtHvt) => 2,
        Some(CellFault::DeadWordline) => 3,
        Some(CellFault::OpenDevice) => 4,
        Some(CellFault::ShortDevice) => 5,
    }
}

/// Computes the content-addressed key for one calibrated curve.
///
/// Inputs:
/// - `topology`: [`ferrocim_spice::Circuit::content_hash`] of the row's
///   readout netlist built with canonical operands — covers cell design,
///   device parameters, bias network, and fault-induced rewrites.
/// - `config`: array geometry and timing (all fields, bit-exact).
/// - `temps_c`: the calibration temperature grid in °C, in grid order
///   (the grid is ordered by construction; its order is meaningful
///   because it defines the interpolation intervals).
/// - `cells`: per-column programmed state in **any** order; the
///   canonical form sorts by column index, so enumeration order never
///   changes the key.
pub fn fingerprint(
    topology: u64,
    config: &ArrayConfig,
    temps_c: &[f64],
    cells: &[CellState],
) -> u64 {
    let mut h = Fnv::new();
    h.u64(topology);
    h.usize(config.cells_per_row);
    h.f64(config.c_o.value());
    h.f64(config.c_acc.value());
    h.f64(config.t_charge.value());
    h.f64(config.t_settle.value());
    h.f64(config.t_share.value());
    h.f64(config.dt.value());
    h.usize(temps_c.len());
    for &t in temps_c {
        h.f64(t);
    }
    let mut canonical: Vec<CellState> = cells.to_vec();
    canonical.sort_by_key(|c| (c.col, c.weight, fault_tag(c.fault)));
    h.usize(canonical.len());
    for cell in &canonical {
        h.usize(cell.col);
        h.u64(u64::from(cell.weight));
        h.u64(fault_tag(cell.fault));
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrocim_units::{Farad, Second};

    fn config() -> ArrayConfig {
        ArrayConfig::paper_default()
    }

    fn cells() -> Vec<CellState> {
        vec![
            CellState {
                col: 0,
                weight: true,
                fault: None,
            },
            CellState {
                col: 1,
                weight: false,
                fault: Some(CellFault::StuckAtHvt),
            },
            CellState {
                col: 2,
                weight: true,
                fault: Some(CellFault::ShortDevice),
            },
            CellState {
                col: 3,
                weight: false,
                fault: None,
            },
        ]
    }

    /// Golden value: the fingerprint is part of the store's on-disk /
    /// cross-process identity, so accidental drift (a reordered field, a
    /// changed tag) must fail loudly. Regenerating this constant is an
    /// intentional cache-invalidation event.
    #[test]
    fn fingerprint_matches_golden_value() {
        let key = fingerprint(
            0x1234_5678_9abc_def0,
            &config(),
            &[0.0, 27.0, 85.0],
            &cells(),
        );
        assert_eq!(key, 0x4d2f_b481_f757_dd23, "got {key:#018x}");
    }

    /// Enumeration order of the cell states must not change the key.
    #[test]
    fn fingerprint_is_insensitive_to_cell_ordering() {
        let reference = fingerprint(7, &config(), &[0.0, 85.0], &cells());
        let mut scrambled = cells();
        scrambled.reverse();
        assert_eq!(
            reference,
            fingerprint(7, &config(), &[0.0, 85.0], &scrambled)
        );
        scrambled.swap(0, 2);
        assert_eq!(
            reference,
            fingerprint(7, &config(), &[0.0, 85.0], &scrambled)
        );
    }

    /// Every keyed component must be visible in the hash.
    #[test]
    fn fingerprint_sees_every_component() {
        let reference = fingerprint(7, &config(), &[0.0, 85.0], &cells());
        // Topology.
        assert_ne!(reference, fingerprint(8, &config(), &[0.0, 85.0], &cells()));
        // Geometry (one attofarad on the output cap).
        let nudged = ArrayConfig {
            c_o: Farad(config().c_o.value() + 1e-18),
            ..config()
        };
        assert_ne!(reference, fingerprint(7, &nudged, &[0.0, 85.0], &cells()));
        // Timing.
        let slower = ArrayConfig {
            dt: Second(config().dt.value() * 2.0),
            ..config()
        };
        assert_ne!(reference, fingerprint(7, &slower, &[0.0, 85.0], &cells()));
        // Temperature grid (value and length).
        assert_ne!(reference, fingerprint(7, &config(), &[0.0, 84.0], &cells()));
        assert_ne!(
            reference,
            fingerprint(7, &config(), &[0.0, 27.0, 85.0], &cells())
        );
        // Weight flip.
        let mut flipped = cells();
        flipped[0].weight = false;
        assert_ne!(reference, fingerprint(7, &config(), &[0.0, 85.0], &flipped));
        // Fault kind and fault position.
        let mut refaulted = cells();
        refaulted[1].fault = Some(CellFault::OpenDevice);
        assert_ne!(
            reference,
            fingerprint(7, &config(), &[0.0, 85.0], &refaulted)
        );
        let mut moved = cells();
        moved[1].fault = None;
        moved[3].fault = Some(CellFault::StuckAtHvt);
        assert_ne!(reference, fingerprint(7, &config(), &[0.0, 85.0], &moved));
    }

    /// The fingerprint of the same inputs is bitwise-stable across
    /// repeated computation (no hidden iteration-order dependence).
    #[test]
    fn fingerprint_is_deterministic() {
        let a = fingerprint(42, &config(), &[0.0, 27.0, 85.0], &cells());
        for _ in 0..10 {
            assert_eq!(a, fingerprint(42, &config(), &[0.0, 27.0, 85.0], &cells()));
        }
    }
}
