//! The content-addressed store and its populate-on-miss front end.
//!
//! [`SurrogateStore`] is a concurrent `key → Arc<CalibratedCurve>` map;
//! [`MacSurrogate`] owns an array plus a store and exposes the
//! evaluate-with-fallback-to-calibration workflow: a query whose key is
//! present answers from the curve (a few hundred nanoseconds of linear
//! algebra), a miss runs the `n + 1`-solves-per-grid-temperature
//! calibration and the envelope probes, inserts the curve, and answers.
//! Every lookup and check-mode outcome is emitted through the shared
//! telemetry pipeline.

use crate::curve::{CalibratedCurve, CheckOutcome, CurveData, ErrorEnvelope, SurrogateAnswer};
use crate::fingerprint::{fingerprint, CellState};
use crate::SurrogateError;
use ferrocim_cim::cells::CellDesign;
use ferrocim_cim::{CimArray, MacOutput, MacPath, MacRequest};
use ferrocim_telemetry::{Event, Telemetry};
use ferrocim_units::Celsius;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

/// Safety factor applied to the observed maximum deviation when
/// certifying the envelope.
const ENVELOPE_SAFETY: f64 = 2.0;
/// Absolute floor (volts) so an exactly-zero observed deviation (single
/// grid temperature, linear-exact fit) still certifies a positive,
/// checkable bound.
const ENVELOPE_FLOOR_V: f64 = 1e-9;
/// Random input patterns probed per midpoint temperature, on top of the
/// `n + 1` ramp patterns.
const RANDOM_PROBES: usize = 4;

/// Deterministic sampling policy for check mode: roughly one in `every`
/// hit-path queries is re-solved live and compared to the envelope.
///
/// The decision is a pure function of `(seed, query index)`, so a run
/// with a fixed seed checks the same queries every time — reproducible
/// audits rather than a coin flip per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckPolicy {
    /// Sampling period: 1 checks every query, `n` roughly one in `n`.
    pub every: u64,
    /// Seed decorrelating the subsample from the query stream.
    pub seed: u64,
}

impl CheckPolicy {
    /// A policy checking roughly one in `every` queries (clamped to at
    /// least 1) with the default seed.
    pub fn every(every: u64) -> Self {
        CheckPolicy {
            every: every.max(1),
            seed: 0xfefe7,
        }
    }

    /// Overrides the subsample seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether query number `n` is selected for a live check.
    fn selects(&self, n: u64) -> bool {
        // SplitMix64-style finalizer: cheap, well-mixed, deterministic.
        let mut z = self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)).is_multiple_of(self.every)
    }
}

/// A snapshot of the surrogate's lookup/check counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SurrogateCounts {
    /// Lookups answered from an existing calibrated curve.
    pub hits: u64,
    /// Lookups that triggered a live calibration.
    pub misses: u64,
    /// Check-mode live re-solves performed.
    pub checks: u64,
    /// Check-mode deviations exceeding the certified envelope.
    pub check_failures: u64,
}

/// A concurrent content-addressed map of calibrated curves.
///
/// Reads take a shared lock; calibration happens *outside* any lock and
/// inserts afterwards, first writer wins — so concurrent misses on the
/// same key cost duplicate calibrations, never a deadlock or a torn
/// curve.
#[derive(Debug, Default)]
pub struct SurrogateStore {
    curves: RwLock<HashMap<u64, Arc<CalibratedCurve>>>,
}

impl SurrogateStore {
    /// An empty store.
    pub fn new() -> Self {
        SurrogateStore::default()
    }

    /// Looks up a curve by key.
    pub fn get(&self, key: u64) -> Option<Arc<CalibratedCurve>> {
        self.curves
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .cloned()
    }

    /// Inserts a curve, returning the stored handle. If another thread
    /// inserted the same key first, the existing curve wins and the
    /// argument is dropped (calibrations of the same key are
    /// interchangeable by construction).
    pub fn insert(&self, curve: CalibratedCurve) -> Arc<CalibratedCurve> {
        let key = curve.key();
        let mut map = self.curves.write().unwrap_or_else(PoisonError::into_inner);
        map.entry(key).or_insert_with(|| Arc::new(curve)).clone()
    }

    /// Number of calibrated curves held.
    pub fn len(&self) -> usize {
        self.curves
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the store holds no curves yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The surrogate front end: an array, its calibration temperature grid,
/// and a store of curves keyed by programmed state.
///
/// Construction is cheap (one netlist build for the topology hash); all
/// live solving happens lazily on the first query per key.
#[derive(Debug)]
pub struct MacSurrogate<C> {
    array: CimArray<C>,
    temps: Vec<Celsius>,
    topology: u64,
    store: SurrogateStore,
    telemetry: Telemetry,
    check: Option<CheckPolicy>,
    hits: AtomicU64,
    misses: AtomicU64,
    checks: AtomicU64,
    check_failures: AtomicU64,
    queries: AtomicU64,
}

impl<C: CellDesign> MacSurrogate<C> {
    /// Wraps `array` with a surrogate calibrated over the temperature
    /// grid `temps` (strictly ascending, at least one point, finite).
    ///
    /// # Errors
    ///
    /// [`SurrogateError::InvalidGrid`] for an empty, non-finite, or
    /// non-ascending grid; [`SurrogateError::Cim`] if the topology
    /// netlist cannot be built.
    pub fn new(array: CimArray<C>, temps: &[Celsius]) -> Result<Self, SurrogateError> {
        if temps.is_empty() {
            return Err(SurrogateError::InvalidGrid {
                requirement: "at least one grid temperature",
            });
        }
        if temps.iter().any(|t| !t.value().is_finite()) {
            return Err(SurrogateError::InvalidGrid {
                requirement: "all grid temperatures finite",
            });
        }
        if temps.windows(2).any(|w| w[0].value() >= w[1].value()) {
            return Err(SurrogateError::InvalidGrid {
                requirement: "grid temperatures strictly ascending",
            });
        }
        let n = array.config().cells_per_row;
        // Canonical operands: the topology hash must not depend on any
        // particular programmed state (weights enter the fingerprint
        // through the sorted cell states instead), so the netlist is
        // built with all-true weights and all-false inputs.
        let (circuit, _acc, _latency) = array.readout_circuit(&vec![true; n], &vec![false; n])?;
        let topology = circuit.content_hash();
        Ok(MacSurrogate {
            array,
            temps: temps.to_vec(),
            topology,
            store: SurrogateStore::new(),
            telemetry: Telemetry::off(),
            check: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            checks: AtomicU64::new(0),
            check_failures: AtomicU64::new(0),
            queries: AtomicU64::new(0),
        })
    }

    /// Attaches a telemetry handle: lookups emit
    /// [`Event::SurrogateLookup`], check-mode re-solves emit
    /// [`Event::SurrogateCheck`].
    #[must_use]
    pub fn with_recorder(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables check mode: a deterministic subsample of hit-path
    /// queries is re-solved live and compared to the envelope.
    #[must_use]
    pub fn with_check(mut self, policy: CheckPolicy) -> Self {
        self.check = Some(policy);
        self
    }

    /// The wrapped array.
    pub fn array(&self) -> &CimArray<C> {
        &self.array
    }

    /// The calibration temperature grid.
    pub fn temps(&self) -> &[Celsius] {
        &self.temps
    }

    /// The calibrated temperature domain `(lo, hi)` in °C.
    pub fn domain_c(&self) -> (f64, f64) {
        // The grid is validated non-empty at construction.
        let lo = self.temps.first().map_or(f64::NAN, |t| t.value());
        let hi = self.temps.last().map_or(f64::NAN, |t| t.value());
        (lo, hi)
    }

    /// Row width the surrogate answers for.
    pub fn cells_per_row(&self) -> usize {
        self.array.config().cells_per_row
    }

    /// The curve store (for inspection and direct curve access).
    pub fn store(&self) -> &SurrogateStore {
        &self.store
    }

    /// A snapshot of the lookup/check counters.
    pub fn counts(&self) -> SurrogateCounts {
        SurrogateCounts {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            checks: self.checks.load(Ordering::Relaxed),
            check_failures: self.check_failures.load(Ordering::Relaxed),
        }
    }

    /// The content-addressed key for a programmed weight vector on this
    /// array (faults come from the array itself).
    ///
    /// # Errors
    ///
    /// [`SurrogateError::MismatchedOperands`] for a wrong width.
    pub fn key_for(&self, weights: &[bool]) -> Result<u64, SurrogateError> {
        let n = self.cells_per_row();
        if weights.len() != n {
            return Err(SurrogateError::MismatchedOperands {
                weights: weights.len(),
                inputs: n,
                cells_per_row: n,
            });
        }
        let faults = self.array.faults();
        let cells: Vec<CellState> = weights
            .iter()
            .enumerate()
            .map(|(col, &weight)| CellState {
                col,
                weight,
                fault: faults.get(col).copied().flatten(),
            })
            .collect();
        let temps_c: Vec<f64> = self.temps.iter().map(|t| t.value()).collect();
        Ok(fingerprint(
            self.topology,
            self.array.config(),
            &temps_c,
            &cells,
        ))
    }

    /// Returns the calibrated curve for `weights`, calibrating it with
    /// live solves on the first request (populate-on-miss). Emits one
    /// [`Event::SurrogateLookup`] either way.
    ///
    /// # Errors
    ///
    /// Width mismatches and live-calibration failures.
    pub fn curve_for(&self, weights: &[bool]) -> Result<Arc<CalibratedCurve>, SurrogateError> {
        let key = self.key_for(weights)?;
        if let Some(curve) = self.store.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.telemetry.emit(|| Event::SurrogateLookup { hit: true });
            return Ok(curve);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.telemetry
            .emit(|| Event::SurrogateLookup { hit: false });
        let curve = self.calibrate(key, weights)?;
        Ok(self.store.insert(curve))
    }

    /// Answers one MAC query: curve lookup (calibrating on miss), curve
    /// evaluation, and — when check mode selects this query — a live
    /// re-solve compared against the certified envelope.
    ///
    /// # Errors
    ///
    /// [`SurrogateError::OutOfDomain`] for temperatures outside the
    /// grid (never extrapolates), width mismatches, and live-solve
    /// failures during calibration.
    pub fn evaluate(
        &self,
        weights: &[bool],
        inputs: &[bool],
        temp: Celsius,
    ) -> Result<SurrogateAnswer, SurrogateError> {
        let curve = self.curve_for(weights)?;
        let mut answer = curve.eval(inputs, temp)?;
        let query = self.queries.fetch_add(1, Ordering::Relaxed);
        if let Some(policy) = self.check {
            if policy.selects(query) {
                // A failed live solve must not fail the query — the
                // surrogate answer is already in hand — so check
                // outcomes only exist when the re-solve succeeds.
                if let Ok(live) = self.live(weights, inputs, temp) {
                    let deviation_v = (answer.v_acc.value() - live.v_acc.value()).abs();
                    let ok = deviation_v <= answer.envelope.max_v;
                    self.checks.fetch_add(1, Ordering::Relaxed);
                    if !ok {
                        self.check_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    self.telemetry.emit(|| Event::SurrogateCheck {
                        ok,
                        deviation: deviation_v,
                    });
                    answer.check = Some(CheckOutcome { deviation_v, ok });
                }
            }
        }
        Ok(answer)
    }

    /// One live analytic MAC solve (the reference the surrogate is
    /// calibrated against and checked with).
    fn live(
        &self,
        weights: &[bool],
        inputs: &[bool],
        temp: Celsius,
    ) -> Result<MacOutput, SurrogateError> {
        Ok(self.array.run(
            &MacRequest::new(inputs)
                .weights(weights)
                .at(temp)
                .path(MacPath::Analytic),
        )?)
    }

    /// Runs the full calibration for one key: the `n + 1` live solves
    /// per grid temperature that pin the linear form, the ADC threshold
    /// tables, and the envelope probes at interpolation midpoints.
    fn calibrate(&self, key: u64, weights: &[bool]) -> Result<CalibratedCurve, SurrogateError> {
        let started = Instant::now();
        let n = self.cells_per_row();
        let mut solves = 0usize;
        let temps_c: Vec<f64> = self.temps.iter().map(|t| t.value()).collect();
        let mut base_v = Vec::with_capacity(temps_c.len());
        let mut base_e = Vec::with_capacity(temps_c.len());
        let mut delta_v = Vec::with_capacity(temps_c.len());
        let mut delta_e = Vec::with_capacity(temps_c.len());
        let mut thresholds = Vec::with_capacity(temps_c.len());
        let mut expected_base = 0i64;
        let mut expected_delta: Vec<i64> = Vec::with_capacity(n);
        let all_low = vec![false; n];
        for (ti, &temp) in self.temps.iter().enumerate() {
            let zero = self.live(weights, &all_low, temp)?;
            solves += 1;
            base_v.push(zero.v_acc.value());
            base_e.push(zero.energy.value());
            if ti == 0 {
                expected_base = zero.expected as i64;
            }
            let mut dv = Vec::with_capacity(n);
            let mut de = Vec::with_capacity(n);
            for col in 0..n {
                let mut x = all_low.clone();
                x[col] = true;
                let one = self.live(weights, &x, temp)?;
                solves += 1;
                dv.push(one.v_acc.value() - zero.v_acc.value());
                de.push(one.energy.value() - zero.energy.value());
                if ti == 0 {
                    expected_delta.push(one.expected as i64 - zero.expected as i64);
                }
            }
            delta_v.push(dv);
            delta_e.push(de);
            let levels = self.array.level_voltages(temp)?;
            let mut mids: Vec<f64> = levels
                .windows(2)
                .map(|w| 0.5 * (w[0].value() + w[1].value()))
                .collect();
            // The nominal level table is ascending for any sane design;
            // sorting makes quantization well-defined even for a
            // pathological one instead of panicking.
            mids.sort_by(f64::total_cmp);
            thresholds.push(mids);
        }
        // Provisional curve (placeholder envelope) used to measure the
        // real envelope against live solves.
        let provisional = CalibratedCurve::from_data(CurveData {
            key,
            cells_per_row: n,
            temps_c: temps_c.clone(),
            base_v,
            delta_v,
            base_e,
            delta_e,
            thresholds,
            expected_base,
            expected_delta,
            latency_s: self.array.config().latency().value(),
            calibration_s: 0.0,
            solves: 0,
            envelope: ErrorEnvelope {
                max_v: f64::INFINITY,
                observed_max_v: 0.0,
                rms_v: 0.0,
                probes: 0,
            },
        });
        // Probe at interpolation midpoints (worst case for a linear
        // blend); a single-temperature grid has no interpolation error,
        // so probe the grid point itself as a fit sanity check.
        let probe_temps: Vec<f64> = if temps_c.len() >= 2 {
            temps_c.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect()
        } else {
            temps_c.clone()
        };
        let mut patterns: Vec<Vec<bool>> =
            (0..=n).map(|k| (0..n).map(|i| i < k).collect()).collect();
        let mut rng = StdRng::seed_from_u64(key);
        for _ in 0..RANDOM_PROBES {
            patterns.push((0..n).map(|_| rng.random::<bool>()).collect());
        }
        let mut max_dev = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut probes = 0usize;
        for &t in &probe_temps {
            for pattern in &patterns {
                let live = self.live(weights, pattern, Celsius(t))?;
                solves += 1;
                let sur = provisional.eval(pattern, Celsius(t))?;
                let dev = (sur.v_acc.value() - live.v_acc.value()).abs();
                max_dev = max_dev.max(dev);
                sum_sq += dev * dev;
                probes += 1;
            }
        }
        let rms = if probes > 0 {
            (sum_sq / probes as f64).sqrt()
        } else {
            0.0
        };
        let envelope = ErrorEnvelope {
            max_v: max_dev * ENVELOPE_SAFETY + ENVELOPE_FLOOR_V,
            observed_max_v: max_dev,
            rms_v: rms,
            probes,
        };
        Ok(provisional.finalize(envelope, started.elapsed().as_secs_f64(), solves))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrocim_cim::cells::TwoTransistorOneFefet;
    use ferrocim_cim::{ArrayConfig, CellFault};
    use ferrocim_telemetry::Aggregator;
    use ferrocim_units::Second;

    fn small_array() -> CimArray<TwoTransistorOneFefet> {
        let config = ArrayConfig {
            cells_per_row: 4,
            dt: Second(100e-12),
            ..ArrayConfig::paper_default()
        };
        CimArray::new(TwoTransistorOneFefet::paper_default(), config).expect("valid config")
    }

    fn grid() -> Vec<Celsius> {
        vec![Celsius(0.0), Celsius(85.0)]
    }

    #[test]
    fn miss_calibrates_then_hits_answer_from_the_curve() {
        let surrogate = MacSurrogate::new(small_array(), &grid()).expect("valid grid");
        let weights = [true, false, true, true];
        let inputs = [true, true, false, true];
        let first = surrogate
            .evaluate(&weights, &inputs, Celsius(27.0))
            .expect("in domain");
        let second = surrogate
            .evaluate(&weights, &inputs, Celsius(27.0))
            .expect("in domain");
        assert_eq!(first.v_acc, second.v_acc);
        assert_eq!(first.expected, 2);
        let counts = surrogate.counts();
        assert_eq!(counts.misses, 1);
        assert_eq!(counts.hits, 1);
        assert_eq!(surrogate.store().len(), 1);
        // A different weight vector is a different key.
        surrogate
            .evaluate(&[false; 4], &inputs, Celsius(27.0))
            .expect("in domain");
        assert_eq!(surrogate.counts().misses, 2);
        assert_eq!(surrogate.store().len(), 2);
    }

    #[test]
    fn surrogate_matches_live_solves_within_the_envelope() {
        let surrogate = MacSurrogate::new(small_array(), &grid()).expect("valid grid");
        let weights = [true, true, false, true];
        for (temp_c, inputs) in [
            (0.0, [true, false, true, true]),
            (42.5, [true, true, true, true]),
            (85.0, [false, true, false, true]),
            (13.0, [false, false, false, false]),
        ] {
            let answer = surrogate
                .evaluate(&weights, &inputs, Celsius(temp_c))
                .expect("in domain");
            let live = surrogate
                .array()
                .run(
                    &MacRequest::new(&inputs)
                        .weights(&weights)
                        .at(Celsius(temp_c))
                        .path(MacPath::Analytic),
                )
                .expect("live solve");
            let dev = (answer.v_acc.value() - live.v_acc.value()).abs();
            assert!(
                dev <= answer.envelope.max_v,
                "deviation {dev} exceeds certified envelope {} at {temp_c} °C",
                answer.envelope.max_v
            );
            assert_eq!(answer.expected, live.expected);
        }
    }

    #[test]
    fn grid_temperatures_are_answered_exactly() {
        let surrogate = MacSurrogate::new(small_array(), &grid()).expect("valid grid");
        let weights = [true, true, true, false];
        let inputs = [true, false, true, true];
        for temp in grid() {
            let answer = surrogate
                .evaluate(&weights, &inputs, temp)
                .expect("in domain");
            let live = surrogate
                .array()
                .run(
                    &MacRequest::new(&inputs)
                        .weights(&weights)
                        .at(temp)
                        .path(MacPath::Analytic),
                )
                .expect("live solve");
            // Linear-in-inputs is exact at grid points; only float
            // round-off separates the two.
            assert!((answer.v_acc.value() - live.v_acc.value()).abs() < 1e-12);
            assert!((answer.energy.value() - live.energy.value()).abs() < 1e-24);
        }
    }

    #[test]
    fn out_of_domain_is_a_typed_error_not_an_extrapolation() {
        let surrogate = MacSurrogate::new(small_array(), &grid()).expect("valid grid");
        let weights = [true; 4];
        match surrogate.evaluate(&weights, &[true; 4], Celsius(120.0)) {
            Err(SurrogateError::OutOfDomain { temp_c, lo_c, hi_c }) => {
                assert_eq!(temp_c, 120.0);
                assert_eq!((lo_c, hi_c), (0.0, 85.0));
            }
            other => panic!("expected OutOfDomain, got {other:?}"),
        }
        assert!(matches!(
            surrogate.evaluate(&weights, &[true; 4], Celsius(-40.0)),
            Err(SurrogateError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn check_mode_re_solves_and_never_violates_the_envelope() {
        let surrogate = MacSurrogate::new(small_array(), &grid())
            .expect("valid grid")
            .with_check(CheckPolicy::every(1));
        let weights = [true, false, true, true];
        for k in 0..6 {
            let inputs: Vec<bool> = (0..4).map(|i| (k >> i) & 1 == 1).collect();
            let answer = surrogate
                .evaluate(&weights, &inputs, Celsius(20.0 + 10.0 * k as f64))
                .expect("in domain");
            let check = answer.check.expect("every-query policy checks all");
            assert!(check.ok, "envelope violated: {check:?}");
        }
        let counts = surrogate.counts();
        assert_eq!(counts.checks, 6);
        assert_eq!(counts.check_failures, 0);
    }

    #[test]
    fn faults_change_the_key_and_the_calibrated_answer() {
        let healthy = MacSurrogate::new(small_array(), &grid()).expect("valid grid");
        let faulted_array = small_array()
            .with_faults(&[Some(CellFault::StuckAtHvt), None, None, None])
            .expect("valid faults");
        let faulted = MacSurrogate::new(faulted_array, &grid()).expect("valid grid");
        let weights = [true; 4];
        let key_h = healthy.key_for(&weights).expect("width ok");
        let key_f = faulted.key_for(&weights).expect("width ok");
        assert_ne!(key_h, key_f, "fault plans must separate keys");
        let inputs = [true; 4];
        let a = healthy
            .evaluate(&weights, &inputs, Celsius(27.0))
            .expect("in domain");
        let b = faulted
            .evaluate(&weights, &inputs, Celsius(27.0))
            .expect("in domain");
        // `expected` is the digital ground truth from the *requested*
        // operands (faults do not change it), but the analog output
        // sees the stuck-at-HVT cell read as weight 0.
        assert_eq!(a.expected, 4);
        assert_eq!(b.expected, 4);
        assert!(a.v_acc.value() > b.v_acc.value());
    }

    #[test]
    fn lookups_and_checks_flow_into_telemetry_counters() {
        let agg = Arc::new(Aggregator::new());
        let surrogate = MacSurrogate::new(small_array(), &grid())
            .expect("valid grid")
            .with_recorder(Telemetry::new(agg.clone()))
            .with_check(CheckPolicy::every(1));
        let weights = [true, true, false, false];
        for _ in 0..3 {
            surrogate
                .evaluate(&weights, &[true; 4], Celsius(40.0))
                .expect("in domain");
        }
        let counts = agg.counts();
        assert_eq!(counts.surrogate_misses, 1);
        assert_eq!(counts.surrogate_hits, 2);
        assert_eq!(counts.surrogate_checks, 3);
        assert_eq!(counts.surrogate_check_failures, 0);
    }

    #[test]
    fn invalid_grids_are_rejected() {
        assert!(matches!(
            MacSurrogate::new(small_array(), &[]),
            Err(SurrogateError::InvalidGrid { .. })
        ));
        assert!(matches!(
            MacSurrogate::new(small_array(), &[Celsius(85.0), Celsius(0.0)]),
            Err(SurrogateError::InvalidGrid { .. })
        ));
        assert!(matches!(
            MacSurrogate::new(small_array(), &[Celsius(f64::NAN)]),
            Err(SurrogateError::InvalidGrid { .. })
        ));
        // A single-temperature grid is legal: domain == that point.
        let single = MacSurrogate::new(small_array(), &[Celsius(27.0)]).expect("single-point grid");
        assert_eq!(single.domain_c(), (27.0, 27.0));
        let answer = single
            .evaluate(&[true; 4], &[true, false, false, true], Celsius(27.0))
            .expect("in domain");
        assert_eq!(answer.expected, 2);
    }
}
