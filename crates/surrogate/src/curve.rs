//! Calibrated transfer curves: the per-key payload of the store.
//!
//! For a fixed key (topology, geometry, faults, programmed weights) the
//! analytic MAC is linear in the input bits: every cell drives its own
//! output capacitor, and charge sharing combines the per-cell voltages
//! linearly, so `v_acc(x) = base + Σᵢ xᵢ·Δᵢ` *exactly* at any one
//! temperature. Energy and the ideal MAC count decompose the same way.
//! A curve therefore stores, per grid temperature, the base vector and
//! one delta per column, plus the ADC threshold table for readout
//! quantization; temperatures between grid points interpolate linearly,
//! which is where the (measured, certified) error envelope comes from.

use crate::SurrogateError;
use ferrocim_units::{Celsius, Joule, Second, Volt};
use serde::{Deserialize, Serialize};

/// Tolerance (°C) applied at the domain edges so that a query at
/// exactly `t_lo`/`t_hi` survives floating-point round-trips.
const DOMAIN_EPS_C: f64 = 1e-9;

/// The certified deviation envelope of one calibrated curve, measured
/// against live solves at calibration time.
///
/// `max_v` is the *certified bound* — the observed maximum inflated by
/// a safety factor plus an absolute floor — and is the value check mode
/// enforces. `observed_max_v`/`rms_v` are the raw measurements, kept so
/// reports can show how much margin the certification added.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorEnvelope {
    /// Certified bound on `|surrogate − live|` for `v_acc`, in volts.
    pub max_v: f64,
    /// Raw maximum deviation observed over the calibration probes, V.
    pub observed_max_v: f64,
    /// Root-mean-square deviation over the calibration probes, V.
    pub rms_v: f64,
    /// Number of (temperature, pattern) probe points measured.
    pub probes: usize,
}

/// The outcome of one check-mode live re-solve of a surrogate answer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckOutcome {
    /// Absolute deviation between the surrogate and the live solve, V.
    pub deviation_v: f64,
    /// Whether the deviation stayed within the certified envelope.
    pub ok: bool,
}

/// One surrogate-answered MAC evaluation.
#[derive(Debug, Clone)]
pub struct SurrogateAnswer {
    /// Accumulated output voltage.
    pub v_acc: Volt,
    /// Estimated MAC energy.
    pub energy: Joule,
    /// The array's fixed readout latency.
    pub latency: Second,
    /// Quantized readout (against the curve's interpolated thresholds).
    pub readout: usize,
    /// The ideal (fault-aware) MAC count for these operands.
    pub expected: usize,
    /// The certified error envelope this answer is covered by.
    pub envelope: ErrorEnvelope,
    /// Present when check mode routed this query through the live
    /// solver as well.
    pub check: Option<CheckOutcome>,
}

/// A calibrated operating-point/transfer-curve bundle for one key.
///
/// Immutable after calibration; the store shares it via `Arc`.
#[derive(Debug, Clone)]
pub struct CalibratedCurve {
    key: u64,
    cells_per_row: usize,
    /// Calibration grid, °C, strictly ascending.
    temps_c: Vec<f64>,
    /// Per grid temperature: `v_acc` with all inputs low, volts.
    base_v: Vec<f64>,
    /// Per grid temperature, per column: `v_acc` contribution of
    /// raising input `i`, volts.
    delta_v: Vec<Vec<f64>>,
    /// Per grid temperature: MAC energy with all inputs low, joules.
    base_e: Vec<f64>,
    /// Per grid temperature, per column: energy contribution of input
    /// `i`, joules.
    delta_e: Vec<Vec<f64>>,
    /// Per grid temperature: ADC decision thresholds (ascending), V.
    thresholds: Vec<Vec<f64>>,
    /// Ideal MAC count with all inputs low (nonzero under some faults).
    expected_base: i64,
    /// Per column: ideal-count contribution of raising input `i`.
    expected_delta: Vec<i64>,
    /// The array's fixed readout latency, seconds.
    latency_s: f64,
    /// Wall-clock seconds spent calibrating this curve.
    calibration_s: f64,
    /// Live solves spent calibrating (fit + envelope probes).
    solves: usize,
    envelope: ErrorEnvelope,
}

/// Everything [`CalibratedCurve::new`] needs, gathered by the
/// calibration pass in [`crate::MacSurrogate`].
#[derive(Debug)]
pub(crate) struct CurveData {
    pub key: u64,
    pub cells_per_row: usize,
    pub temps_c: Vec<f64>,
    pub base_v: Vec<f64>,
    pub delta_v: Vec<Vec<f64>>,
    pub base_e: Vec<f64>,
    pub delta_e: Vec<Vec<f64>>,
    pub thresholds: Vec<Vec<f64>>,
    pub expected_base: i64,
    pub expected_delta: Vec<i64>,
    pub latency_s: f64,
    pub calibration_s: f64,
    pub solves: usize,
    pub envelope: ErrorEnvelope,
}

impl CalibratedCurve {
    pub(crate) fn from_data(data: CurveData) -> Self {
        CalibratedCurve {
            key: data.key,
            cells_per_row: data.cells_per_row,
            temps_c: data.temps_c,
            base_v: data.base_v,
            delta_v: data.delta_v,
            base_e: data.base_e,
            delta_e: data.delta_e,
            thresholds: data.thresholds,
            expected_base: data.expected_base,
            expected_delta: data.expected_delta,
            latency_s: data.latency_s,
            calibration_s: data.calibration_s,
            solves: data.solves,
            envelope: data.envelope,
        }
    }

    /// Stamps the measured envelope and calibration cost onto a
    /// provisional curve (calibration builds the curve first, then
    /// measures it against live solves).
    pub(crate) fn finalize(
        mut self,
        envelope: ErrorEnvelope,
        calibration_s: f64,
        solves: usize,
    ) -> Self {
        self.envelope = envelope;
        self.calibration_s = calibration_s;
        self.solves = solves;
        self
    }

    /// The content-addressed key this curve was calibrated for.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Row width the curve answers for.
    pub fn cells_per_row(&self) -> usize {
        self.cells_per_row
    }

    /// The calibration temperature grid, °C, ascending.
    pub fn temps_c(&self) -> &[f64] {
        &self.temps_c
    }

    /// The calibrated temperature domain `(lo, hi)` in °C.
    pub fn domain_c(&self) -> (f64, f64) {
        // Grids are validated non-empty at construction.
        let lo = self.temps_c.first().copied().unwrap_or(f64::NAN);
        let hi = self.temps_c.last().copied().unwrap_or(f64::NAN);
        (lo, hi)
    }

    /// The certified error envelope measured at calibration time.
    pub fn envelope(&self) -> ErrorEnvelope {
        self.envelope
    }

    /// Live solves spent building this curve (fit + envelope probes).
    pub fn solves(&self) -> usize {
        self.solves
    }

    /// Wall-clock seconds the calibration took.
    pub fn calibration_s(&self) -> f64 {
        self.calibration_s
    }

    /// Whether `temp` falls inside the calibrated domain (with a tiny
    /// edge tolerance).
    pub fn in_domain(&self, temp: Celsius) -> bool {
        let (lo, hi) = self.domain_c();
        temp.value() >= lo - DOMAIN_EPS_C && temp.value() <= hi + DOMAIN_EPS_C
    }

    /// Locates `t` in the grid: `(lower index, upper index, blend)`.
    fn bracket(&self, t: f64) -> Result<(usize, usize, f64), SurrogateError> {
        let (lo, hi) = self.domain_c();
        if !(t >= lo - DOMAIN_EPS_C && t <= hi + DOMAIN_EPS_C) {
            return Err(SurrogateError::OutOfDomain {
                temp_c: t,
                lo_c: lo,
                hi_c: hi,
            });
        }
        let t = t.clamp(lo, hi);
        // Index of the first grid point >= t.
        let upper = self.temps_c.partition_point(|&g| g < t);
        if upper == 0 {
            return Ok((0, 0, 0.0));
        }
        let i = upper - 1;
        let j = upper.min(self.temps_c.len() - 1);
        if i == j {
            return Ok((i, j, 0.0));
        }
        let span = self.temps_c[j] - self.temps_c[i];
        let blend = if span > 0.0 {
            (t - self.temps_c[i]) / span
        } else {
            0.0
        };
        Ok((i, j, blend))
    }

    /// Evaluates the curve at `inputs` / `temp`.
    ///
    /// # Errors
    ///
    /// [`SurrogateError::MismatchedOperands`] for a wrong input width,
    /// [`SurrogateError::OutOfDomain`] for a temperature outside the
    /// calibrated grid — the curve never extrapolates.
    pub fn eval(&self, inputs: &[bool], temp: Celsius) -> Result<SurrogateAnswer, SurrogateError> {
        if inputs.len() != self.cells_per_row {
            return Err(SurrogateError::MismatchedOperands {
                weights: self.cells_per_row,
                inputs: inputs.len(),
                cells_per_row: self.cells_per_row,
            });
        }
        let (i, j, blend) = self.bracket(temp.value())?;
        let mut v = lerp(self.base_v[i], self.base_v[j], blend);
        let mut e = lerp(self.base_e[i], self.base_e[j], blend);
        let mut expected = self.expected_base;
        for (col, &x) in inputs.iter().enumerate() {
            if x {
                v += lerp(self.delta_v[i][col], self.delta_v[j][col], blend);
                e += lerp(self.delta_e[i][col], self.delta_e[j][col], blend);
                expected += self.expected_delta[col];
            }
        }
        let readout = self.quantize(v, i, j, blend);
        Ok(SurrogateAnswer {
            v_acc: Volt(v),
            energy: Joule(e),
            latency: Second(self.latency_s),
            readout,
            expected: expected.max(0) as usize,
            envelope: self.envelope,
            check: None,
        })
    }

    /// Quantizes against the temperature-interpolated threshold table:
    /// the number of thresholds strictly below `v` (the same convention
    /// as `ferrocim_cim::transfer::Adc::quantize`).
    fn quantize(&self, v: f64, i: usize, j: usize, blend: f64) -> usize {
        let a = &self.thresholds[i];
        let b = &self.thresholds[j];
        a.iter()
            .zip(b.iter())
            .map(|(&ta, &tb)| lerp(ta, tb, blend))
            .filter(|&t| t < v)
            .count()
    }
}

fn lerp(a: f64, b: f64, blend: f64) -> f64 {
    a + (b - a) * blend
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> CalibratedCurve {
        CalibratedCurve::from_data(CurveData {
            key: 1,
            cells_per_row: 2,
            temps_c: vec![0.0, 100.0],
            base_v: vec![0.0, 0.1],
            delta_v: vec![vec![0.2, 0.4], vec![0.3, 0.5]],
            base_e: vec![1e-15, 2e-15],
            delta_e: vec![vec![1e-15, 1e-15], vec![2e-15, 2e-15]],
            thresholds: vec![vec![0.1, 0.3], vec![0.2, 0.4]],
            expected_base: 0,
            expected_delta: vec![1, 1],
            latency_s: 7e-9,
            calibration_s: 0.0,
            solves: 6,
            envelope: ErrorEnvelope {
                max_v: 1e-3,
                observed_max_v: 5e-4,
                rms_v: 1e-4,
                probes: 4,
            },
        })
    }

    #[test]
    fn eval_interpolates_linearly_between_grid_points() {
        let c = curve();
        let at = |t: f64, x: &[bool]| c.eval(x, Celsius(t)).expect("in domain");
        // At the grid points the stored values come back exactly.
        assert!((at(0.0, &[true, false]).v_acc.value() - 0.2).abs() < 1e-15);
        assert!((at(100.0, &[true, false]).v_acc.value() - 0.4).abs() < 1e-15);
        // Midpoint blends base and delta: (0+0.1)/2 + (0.2+0.3)/2 = 0.3.
        assert!((at(50.0, &[true, false]).v_acc.value() - 0.3).abs() < 1e-15);
        // Expected counts are temperature independent.
        assert_eq!(at(50.0, &[true, true]).expected, 2);
    }

    #[test]
    fn eval_rejects_out_of_domain_and_bad_width() {
        let c = curve();
        match c.eval(&[true, false], Celsius(120.0)) {
            Err(SurrogateError::OutOfDomain { temp_c, lo_c, hi_c }) => {
                assert_eq!(temp_c, 120.0);
                assert_eq!((lo_c, hi_c), (0.0, 100.0));
            }
            other => panic!("expected OutOfDomain, got {other:?}"),
        }
        assert!(matches!(
            c.eval(&[true], Celsius(50.0)),
            Err(SurrogateError::MismatchedOperands { .. })
        ));
        // The exact edges stay in domain.
        assert!(c.eval(&[true, true], Celsius(0.0)).is_ok());
        assert!(c.eval(&[true, true], Celsius(100.0)).is_ok());
        assert!(c.in_domain(Celsius(100.0)));
        assert!(!c.in_domain(Celsius(100.1)));
    }

    #[test]
    fn quantize_counts_interpolated_thresholds_below() {
        let c = curve();
        // At t=0 thresholds are [0.1, 0.3]: v=0.2 → readout 1.
        let a = c.eval(&[true, false], Celsius(0.0)).expect("in domain");
        assert_eq!(a.readout, 1);
        // At t=100 thresholds are [0.2, 0.4]: v=0.5+0.1 base? inputs
        // [false, true] → 0.1 + 0.5 = 0.6 → above both → readout 2.
        let b = c.eval(&[false, true], Celsius(100.0)).expect("in domain");
        assert_eq!(b.readout, 2);
    }
}
