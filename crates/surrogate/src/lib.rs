//! Certified error-bounded surrogate fast path for CIM MAC evaluation.
//!
//! Live MAC evaluation walks the full stack — netlist construction,
//! transient or analytic device solves, charge sharing — every time,
//! even though production workloads ask the *same* physical array the
//! same class of question over and over: "given these programmed
//! weights, these faults, and this temperature, what does the row
//! read?". This crate memoizes that question safely.
//!
//! The design has three pieces:
//!
//! 1. **A content-addressed key** ([`fingerprint()`]): an order-insensitive
//!    hash of the cell/netlist topology, the array geometry, the
//!    calibration temperature grid, and the per-column programmed state
//!    (weight bit + injected fault). Two arrays that are physically
//!    identical produce the same key no matter how their fault plans or
//!    cell states were enumerated.
//! 2. **A calibrated curve** ([`CalibratedCurve`]): for a fixed key, the
//!    analytic MAC is *linear in the input bits* — `v_acc(x) = base +
//!    Σᵢ xᵢ·Δᵢ` — because each cell drives its own output capacitor and
//!    charge sharing combines them linearly. Calibration therefore needs
//!    only `n + 1` live solves per grid temperature (one all-zero base,
//!    one per one-hot input). Queries between grid temperatures
//!    interpolate linearly; queries outside the grid return a typed
//!    [`SurrogateError::OutOfDomain`] instead of extrapolating.
//! 3. **A certified error envelope** ([`ErrorEnvelope`]): at calibration
//!    time the curve is probed against live solves at the interpolation
//!    worst case (midpoints between grid temperatures) over ramp and
//!    seeded-random input patterns. The observed maximum deviation,
//!    inflated by a safety factor plus an absolute floor, is stored with
//!    the curve and reported with every answer. A check mode
//!    ([`CheckPolicy`]) routes a deterministic subsample of hit-path
//!    queries back through the live solver and flags any answer whose
//!    deviation exceeds the envelope.
//!
//! Lookup outcomes and check results flow into the shared telemetry
//! pipeline as [`ferrocim_telemetry::Event::SurrogateLookup`] /
//! [`ferrocim_telemetry::Event::SurrogateCheck`], so hit rates and
//! envelope violations are visible in Prometheus and the bench gate.
//!
//! ```
//! use ferrocim_cim::cells::TwoTransistorOneFefet;
//! use ferrocim_cim::{ArrayConfig, CimArray};
//! use ferrocim_surrogate::MacSurrogate;
//! use ferrocim_units::{Celsius, Second};
//!
//! let config = ArrayConfig {
//!     cells_per_row: 4,
//!     dt: Second(100e-12),
//!     ..ArrayConfig::paper_default()
//! };
//! let array = CimArray::new(TwoTransistorOneFefet::paper_default(), config)?;
//! let surrogate = MacSurrogate::new(array, &[Celsius(0.0), Celsius(85.0)])?;
//! let weights = [true, false, true, true];
//! let inputs = [true, true, false, true];
//! // First query calibrates (live solves); repeats answer from the curve.
//! let answer = surrogate.evaluate(&weights, &inputs, Celsius(27.0))?;
//! assert_eq!(answer.expected, 2);
//! assert!(answer.envelope.max_v > 0.0);
//! # Ok::<(), ferrocim_surrogate::SurrogateError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod curve;
pub mod fingerprint;
pub mod store;

pub use curve::{CalibratedCurve, CheckOutcome, ErrorEnvelope, SurrogateAnswer};
pub use fingerprint::{fingerprint, CellState};
pub use store::{CheckPolicy, MacSurrogate, SurrogateCounts, SurrogateStore};

use ferrocim_cim::CimError;

/// Typed failures of the surrogate layer.
///
/// `OutOfDomain` is the load-bearing variant: the surrogate never
/// extrapolates outside its calibrated temperature grid, so callers can
/// (and must) fall back to a live solve — or clamp into the domain when
/// an infallible degraded answer is required.
#[derive(Debug)]
pub enum SurrogateError {
    /// The query temperature lies outside the calibrated grid.
    OutOfDomain {
        /// The requested temperature, °C.
        temp_c: f64,
        /// Lower edge of the calibrated domain, °C.
        lo_c: f64,
        /// Upper edge of the calibrated domain, °C.
        hi_c: f64,
    },
    /// Operand slices did not match the array's row width.
    MismatchedOperands {
        /// Length of the weights slice.
        weights: usize,
        /// Length of the inputs slice.
        inputs: usize,
        /// The array's configured row width.
        cells_per_row: usize,
    },
    /// The calibration temperature grid was rejected.
    InvalidGrid {
        /// What the grid must satisfy.
        requirement: &'static str,
    },
    /// A live calibration or check solve failed underneath.
    Cim(CimError),
}

impl std::fmt::Display for SurrogateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SurrogateError::OutOfDomain { temp_c, lo_c, hi_c } => write!(
                f,
                "temperature {temp_c} °C is outside the calibrated domain \
                 [{lo_c}, {hi_c}] °C; the surrogate does not extrapolate"
            ),
            SurrogateError::MismatchedOperands {
                weights,
                inputs,
                cells_per_row,
            } => write!(
                f,
                "operand widths (weights {weights}, inputs {inputs}) do not \
                 match the row width {cells_per_row}"
            ),
            SurrogateError::InvalidGrid { requirement } => {
                write!(f, "invalid calibration temperature grid: {requirement}")
            }
            SurrogateError::Cim(e) => write!(f, "live solve failed: {e}"),
        }
    }
}

impl std::error::Error for SurrogateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SurrogateError::Cim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CimError> for SurrogateError {
    fn from(e: CimError) -> Self {
        SurrogateError::Cim(e)
    }
}
