//! Property-based pinning of the surrogate's certified error bound.
//!
//! The contract under test: for ANY programmed weight vector, fault
//! plan, input pattern, and in-domain temperature, the surrogate's
//! `v_acc` deviates from the live analytic solve by less than the
//! stored certified envelope — and for any out-of-domain temperature
//! the surrogate refuses with a typed error instead of extrapolating.

use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::{ArrayConfig, CellFault, CimArray, MacPath, MacRequest};
use ferrocim_surrogate::{MacSurrogate, SurrogateError};
use ferrocim_units::{Celsius, Second};
use proptest::prelude::*;

const CELLS: usize = 4;
const T_LO: f64 = 0.0;
const T_HI: f64 = 85.0;

fn array_with(faults: &[Option<CellFault>]) -> CimArray<TwoTransistorOneFefet> {
    let config = ArrayConfig {
        cells_per_row: CELLS,
        dt: Second(100e-12),
        ..ArrayConfig::paper_default()
    };
    CimArray::new(TwoTransistorOneFefet::paper_default(), config)
        .expect("valid config")
        .with_faults(faults)
        .expect("valid faults")
}

fn fault_strategy() -> impl Strategy<Value = Option<CellFault>> {
    // Healthy cells dominate (5 of 10 slots) so most sampled rows mix
    // working and broken columns rather than being all-fault.
    prop::sample::select(vec![
        None,
        None,
        None,
        None,
        None,
        Some(CellFault::StuckAtLvt),
        Some(CellFault::StuckAtHvt),
        Some(CellFault::DeadWordline),
        Some(CellFault::OpenDevice),
        Some(CellFault::ShortDevice),
    ])
}

proptest! {
    // Each case runs a full calibration (dozens of small analytic
    // solves), so the case count is modest — like the batch property
    // tests in ferrocim-cim.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// In-domain surrogate answers stay inside the certified envelope
    /// against the live solver, for arbitrary weights, faults, inputs,
    /// and temperatures.
    #[test]
    fn in_domain_deviation_stays_below_the_certified_envelope(
        weights in prop::collection::vec(any::<bool>(), CELLS),
        faults in prop::collection::vec(fault_strategy(), CELLS),
        inputs in prop::collection::vec(prop::collection::vec(any::<bool>(), CELLS), 1..4),
        temps in prop::collection::vec(T_LO..T_HI, 1..4),
    ) {
        let array = array_with(&faults);
        let surrogate = MacSurrogate::new(array, &[Celsius(T_LO), Celsius(27.0), Celsius(T_HI)])
            .expect("valid grid");
        for (x, &t) in inputs.iter().zip(temps.iter().cycle()) {
            let answer = surrogate
                .evaluate(&weights, x, Celsius(t))
                .expect("in-domain query");
            let live = surrogate
                .array()
                .run(
                    &MacRequest::new(x)
                        .weights(&weights)
                        .at(Celsius(t))
                        .path(MacPath::Analytic),
                )
                .expect("live solve");
            let dev = (answer.v_acc.value() - live.v_acc.value()).abs();
            prop_assert!(
                dev < answer.envelope.max_v,
                "deviation {dev} >= certified envelope {} \
                 (weights {weights:?}, faults {faults:?}, inputs {x:?}, t {t})",
                answer.envelope.max_v
            );
            // The envelope itself must be a positive, finite bound.
            prop_assert!(answer.envelope.max_v.is_finite() && answer.envelope.max_v > 0.0);
            prop_assert!(answer.envelope.observed_max_v <= answer.envelope.max_v);
        }
        // Repeating any query is a pure curve hit with an identical answer.
        let again = surrogate
            .evaluate(&weights, &inputs[0], Celsius(temps[0]))
            .expect("in-domain query");
        let first = surrogate
            .evaluate(&weights, &inputs[0], Celsius(temps[0]))
            .expect("in-domain query");
        prop_assert_eq!(again.v_acc, first.v_acc);
    }

    /// Out-of-domain temperatures always return the typed
    /// `OutOfDomain` error — the surrogate never extrapolates.
    #[test]
    fn out_of_domain_queries_are_refused_not_extrapolated(
        weights in prop::collection::vec(any::<bool>(), CELLS),
        inputs in prop::collection::vec(any::<bool>(), CELLS),
        above in 1e-3f64..500.0,
        below in 1e-3f64..500.0,
    ) {
        let surrogate = MacSurrogate::new(
            array_with(&[None; CELLS]),
            &[Celsius(T_LO), Celsius(T_HI)],
        )
        .expect("valid grid");
        for t in [T_HI + above, T_LO - below] {
            match surrogate.evaluate(&weights, &inputs, Celsius(t)) {
                Err(SurrogateError::OutOfDomain { temp_c, lo_c, hi_c }) => {
                    prop_assert_eq!(temp_c, t);
                    prop_assert_eq!((lo_c, hi_c), (T_LO, T_HI));
                }
                other => prop_assert!(false, "expected OutOfDomain at {t} °C, got {other:?}"),
            }
        }
    }
}
