//! The Table II cross-design comparison scaffold.
//!
//! Table II of the paper compares the proposed 2T-1FeFET design against
//! published CIM macros (SRAM, ReRAM, MTJ, other FeFET designs) using
//! each paper's own reported numbers; only the "This work" row is
//! simulated. This module reproduces that methodology: the literature
//! rows are data, and [`comparison_table`] appends a "This work" row
//! measured live from the simulated array.

use crate::cells::TwoTransistorOneFefet;
use crate::metrics::EnergyReport;
use crate::{ArrayConfig, CimArray, CimError};
use ferrocim_units::{Celsius, Joule};
use serde::{Deserialize, Serialize};

/// How a design's energy figure was reported.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EnergyFigure {
    /// Joules per elementary MAC operation.
    PerOperation(Joule),
    /// Joules per full network inference.
    PerInference(Joule),
    /// Not reported.
    Unreported,
}

/// One row of the Table II comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonEntry {
    /// Work label (citation key or "This work").
    pub work: String,
    /// Device technology (CMOS, FeFET, ReRAM, MTJ…).
    pub device: &'static str,
    /// Process node label.
    pub process: &'static str,
    /// Cell structure name.
    pub cell: &'static str,
    /// Dataset evaluated, if any.
    pub dataset: Option<&'static str>,
    /// Network architecture evaluated, if any.
    pub network: Option<&'static str>,
    /// Reported classification accuracy, if any (fraction, 0–1).
    pub accuracy: Option<f64>,
    /// Reported energy figure.
    pub energy: EnergyFigure,
    /// Reported energy efficiency in TOPS/W, if any.
    pub tops_per_watt: Option<f64>,
}

/// The literature rows of Table II, with the numbers the paper cites.
pub fn literature_rows() -> Vec<ComparisonEntry> {
    vec![
        ComparisonEntry {
            work: "[34] IMAC (TCAS-I'20)".into(),
            device: "CMOS",
            process: "65nm",
            cell: "6T SRAM",
            dataset: Some("CIFAR-10"),
            network: Some("VGG"),
            accuracy: Some(0.8883),
            energy: EnergyFigure::PerInference(Joule(158.203e-9)),
            tops_per_watt: None,
        },
        ComparisonEntry {
            work: "[35] XNOR-SRAM (JSSC'20)".into(),
            device: "CMOS",
            process: "65nm",
            cell: "12T SRAM",
            dataset: Some("CIFAR-10"),
            network: Some("BNN"),
            accuracy: Some(0.857),
            energy: EnergyFigure::PerOperation(Joule(4.8e-15)), // 2.48–7.19 fJ midpoint
            tops_per_watt: Some(403.0),
        },
        ComparisonEntry {
            work: "[17] Soliman et al. (IEDM'20)".into(),
            device: "FeFET",
            process: "28nm",
            cell: "1FeFET-1R",
            dataset: None,
            network: None,
            accuracy: None,
            energy: EnergyFigure::Unreported,
            tops_per_watt: Some(13714.0),
        },
        ComparisonEntry {
            work: "[19] 1F-1T (TNANO'23)".into(),
            device: "FeFET",
            process: "28nm",
            cell: "1FeFET-1T",
            dataset: Some("MNIST"),
            network: Some("MLP"),
            accuracy: Some(0.976),
            energy: EnergyFigure::PerInference(Joule(17.6e-6)),
            tops_per_watt: None,
        },
        ComparisonEntry {
            work: "[14] RRAM CIM (TCAS-I'21)".into(),
            device: "ReRAM",
            process: "22nm",
            cell: "1T-1R",
            dataset: Some("CIFAR-10"),
            network: Some("VGG"),
            accuracy: Some(0.9172),
            energy: EnergyFigure::PerInference(Joule(5.5e-6)),
            tops_per_watt: Some(26.66),
        },
        ComparisonEntry {
            work: "[36] MRAM macro (JxCDC'23)".into(),
            device: "MTJ",
            process: "28nm",
            cell: "1T-1MTJ",
            dataset: None,
            network: None,
            accuracy: None,
            energy: EnergyFigure::PerOperation(Joule(1.4e-12)),
            tops_per_watt: Some(32.0),
        },
    ]
}

/// Builds the full Table II: the literature rows plus a "This work" row
/// measured from the simulated 2T-1FeFET array at the given
/// temperature. `accuracy` is the CIFAR-10 figure produced by the
/// `ferrocim-nn` evaluation (pass `None` to leave the column blank).
///
/// # Errors
///
/// Propagates simulation failures from the energy measurement.
pub fn comparison_table(
    temp: Celsius,
    accuracy: Option<f64>,
) -> Result<Vec<ComparisonEntry>, CimError> {
    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )?;
    let report = EnergyReport::measure(&array, temp)?;
    let mut rows = literature_rows();
    rows.push(ComparisonEntry {
        work: "This work (reproduction)".into(),
        device: "FeFET",
        process: "14nm",
        cell: "2T-1FeFET",
        dataset: accuracy.map(|_| "CIFAR-10 (synthetic)"),
        network: accuracy.map(|_| "VGG-nano"),
        accuracy,
        energy: EnergyFigure::PerOperation(report.average),
        tops_per_watt: Some(report.tops_per_watt),
    });
    Ok(rows)
}

/// The energy-ratio comparisons the paper calls out in Sec. IV-B:
/// returns `(reram_ratio, mtj_ratio)` — how many times more energy per
/// operation the cited ReRAM and MTJ designs consume relative to an
/// energy-per-op figure. (Paper: 64.6× and 445.9×.)
pub fn energy_ratios(this_work_per_op: Joule) -> (f64, f64) {
    // The ReRAM figure is per inference; the paper derives an effective
    // per-op figure from its reported TOPS/W instead: P/throughput.
    let reram_per_op = 1.0 / (26.66 * 1e12); // J per op from 26.66 TOPS/W
    let mtj_per_op = 1.4e-12;
    (
        reram_per_op / this_work_per_op.value(),
        mtj_per_op / this_work_per_op.value(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literature_rows_match_the_paper() {
        let rows = literature_rows();
        assert_eq!(rows.len(), 6);
        let reram = rows.iter().find(|r| r.device == "ReRAM").unwrap();
        assert_eq!(reram.accuracy, Some(0.9172));
        assert_eq!(reram.tops_per_watt, Some(26.66));
        let fefet_1r = rows.iter().find(|r| r.cell == "1FeFET-1R").unwrap();
        assert_eq!(fefet_1r.tops_per_watt, Some(13714.0));
    }

    #[test]
    fn energy_ratios_scale_inversely() {
        let (reram, mtj) = energy_ratios(Joule(3.14e-15));
        // At exactly the paper's 3.14 fJ/op these land near 11.9× and
        // 445.9× (the paper's MTJ ratio is reproduced exactly).
        assert!((mtj - 445.9).abs() < 1.0, "mtj ratio {mtj}");
        assert!(reram > 5.0, "reram ratio {reram}");
    }
}
