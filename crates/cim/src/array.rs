//! The CIM array of Fig. 6: `n` cells per row, each charging its own
//! `C_o`, with an `EN`-switched shared accumulation capacitor `C_acc`.
//!
//! A MAC operation proceeds in two phases:
//!
//! 1. **Charge** (`t_charge`): each cell multiplies its stored weight by
//!    the word-line input and integrates the product current onto its
//!    cell capacitor `C_o`.
//! 2. **Share** (`t_share`): the `EN` switches close simultaneously and
//!    the cell charges redistribute onto `C_acc`, producing the
//!    accumulated output of the paper's Eq. (1):
//!
//!    ```text
//!    V_acc = C_o / (n·C_o + C_acc) · Σᵢ V_Oi
//!    ```
//!
//! Both a **full-transient** evaluation (the entire row simulated as one
//! netlist, used for energy measurements) and a fast **analytic**
//! evaluation (per-cell charge transients + the closed-form
//! charge-sharing step) are provided; they are cross-checked in the
//! integration tests.

use crate::cells::{CellContext, CellDesign, CellOffsets, CellWeight};
use crate::CimError;
use ferrocim_spice::{Circuit, Element, NodeId, SwitchSchedule, TransientAnalysis, Waveform};
use ferrocim_units::{Celsius, Farad, Joule, Second, Volt};
use serde::{Deserialize, Serialize};

/// Geometry and timing of a CIM row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Cells per row (the paper uses 8).
    pub cells_per_row: usize,
    /// Per-cell output capacitor `C_o`.
    pub c_o: Farad,
    /// Shared accumulation capacitor `C_acc`.
    pub c_acc: Farad,
    /// Duration of the charge phase.
    pub t_charge: Second,
    /// Dead time between word-line deassertion and `EN` closing, letting
    /// the cells' internal nodes discharge so the share phase is a pure
    /// charge redistribution (Eq. (1)).
    pub t_settle: Second,
    /// Duration of the charge-sharing phase.
    pub t_share: Second,
    /// Transient timestep.
    pub dt: Second,
}

impl ArrayConfig {
    /// The paper's row: 8 cells, with capacitors and timing sized for
    /// the 6.9 ns MAC latency and fJ-scale operation energy.
    pub fn paper_default() -> Self {
        ArrayConfig {
            cells_per_row: 8,
            c_o: Farad(1e-15),
            c_acc: Farad(8e-15),
            t_charge: Second(5.0e-9),
            t_settle: Second(0.4e-9),
            t_share: Second(1.5e-9),
            dt: Second(20e-12),
        }
    }

    /// Total MAC latency (`t_charge + t_settle + t_share`) — 6.9 ns for
    /// the paper default, matching the reported MAC latency.
    pub fn latency(&self) -> Second {
        self.t_charge + self.t_settle + self.t_share
    }

    /// The charge-sharing gain `C_o / (n·C_o + C_acc)` of Eq. (1).
    pub fn sharing_gain(&self) -> f64 {
        self.c_o.value()
            / (self.cells_per_row as f64 * self.c_o.value() + self.c_acc.value())
    }

    fn validate(&self) -> Result<(), CimError> {
        fn positive(name: &'static str, value: f64) -> Result<(), CimError> {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(CimError::InvalidConfig {
                    name,
                    value,
                    requirement: "positive and finite",
                })
            }
        }
        if self.cells_per_row == 0 {
            return Err(CimError::InvalidConfig {
                name: "cells_per_row",
                value: 0.0,
                requirement: "at least 1",
            });
        }
        positive("c_o", self.c_o.value())?;
        positive("c_acc", self.c_acc.value())?;
        positive("t_charge", self.t_charge.value())?;
        positive("t_share", self.t_share.value())?;
        if !(self.t_settle.value().is_finite() && self.t_settle.value() >= 0.0) {
            return Err(CimError::InvalidConfig {
                name: "t_settle",
                value: self.t_settle.value(),
                requirement: "non-negative and finite",
            });
        }
        positive("dt", self.dt.value())?;
        if self.dt.value() > self.t_share.value() || self.dt.value() > self.t_charge.value() {
            return Err(CimError::InvalidConfig {
                name: "dt",
                value: self.dt.value(),
                requirement: "smaller than both phases",
            });
        }
        Ok(())
    }
}

/// The result of one MAC operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MacOutput {
    /// The accumulated analog output voltage on `C_acc`.
    pub v_acc: Volt,
    /// Per-cell `C_o` voltages at the end of the charge phase.
    pub cell_voltages: Vec<Volt>,
    /// Total energy delivered by all supplies over the operation.
    pub energy: Joule,
    /// The operation latency.
    pub latency: Second,
    /// The digital ground truth `Σ wᵢ·xᵢ`.
    pub expected: usize,
}

impl MacOutput {
    /// Energy efficiency in TOPS/W, using the paper's operation count of
    /// `n` multiplications + 1 accumulation per row MAC.
    pub fn tops_per_watt(&self, cells_per_row: usize) -> f64 {
        self.energy.tops_per_watt(cells_per_row as f64 + 1.0)
    }
}

/// A single row of a CIM array built from any [`CellDesign`].
#[derive(Debug, Clone)]
pub struct CimArray<C> {
    cell: C,
    config: ArrayConfig,
}

impl<C: CellDesign> CimArray<C> {
    /// Creates an array after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::InvalidConfig`] for non-physical geometry or
    /// timing values.
    pub fn new(cell: C, config: ArrayConfig) -> Result<Self, CimError> {
        config.validate()?;
        Ok(CimArray { cell, config })
    }

    /// The cell design.
    pub fn cell(&self) -> &C {
        &self.cell
    }

    /// The array configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    fn check_operands(&self, weights: &[bool], inputs: &[bool]) -> Result<(), CimError> {
        if weights.len() != self.config.cells_per_row || inputs.len() != self.config.cells_per_row
        {
            return Err(CimError::MismatchedOperands {
                weights: weights.len(),
                inputs: inputs.len(),
                cells_per_row: self.config.cells_per_row,
            });
        }
        Ok(())
    }

    fn nominal_offsets(&self) -> Vec<CellOffsets> {
        vec![CellOffsets::NOMINAL; self.config.cells_per_row]
    }

    /// Runs one MAC with nominal (variation-free) cells through the full
    /// row transient.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::MismatchedOperands`] for wrong operand
    /// lengths, or propagates simulation failures.
    pub fn mac(
        &self,
        weights: &[bool],
        inputs: &[bool],
        temp: Celsius,
    ) -> Result<MacOutput, CimError> {
        self.mac_with_offsets(weights, inputs, temp, &self.nominal_offsets())
    }

    /// Runs one MAC through the full row transient with per-cell
    /// variation offsets (one Monte-Carlo draw).
    ///
    /// # Errors
    ///
    /// As [`CimArray::mac`]; additionally if `offsets` has the wrong
    /// length.
    pub fn mac_with_offsets(
        &self,
        weights: &[bool],
        inputs: &[bool],
        temp: Celsius,
        offsets: &[CellOffsets],
    ) -> Result<MacOutput, CimError> {
        self.check_operands(weights, inputs)?;
        if offsets.len() != self.config.cells_per_row {
            return Err(CimError::MismatchedOperands {
                weights: offsets.len(),
                inputs: inputs.len(),
                cells_per_row: self.config.cells_per_row,
            });
        }
        let n = self.config.cells_per_row;
        let bias = self.cell.bias();
        let mut ckt = Circuit::new();
        let bl = ckt.node("bl");
        let sl = ckt.node("sl");
        let acc = ckt.node("acc");
        ckt.add(Element::vdc("VBL", bl, NodeId::GROUND, bias.v_bl))?;
        ckt.add(Element::vdc("VSL", sl, NodeId::GROUND, bias.v_sl))?;
        // All output capacitors reference the source line, so every cell
        // output starts the MAC precharged to V_SL (zero differential) —
        // the off-cell M1 then idles at V_GS ≈ 0 instead of leaking.
        ckt.add(Element::Capacitor {
            name: "CACC".into(),
            a: acc,
            b: sl,
            capacitance: self.config.c_acc,
            initial: Some(Volt::ZERO),
        })?;
        let mut outs = Vec::with_capacity(n);
        for i in 0..n {
            let wl = ckt.node(&format!("wl{i}"));
            let out = ckt.node(&format!("out{i}"));
            outs.push(out);
            // Word lines are asserted only during the charge phase; at
            // t_charge they drop back to the off level so the cells stop
            // driving and the share phase is a pure charge
            // redistribution (Eq. (1)).
            ckt.add(Element::vsource(
                format!("VWL{i}"),
                wl,
                NodeId::GROUND,
                Waveform::step(bias.wl_for(inputs[i]), bias.v_wl_off, self.config.t_charge),
            ))?;
            ckt.add(Element::Capacitor {
                name: format!("CO{i}"),
                a: out,
                b: sl,
                capacitance: self.config.c_o,
                initial: Some(Volt::ZERO),
            })?;
            ckt.add(Element::switch(
                format!("EN{i}"),
                out,
                acc,
                SwitchSchedule::open()
                    .then_at(self.config.t_charge + self.config.t_settle, true),
            ))?;
            let ctx = CellContext {
                index: i,
                bl,
                sl,
                wl,
                out,
                weight: crate::cells::CellWeight::Bit(weights[i]),
                offsets: &offsets[i],
            };
            self.cell.build_cell(&mut ckt, &ctx)?;
        }
        let t_stop = self.config.latency();
        let result = TransientAnalysis::new(&ckt, self.config.dt, t_stop)
            .at(temp)
            .run()?;
        // Cell voltages at the end of the charge phase (the sample
        // closest to t_charge from below).
        let times = result.times();
        let charge_idx = times
            .iter()
            .rposition(|t| t.value() <= self.config.t_charge.value() + 1e-15)
            .unwrap_or(times.len() - 1);
        // All outputs are reported differentially against the source
        // line, which is what the sense circuit compares to.
        let v_sl = bias.v_sl.value();
        let cell_voltages: Vec<Volt> = outs
            .iter()
            .map(|&o| Volt(result.voltage_at(o, charge_idx).value() - v_sl))
            .collect();
        let expected = weights
            .iter()
            .zip(inputs)
            .filter(|(w, x)| **w && **x)
            .count();
        Ok(MacOutput {
            v_acc: Volt(result.final_voltage(acc).value() - v_sl),
            cell_voltages,
            energy: result.total_energy_delivered(),
            latency: t_stop,
            expected,
        })
    }

    /// Fast MAC evaluation: each cell is simulated in its own small
    /// transient (deduplicated by operand/offset pattern), then the
    /// charge-sharing step is applied in closed form (Eq. (1)).
    ///
    /// Energies are the summed per-cell supply energies; the share phase
    /// is lossless in the ideal-switch limit and contributes none.
    ///
    /// # Errors
    ///
    /// As [`CimArray::mac_with_offsets`].
    pub fn mac_analytic(
        &self,
        weights: &[bool],
        inputs: &[bool],
        temp: Celsius,
        offsets: &[CellOffsets],
    ) -> Result<MacOutput, CimError> {
        self.check_operands(weights, inputs)?;
        let weighted: Vec<CellWeight> = weights.iter().map(|&w| CellWeight::Bit(w)).collect();
        self.mac_analytic_weighted(&weighted, inputs, temp, offsets)
    }

    /// [`CimArray::mac_analytic`] generalized to analog (multi-level)
    /// stored weights — the multi-bit-per-cell extension in the spirit
    /// of the cited 1FeFET multi-bit MAC design.
    ///
    /// The digital ground truth (`expected`) counts a weight as '1'
    /// when its polarization is positive; multi-level users should
    /// interpret `v_acc` directly.
    ///
    /// # Errors
    ///
    /// As [`CimArray::mac_with_offsets`].
    pub fn mac_analytic_weighted(
        &self,
        weights: &[CellWeight],
        inputs: &[bool],
        temp: Celsius,
        offsets: &[CellOffsets],
    ) -> Result<MacOutput, CimError> {
        if weights.len() != self.config.cells_per_row
            || inputs.len() != self.config.cells_per_row
            || offsets.len() != self.config.cells_per_row
        {
            return Err(CimError::MismatchedOperands {
                weights: weights.len(),
                inputs: inputs.len(),
                cells_per_row: self.config.cells_per_row,
            });
        }
        let n = self.config.cells_per_row;
        let mut cell_voltages = Vec::with_capacity(n);
        let mut energy = 0.0;
        // Dedupe identical (weight, input, offsets) cells.
        type CellKey = (CellWeight, bool, CellOffsets);
        let mut cache: Vec<(CellKey, (f64, f64))> = Vec::new();
        for i in 0..n {
            let key = (weights[i], inputs[i], offsets[i]);
            let hit = cache
                .iter()
                .find(|(k, _)| {
                    k.0 == key.0
                        && k.1 == key.1
                        && k.2.fefet == key.2.fefet
                        && k.2.m1 == key.2.m1
                        && k.2.m2 == key.2.m2
                })
                .map(|(_, v)| *v);
            let (v_o, e) = match hit {
                Some(v) => v,
                None => {
                    let r = self.single_cell_charge_weighted(
                        weights[i],
                        inputs[i],
                        temp,
                        &offsets[i],
                    )?;
                    cache.push((key, r));
                    r
                }
            };
            cell_voltages.push(Volt(v_o));
            energy += e;
        }
        let v_sum: f64 = cell_voltages.iter().map(|v| v.value()).sum();
        let v_acc = self.config.sharing_gain() * v_sum;
        let expected = weights
            .iter()
            .zip(inputs)
            .filter(|(w, x)| w.bit() && **x)
            .count();
        Ok(MacOutput {
            v_acc: Volt(v_acc),
            cell_voltages,
            energy: Joule(energy),
            latency: self.config.latency(),
            expected,
        })
    }

    /// The nominal analog output level for every MAC value `0..=n` at a
    /// temperature: two cell transients (product-1 and product-0) plus
    /// the closed-form Eq. (1). This is the fast path behind
    /// [`crate::metrics::RangeTable::measure`] and the array tuner.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn level_voltages(&self, temp: Celsius) -> Result<Vec<Volt>, CimError> {
        let n = self.config.cells_per_row;
        let (v_on, _) = self.single_cell_charge(true, true, temp, &CellOffsets::NOMINAL)?;
        let (v_off, _) = self.single_cell_charge(true, false, temp, &CellOffsets::NOMINAL)?;
        let gain = self.config.sharing_gain();
        Ok((0..=n)
            .map(|k| Volt(gain * (k as f64 * v_on + (n - k) as f64 * v_off)))
            .collect())
    }

    /// Estimates the per-cell output-voltage standard deviations
    /// `(σ_on, σ_off)` induced by device variation, by first-order
    /// finite differences over each offset axis (FeFET, M1, M2) at its
    /// ±1σ points.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn cell_sigma(
        &self,
        temp: Celsius,
        variation: &ferrocim_device::variation::VariationModel,
    ) -> Result<(Volt, Volt), CimError> {
        let axes = [
            CellOffsets {
                fefet: variation.sigma_vt,
                ..CellOffsets::NOMINAL
            },
            CellOffsets {
                m1: variation.sigma_vt_mosfet,
                ..CellOffsets::NOMINAL
            },
            CellOffsets {
                m2: variation.sigma_vt_mosfet,
                ..CellOffsets::NOMINAL
            },
        ];
        let mut var = [0.0f64; 2];
        for (slot, &on) in [true, false].iter().enumerate() {
            for plus in &axes {
                let minus = CellOffsets {
                    fefet: -plus.fefet,
                    m1: -plus.m1,
                    m2: -plus.m2,
                };
                let (vp, _) = self.single_cell_charge(true, on, temp, plus)?;
                let (vm, _) = self.single_cell_charge(true, on, temp, &minus)?;
                let delta = 0.5 * (vp - vm);
                var[slot] += delta * delta;
            }
        }
        Ok((Volt(var[0].sqrt()), Volt(var[1].sqrt())))
    }

    /// Simulates one cell charging its `C_o` for `t_charge`; returns the
    /// final cell voltage and the supply energy.
    fn single_cell_charge(
        &self,
        weight: bool,
        input: bool,
        temp: Celsius,
        offsets: &CellOffsets,
    ) -> Result<(f64, f64), CimError> {
        self.single_cell_charge_weighted(CellWeight::Bit(weight), input, temp, offsets)
    }

    /// [`CimArray::single_cell_charge`] for an arbitrary stored weight.
    fn single_cell_charge_weighted(
        &self,
        weight: CellWeight,
        input: bool,
        temp: Celsius,
        offsets: &CellOffsets,
    ) -> Result<(f64, f64), CimError> {
        let bias = self.cell.bias();
        let mut ckt = Circuit::new();
        let bl = ckt.node("bl");
        let sl = ckt.node("sl");
        let wl = ckt.node("wl");
        let out = ckt.node("out");
        ckt.add(Element::vdc("VBL", bl, NodeId::GROUND, bias.v_bl))?;
        ckt.add(Element::vdc("VSL", sl, NodeId::GROUND, bias.v_sl))?;
        ckt.add(Element::vdc("VWL", wl, NodeId::GROUND, bias.wl_for(input)))?;
        ckt.add(Element::Capacitor {
            name: "CO".into(),
            a: out,
            b: sl,
            capacitance: self.config.c_o,
            initial: Some(Volt::ZERO),
        })?;
        let ctx = CellContext {
            index: 0,
            bl,
            sl,
            wl,
            out,
            weight,
            offsets,
        };
        self.cell.build_cell(&mut ckt, &ctx)?;
        let result = TransientAnalysis::new(&ckt, self.config.dt, self.config.t_charge)
            .at(temp)
            .run()?;
        Ok((
            result.final_voltage(out).value() - bias.v_sl.value(),
            result.total_energy_delivered().value(),
        ))
    }
}

/// Builds the all-ones weight vector and an input vector with `k` active
/// bits — the operand pattern used to exercise `MAC = k`.
pub fn mac_operands(cells_per_row: usize, k: usize) -> (Vec<bool>, Vec<bool>) {
    assert!(k <= cells_per_row, "cannot activate {k} of {cells_per_row} cells");
    let weights = vec![true; cells_per_row];
    let inputs = (0..cells_per_row).map(|i| i < k).collect();
    (weights, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::TwoTransistorOneFefet;

    const ROOM: Celsius = Celsius(27.0);

    fn small_array() -> CimArray<TwoTransistorOneFefet> {
        // 4 cells and a coarser timestep keep unit tests quick; the full
        // 8-cell row is exercised in the integration tests and benches.
        let config = ArrayConfig {
            cells_per_row: 4,
            dt: Second(50e-12),
            ..ArrayConfig::paper_default()
        };
        CimArray::new(TwoTransistorOneFefet::paper_default(), config).unwrap()
    }

    #[test]
    fn sharing_gain_matches_equation_one() {
        let c = ArrayConfig::paper_default();
        let expected = 1e-15 / (8.0 * 1e-15 + 8e-15);
        assert!((c.sharing_gain() - expected).abs() < 1e-18);
    }

    #[test]
    fn config_validation() {
        let mut c = ArrayConfig::paper_default();
        c.cells_per_row = 0;
        assert!(matches!(
            CimArray::new(TwoTransistorOneFefet::paper_default(), c),
            Err(CimError::InvalidConfig { name: "cells_per_row", .. })
        ));
        let mut c = ArrayConfig::paper_default();
        c.dt = Second(1e-8);
        assert!(CimArray::new(TwoTransistorOneFefet::paper_default(), c).is_err());
        let mut c = ArrayConfig::paper_default();
        c.c_o = Farad(-1.0);
        assert!(CimArray::new(TwoTransistorOneFefet::paper_default(), c).is_err());
    }

    #[test]
    fn operand_length_is_checked() {
        let array = small_array();
        let err = array.mac(&[true; 3], &[true; 4], ROOM).unwrap_err();
        assert!(matches!(err, CimError::MismatchedOperands { .. }));
    }

    #[test]
    fn mac_output_is_monotone_in_count() {
        let array = small_array();
        let mut last = -1.0;
        for k in 0..=4 {
            let (w, x) = mac_operands(4, k);
            let out = array
                .mac_analytic(&w, &x, ROOM, &[CellOffsets::NOMINAL; 4])
                .unwrap();
            assert_eq!(out.expected, k);
            assert!(
                out.v_acc.value() > last,
                "V_acc must grow with MAC count: k={k}, v={}",
                out.v_acc.value()
            );
            last = out.v_acc.value();
        }
    }

    #[test]
    fn zero_mac_output_is_near_zero() {
        let array = small_array();
        let (w, x) = mac_operands(4, 0);
        let out = array
            .mac_analytic(&w, &x, ROOM, &[CellOffsets::NOMINAL; 4])
            .unwrap();
        let full = array
            .mac_analytic(&mac_operands(4, 4).0, &mac_operands(4, 4).1, ROOM, &[CellOffsets::NOMINAL; 4])
            .unwrap();
        assert!(
            out.v_acc.value() < 0.05 * full.v_acc.value(),
            "MAC=0 output {} vs full {}",
            out.v_acc.value(),
            full.v_acc.value()
        );
    }

    #[test]
    fn transient_and_analytic_agree() {
        let array = small_array();
        let (w, x) = mac_operands(4, 2);
        let offsets = [CellOffsets::NOMINAL; 4];
        let fast = array.mac_analytic(&w, &x, ROOM, &offsets).unwrap();
        let full = array.mac_with_offsets(&w, &x, ROOM, &offsets).unwrap();
        let rel = (fast.v_acc.value() - full.v_acc.value()).abs()
            / full.v_acc.value().max(1e-6);
        assert!(
            rel < 0.08,
            "analytic {} vs transient {} (rel {rel})",
            fast.v_acc.value(),
            full.v_acc.value()
        );
    }

    #[test]
    fn weights_gate_the_inputs() {
        // input '1' on a cell storing '0' must contribute ~nothing.
        let array = small_array();
        let out_gated = array
            .mac_analytic(
                &[false, false, false, false],
                &[true, true, true, true],
                ROOM,
                &[CellOffsets::NOMINAL; 4],
            )
            .unwrap();
        assert_eq!(out_gated.expected, 0);
        let (w, x) = mac_operands(4, 4);
        let out_full = array
            .mac_analytic(&w, &x, ROOM, &[CellOffsets::NOMINAL; 4])
            .unwrap();
        assert!(out_gated.v_acc.value() < 0.05 * out_full.v_acc.value());
    }

    #[test]
    fn energy_is_positive_and_fj_scale() {
        let array = small_array();
        let (w, x) = mac_operands(4, 4);
        let out = array
            .mac_with_offsets(&w, &x, ROOM, &[CellOffsets::NOMINAL; 4])
            .unwrap();
        let e = out.energy.value();
        assert!(e > 0.0, "energy {e}");
        assert!(e < 100e-15, "energy should be fJ-scale, got {e}");
    }

    #[test]
    fn mac_operands_pattern() {
        let (w, x) = mac_operands(8, 3);
        assert_eq!(w, vec![true; 8]);
        assert_eq!(x.iter().filter(|b| **b).count(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot activate")]
    fn mac_operands_rejects_excess() {
        let _ = mac_operands(4, 5);
    }
}
