//! The CIM array of Fig. 6: `n` cells per row, each charging its own
//! `C_o`, with an `EN`-switched shared accumulation capacitor `C_acc`.
//!
//! A MAC operation proceeds in two phases:
//!
//! 1. **Charge** (`t_charge`): each cell multiplies its stored weight by
//!    the word-line input and integrates the product current onto its
//!    cell capacitor `C_o`.
//! 2. **Share** (`t_share`): the `EN` switches close simultaneously and
//!    the cell charges redistribute onto `C_acc`, producing the
//!    accumulated output of the paper's Eq. (1):
//!
//!    ```text
//!    V_acc = C_o / (n·C_o + C_acc) · Σᵢ V_Oi
//!    ```
//!
//! Both a **full-transient** evaluation (the entire row simulated as one
//! netlist, used for energy measurements) and a fast **analytic**
//! evaluation (per-cell charge transients + the closed-form
//! charge-sharing step) are provided; they are cross-checked in the
//! integration tests.

use crate::cells::{CellContext, CellDesign, CellOffsets, CellWeight};
use crate::fault::CellFault;
use crate::CimError;
use ferrocim_spice::{
    Budget, Circuit, Element, HealthPolicy, NodeId, SolverConfig, SwitchSchedule,
    TransientAnalysis, Waveform, Workspace,
};
use ferrocim_telemetry::Telemetry;
use ferrocim_units::{Celsius, Farad, Joule, Ohm, Second, Volt};
use serde::{Deserialize, Serialize};

/// Residual resistance of a [`CellFault::ShortDevice`] path from the
/// bit line to the cell output — low enough to saturate `C_o` within
/// any realistic charge phase.
const SHORT_RESISTANCE: Ohm = Ohm(1e5);

/// Geometry and timing of a CIM row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Cells per row (the paper uses 8).
    pub cells_per_row: usize,
    /// Per-cell output capacitor `C_o`.
    pub c_o: Farad,
    /// Shared accumulation capacitor `C_acc`.
    pub c_acc: Farad,
    /// Duration of the charge phase.
    pub t_charge: Second,
    /// Dead time between word-line deassertion and `EN` closing, letting
    /// the cells' internal nodes discharge so the share phase is a pure
    /// charge redistribution (Eq. (1)).
    pub t_settle: Second,
    /// Duration of the charge-sharing phase.
    pub t_share: Second,
    /// Transient timestep.
    pub dt: Second,
}

impl ArrayConfig {
    /// The paper's row: 8 cells, with capacitors and timing sized for
    /// the 6.9 ns MAC latency and fJ-scale operation energy.
    pub fn paper_default() -> Self {
        ArrayConfig {
            cells_per_row: 8,
            c_o: Farad(1e-15),
            c_acc: Farad(8e-15),
            t_charge: Second(5.0e-9),
            t_settle: Second(0.4e-9),
            t_share: Second(1.5e-9),
            dt: Second(20e-12),
        }
    }

    /// Total MAC latency (`t_charge + t_settle + t_share`) — 6.9 ns for
    /// the paper default, matching the reported MAC latency.
    pub fn latency(&self) -> Second {
        self.t_charge + self.t_settle + self.t_share
    }

    /// The charge-sharing gain `C_o / (n·C_o + C_acc)` of Eq. (1).
    pub fn sharing_gain(&self) -> f64 {
        self.c_o.value() / (self.cells_per_row as f64 * self.c_o.value() + self.c_acc.value())
    }

    fn validate(&self) -> Result<(), CimError> {
        fn positive(name: &'static str, value: f64) -> Result<(), CimError> {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(CimError::InvalidConfig {
                    name,
                    value,
                    requirement: "positive and finite",
                })
            }
        }
        if self.cells_per_row == 0 {
            return Err(CimError::InvalidConfig {
                name: "cells_per_row",
                value: 0.0,
                requirement: "at least 1",
            });
        }
        positive("c_o", self.c_o.value())?;
        positive("c_acc", self.c_acc.value())?;
        positive("t_charge", self.t_charge.value())?;
        positive("t_share", self.t_share.value())?;
        if !(self.t_settle.value().is_finite() && self.t_settle.value() >= 0.0) {
            return Err(CimError::InvalidConfig {
                name: "t_settle",
                value: self.t_settle.value(),
                requirement: "non-negative and finite",
            });
        }
        positive("dt", self.dt.value())?;
        if self.dt.value() > self.t_share.value() || self.dt.value() > self.t_charge.value() {
            return Err(CimError::InvalidConfig {
                name: "dt",
                value: self.dt.value(),
                requirement: "smaller than both phases",
            });
        }
        Ok(())
    }
}

/// The result of one MAC operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MacOutput {
    /// The accumulated analog output voltage on `C_acc`.
    pub v_acc: Volt,
    /// Per-cell `C_o` voltages at the end of the charge phase.
    pub cell_voltages: Vec<Volt>,
    /// Total energy delivered by all supplies over the operation.
    pub energy: Joule,
    /// The operation latency.
    pub latency: Second,
    /// The digital ground truth `Σ wᵢ·xᵢ`.
    pub expected: usize,
}

impl MacOutput {
    /// Energy efficiency in TOPS/W, using the paper's operation count of
    /// `n` multiplications + 1 accumulation per row MAC.
    pub fn tops_per_watt(&self, cells_per_row: usize) -> f64 {
        self.energy.tops_per_watt(cells_per_row as f64 + 1.0)
    }
}

/// Which evaluation path executes a [`MacRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MacPath {
    /// The entire row simulated as one transient netlist — the
    /// energy-accurate reference path, and the default.
    #[default]
    Transient,
    /// Per-cell charge transients (deduplicated by operand/offset
    /// pattern) plus the closed-form Eq. (1) charge-sharing step — the
    /// fast path used by sweeps, tuning, and neural-network evaluation.
    Analytic,
}

/// A declarative MAC operation: operands, conditions, and evaluation
/// path, executed by [`CimArray::run`].
///
/// This is the single MAC entry point (the four historical methods
/// `mac` / `mac_with_offsets` / `mac_analytic` / `mac_analytic_weighted`
/// it once shimmed have been removed). Build a request from the input
/// vector, then chain whatever deviates from the defaults (room temperature, nominal
/// devices, transient path, all-ones weights are *not* defaulted —
/// weights must always be supplied):
///
/// ```
/// use ferrocim_cim::cells::TwoTransistorOneFefet;
/// use ferrocim_cim::{ArrayConfig, CimArray, MacPath, MacRequest};
/// use ferrocim_units::Celsius;
///
/// # fn main() -> Result<(), ferrocim_cim::CimError> {
/// let config = ArrayConfig { cells_per_row: 2, ..ArrayConfig::paper_default() };
/// let array = CimArray::new(TwoTransistorOneFefet::paper_default(), config)?;
/// let request = MacRequest::new(&[true, false])
///     .weights(&[true, true])
///     .at(Celsius(85.0))
///     .path(MacPath::Analytic);
/// let out = array.run(&request)?;
/// assert_eq!(out.expected, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MacRequest {
    inputs: Vec<bool>,
    weights: Vec<CellWeight>,
    temp: Celsius,
    offsets: Option<Vec<CellOffsets>>,
    path: MacPath,
}

impl MacRequest {
    /// Starts a request from the word-line input vector. Weights start
    /// empty and must be set via [`MacRequest::weights`] or
    /// [`MacRequest::weighted`] before [`CimArray::run`] accepts the
    /// request.
    pub fn new(inputs: &[bool]) -> Self {
        MacRequest {
            inputs: inputs.to_vec(),
            weights: Vec::new(),
            temp: Celsius::ROOM,
            offsets: None,
            path: MacPath::default(),
        }
    }

    /// Sets binary stored weights.
    pub fn weights(mut self, weights: &[bool]) -> Self {
        self.weights = weights.iter().map(|&b| CellWeight::Bit(b)).collect();
        self
    }

    /// Sets multi-level stored weights.
    pub fn weighted(mut self, weights: &[CellWeight]) -> Self {
        self.weights = weights.to_vec();
        self
    }

    /// Sets per-cell variation offsets (one Monte-Carlo draw). Without
    /// this, cells are nominal.
    pub fn offsets(mut self, offsets: &[CellOffsets]) -> Self {
        self.offsets = Some(offsets.to_vec());
        self
    }

    /// Sets the simulation temperature (default 27 °C).
    pub fn at(mut self, temp: Celsius) -> Self {
        self.temp = temp;
        self
    }

    /// Selects the evaluation path (default [`MacPath::Transient`]).
    pub fn path(mut self, path: MacPath) -> Self {
        self.path = path;
        self
    }

    /// The word-line input vector.
    pub fn inputs(&self) -> &[bool] {
        &self.inputs
    }

    /// The stored weights.
    pub fn cell_weights(&self) -> &[CellWeight] {
        &self.weights
    }

    /// The simulation temperature.
    pub fn temperature(&self) -> Celsius {
        self.temp
    }

    /// The per-cell offsets, if any were set.
    pub fn cell_offsets(&self) -> Option<&[CellOffsets]> {
        self.offsets.as_deref()
    }

    /// The selected evaluation path.
    pub fn mac_path(&self) -> MacPath {
        self.path
    }
}

/// A single row of a CIM array built from any [`CellDesign`].
#[derive(Debug, Clone)]
pub struct CimArray<C> {
    cell: C,
    config: ArrayConfig,
    /// Per-column injected hardware faults (all `None` by default).
    faults: Vec<Option<CellFault>>,
    /// Resource budget threaded into every underlying transient solve.
    budget: Budget,
    /// Telemetry handle threaded into every underlying solve.
    telemetry: Telemetry,
    /// Linear-solver selection for every workspace this array creates.
    solver: SolverConfig,
    /// Numerical-health policy threaded into every underlying solve.
    health: HealthPolicy,
}

impl<C: CellDesign> CimArray<C> {
    /// Creates an array after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::InvalidConfig`] for non-physical geometry or
    /// timing values.
    pub fn new(cell: C, config: ArrayConfig) -> Result<Self, CimError> {
        config.validate()?;
        let faults = vec![None; config.cells_per_row];
        Ok(CimArray {
            cell,
            config,
            faults,
            budget: Budget::unlimited(),
            telemetry: Telemetry::off(),
            solver: SolverConfig::auto(),
            health: HealthPolicy::default(),
        })
    }

    /// Attaches a resource [`Budget`]: every underlying transient solve
    /// charges Newton iterations and time steps against it, so a
    /// deadline or cancellation aborts a MAC mid-solve with a typed
    /// [`ferrocim_spice::SpiceError`] wrapped in [`CimError::Spice`].
    /// Clones of the budget share one spend pool, so the same budget
    /// can govern a whole fleet of arrays and engines.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The attached resource budget (unlimited by default).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Attaches a telemetry handle: every underlying transient solve
    /// reports its Newton iterations and accepted steps through it, and
    /// batch layers built on this array additionally emit
    /// [`ferrocim_telemetry::Event::MacIssued`] per batch. The default handle is off and
    /// adds no measurable cost.
    pub fn with_recorder(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle (off by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Selects the linear-solver backend (see
    /// [`ferrocim_spice::SolverConfig`]) for every workspace this array
    /// allocates. The default is [`SolverConfig::auto`], which keeps
    /// the paper's 8-cell rows on the dense path and switches wide rows
    /// (hundreds of cells, VGG-scale layers) to the sparse KLU-style
    /// backend. Batch layers built on this array inherit the choice.
    pub fn with_solver(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }

    /// The configured linear-solver selection.
    pub fn solver_config(&self) -> SolverConfig {
        self.solver
    }

    /// Overrides the numerical-health policy (see
    /// [`ferrocim_spice::HealthPolicy`]): per-solve residual
    /// certification, bounded iterative refinement, and the solver
    /// degradation ladder. The default policy is on; batch layers
    /// built on this array inherit the choice.
    pub fn with_health(mut self, health: HealthPolicy) -> Self {
        self.health = health;
        self
    }

    /// The configured numerical-health policy.
    pub fn health_policy(&self) -> HealthPolicy {
        self.health
    }

    /// Installs per-column hardware faults (one entry per cell; `None`
    /// = healthy). Faults apply to every MAC path: stuck-at faults
    /// override the stored weight, a dead word line forces the input
    /// off, and open/short faults rewrite the cell's devices. The
    /// digital ground truth (`expected`) is still computed from the
    /// *requested* operands, so faulted outputs can be scored against
    /// the intent.
    ///
    /// # Errors
    ///
    /// [`CimError::MismatchedOperands`] when `faults` does not have one
    /// entry per cell.
    pub fn with_faults(mut self, faults: &[Option<CellFault>]) -> Result<Self, CimError> {
        if faults.len() != self.config.cells_per_row {
            return Err(CimError::MismatchedOperands {
                weights: faults.len(),
                inputs: faults.len(),
                cells_per_row: self.config.cells_per_row,
            });
        }
        self.faults = faults.to_vec();
        Ok(self)
    }

    /// The installed per-column faults.
    pub fn faults(&self) -> &[Option<CellFault>] {
        &self.faults
    }

    /// True when at least one cell has an injected fault.
    pub fn has_faults(&self) -> bool {
        self.faults.iter().any(|f| f.is_some())
    }

    /// The weight cell `i` effectively stores, after stuck-at faults.
    fn effective_weight(&self, i: usize, weight: CellWeight) -> CellWeight {
        match self.faults[i] {
            Some(CellFault::StuckAtLvt) => CellWeight::Bit(true),
            Some(CellFault::StuckAtHvt) => CellWeight::Bit(false),
            _ => weight,
        }
    }

    /// The input cell `i` effectively sees, after dead-wordline faults.
    fn effective_input(&self, i: usize, input: bool) -> bool {
        match self.faults[i] {
            Some(CellFault::DeadWordline) => false,
            _ => input,
        }
    }

    /// The cell design.
    pub fn cell(&self) -> &C {
        &self.cell
    }

    /// The array configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    fn check_operands(&self, weights: &[bool], inputs: &[bool]) -> Result<(), CimError> {
        if weights.len() != self.config.cells_per_row || inputs.len() != self.config.cells_per_row {
            return Err(CimError::MismatchedOperands {
                weights: weights.len(),
                inputs: inputs.len(),
                cells_per_row: self.config.cells_per_row,
            });
        }
        Ok(())
    }

    fn nominal_offsets(&self) -> Vec<CellOffsets> {
        vec![CellOffsets::NOMINAL; self.config.cells_per_row]
    }

    /// Executes one MAC described by a [`MacRequest`].
    ///
    /// # Errors
    ///
    /// Returns [`CimError::MismatchedOperands`] when the request's
    /// weights, inputs, or offsets do not match the row width, or
    /// propagates simulation failures.
    pub fn run(&self, request: &MacRequest) -> Result<MacOutput, CimError> {
        self.run_in(request, &mut Workspace::with_solver(self.solver))
    }

    /// [`CimArray::run`] with a caller-owned solver [`Workspace`], so
    /// batched callers skip the per-operation solver allocations. The
    /// result is bitwise identical to [`CimArray::run`].
    ///
    /// # Errors
    ///
    /// As [`CimArray::run`].
    pub fn run_in(&self, request: &MacRequest, ws: &mut Workspace) -> Result<MacOutput, CimError> {
        let n = self.config.cells_per_row;
        if request.weights.len() != n
            || request.inputs.len() != n
            || request.offsets.as_ref().is_some_and(|o| o.len() != n)
        {
            return Err(CimError::MismatchedOperands {
                weights: request.weights.len(),
                inputs: request.inputs.len(),
                cells_per_row: n,
            });
        }
        let nominal;
        let offsets: &[CellOffsets] = match &request.offsets {
            Some(o) => o,
            None => {
                nominal = self.nominal_offsets();
                &nominal
            }
        };
        match request.path {
            MacPath::Transient => {
                self.run_transient(&request.weights, &request.inputs, request.temp, offsets, ws)
            }
            MacPath::Analytic => {
                self.run_analytic(&request.weights, &request.inputs, request.temp, offsets, ws)
            }
        }
    }

    /// Builds the full-row MAC readout netlist with nominal
    /// (variation-free) cells and returns it together with the
    /// accumulation node and the readout duration. This is the same
    /// circuit the MAC entry points simulate, exposed so probes and
    /// benchmarks can run the readout transient under their own
    /// stepping or budget configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::MismatchedOperands`] when `weights` or
    /// `inputs` do not match the row width.
    pub fn readout_circuit(
        &self,
        weights: &[bool],
        inputs: &[bool],
    ) -> Result<(Circuit, NodeId, Second), CimError> {
        self.check_operands(weights, inputs)?;
        let weights: Vec<CellWeight> = weights.iter().map(|&b| CellWeight::Bit(b)).collect();
        let offsets = self.nominal_offsets();
        let (ckt, _outs, acc) = self.build_row_circuit(&weights, inputs, &offsets)?;
        Ok((ckt, acc, self.config.latency()))
    }

    /// Builds the full-row MAC netlist for the given weights/inputs and
    /// returns it with the per-cell output nodes and the accumulation
    /// node. The word-line sources are named `VWL{i}`, which is how
    /// [`crate::ArrayEngine`] retargets a built circuit to a new input
    /// vector without rebuilding the cells.
    pub(crate) fn build_row_circuit(
        &self,
        weights: &[CellWeight],
        inputs: &[bool],
        offsets: &[CellOffsets],
    ) -> Result<(Circuit, Vec<NodeId>, NodeId), CimError> {
        let n = self.config.cells_per_row;
        let bias = self.cell.bias();
        let mut ckt = Circuit::new();
        let bl = ckt.node("bl");
        let sl = ckt.node("sl");
        let acc = ckt.node("acc");
        ckt.add(Element::vdc("VBL", bl, NodeId::GROUND, bias.v_bl))?;
        ckt.add(Element::vdc("VSL", sl, NodeId::GROUND, bias.v_sl))?;
        // All output capacitors reference the source line, so every cell
        // output starts the MAC precharged to V_SL (zero differential) —
        // the off-cell M1 then idles at V_GS ≈ 0 instead of leaking.
        ckt.add(Element::Capacitor {
            name: "CACC".into(),
            a: acc,
            b: sl,
            capacitance: self.config.c_acc,
            initial: Some(Volt::ZERO),
        })?;
        let mut outs = Vec::with_capacity(n);
        for i in 0..n {
            let wl = ckt.node(&format!("wl{i}"));
            let out = ckt.node(&format!("out{i}"));
            outs.push(out);
            // Word lines are asserted only during the charge phase; at
            // t_charge they drop back to the off level so the cells stop
            // driving and the share phase is a pure charge
            // redistribution (Eq. (1)).
            ckt.add(Element::vsource(
                format!("VWL{i}"),
                wl,
                NodeId::GROUND,
                Waveform::step(
                    bias.wl_for(self.effective_input(i, inputs[i])),
                    bias.v_wl_off,
                    self.config.t_charge,
                ),
            ))?;
            ckt.add(Element::Capacitor {
                name: format!("CO{i}"),
                a: out,
                b: sl,
                capacitance: self.config.c_o,
                initial: Some(Volt::ZERO),
            })?;
            ckt.add(Element::switch(
                format!("EN{i}"),
                out,
                acc,
                SwitchSchedule::open().then_at(self.config.t_charge + self.config.t_settle, true),
            ))?;
            match self.faults[i] {
                // The cell's devices never connect: only CO and EN remain.
                Some(CellFault::OpenDevice) => {}
                // A damaged device ties the output to the bit line
                // through a residual resistance instead of the cell.
                Some(CellFault::ShortDevice) => {
                    ckt.add(Element::resistor(
                        format!("FAULT{i}"),
                        bl,
                        out,
                        SHORT_RESISTANCE,
                    ))?;
                }
                _ => {
                    let ctx = CellContext {
                        index: i,
                        bl,
                        sl,
                        wl,
                        out,
                        weight: self.effective_weight(i, weights[i]),
                        offsets: &offsets[i],
                    };
                    self.cell.build_cell(&mut ckt, &ctx)?;
                }
            }
        }
        Ok((ckt, outs, acc))
    }

    /// Retargets a circuit built by [`CimArray::build_row_circuit`] to a
    /// new input vector by rewriting the `VWL{i}` waveforms in place.
    pub(crate) fn retarget_inputs(
        &self,
        ckt: &mut Circuit,
        inputs: &[bool],
    ) -> Result<(), CimError> {
        let bias = self.cell.bias();
        for (i, &input) in inputs.iter().enumerate() {
            match ckt.element_mut(&format!("VWL{i}")) {
                Some(Element::VoltageSource { waveform, .. }) => {
                    *waveform = Waveform::step(
                        bias.wl_for(self.effective_input(i, input)),
                        bias.v_wl_off,
                        self.config.t_charge,
                    );
                }
                _ => {
                    return Err(CimError::InvalidConfig {
                        name: "inputs",
                        value: i as f64,
                        requirement: "a circuit built by build_row_circuit",
                    })
                }
            }
        }
        Ok(())
    }

    /// Runs the full-row transient on a built circuit and packs the
    /// result. Split from [`CimArray::run_transient`] so the batch
    /// engine can reuse one circuit across jobs.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn eval_row_transient(
        &self,
        ckt: &Circuit,
        outs: &[NodeId],
        acc: NodeId,
        weights: &[CellWeight],
        inputs: &[bool],
        temp: Celsius,
        budget: &Budget,
        tele: &Telemetry,
        ws: &mut Workspace,
    ) -> Result<MacOutput, CimError> {
        let t_stop = self.config.latency();
        let result = TransientAnalysis::over(ckt, t_stop)
            .with_fixed_step(self.config.dt)
            .at(temp)
            .with_budget(budget.clone())
            .with_recorder(tele.clone())
            .with_health(self.health)
            .run_in(ws)?;
        // Cell voltages at the end of the charge phase (the sample
        // closest to t_charge from below).
        let times = result.times();
        let charge_idx = times
            .iter()
            .rposition(|t| t.value() <= self.config.t_charge.value() + 1e-15)
            .unwrap_or(times.len() - 1);
        // All outputs are reported differentially against the source
        // line, which is what the sense circuit compares to.
        let v_sl = self.cell.bias().v_sl.value();
        let cell_voltages: Vec<Volt> = outs
            .iter()
            .map(|&o| Volt(result.voltage_at(o, charge_idx).value() - v_sl))
            .collect();
        Ok(MacOutput {
            v_acc: Volt(result.final_voltage(acc).value() - v_sl),
            cell_voltages,
            energy: result.total_energy_delivered(),
            latency: t_stop,
            expected: expected_count(weights, inputs),
        })
    }

    /// The full-row transient path behind [`MacPath::Transient`].
    fn run_transient(
        &self,
        weights: &[CellWeight],
        inputs: &[bool],
        temp: Celsius,
        offsets: &[CellOffsets],
        ws: &mut Workspace,
    ) -> Result<MacOutput, CimError> {
        let (ckt, outs, acc) = self.build_row_circuit(weights, inputs, offsets)?;
        self.eval_row_transient(
            &ckt,
            &outs,
            acc,
            weights,
            inputs,
            temp,
            &self.budget,
            &self.telemetry,
            ws,
        )
    }

    /// The fast path behind [`MacPath::Analytic`]: each cell is
    /// simulated in its own small transient (deduplicated by
    /// operand/offset pattern), then the charge-sharing step is applied
    /// in closed form (Eq. (1)).
    ///
    /// Energies are the summed per-cell supply energies; the share phase
    /// is lossless in the ideal-switch limit and contributes none.
    fn run_analytic(
        &self,
        weights: &[CellWeight],
        inputs: &[bool],
        temp: Celsius,
        offsets: &[CellOffsets],
        ws: &mut Workspace,
    ) -> Result<MacOutput, CimError> {
        let n = self.config.cells_per_row;
        let mut cell_voltages = Vec::with_capacity(n);
        let mut energy = 0.0;
        // Dedupe identical (weight, input, offsets) cells.
        type CellKey = (CellWeight, bool, CellOffsets);
        let mut cache: Vec<(CellKey, (f64, f64))> = Vec::new();
        let bias = self.cell.bias();
        for i in 0..n {
            // Open/short faults bypass the cell simulation entirely.
            match self.faults[i] {
                Some(CellFault::OpenDevice) => {
                    cell_voltages.push(Volt(0.0));
                    continue;
                }
                Some(CellFault::ShortDevice) => {
                    // The residual short charges C_o all the way to the
                    // bit line; the supply delivers ~C_o·ΔV² doing so.
                    let dv = bias.v_bl.value() - bias.v_sl.value();
                    cell_voltages.push(Volt(dv));
                    energy += self.config.c_o.value() * dv * dv;
                    continue;
                }
                _ => {}
            }
            let weight = self.effective_weight(i, weights[i]);
            let input = self.effective_input(i, inputs[i]);
            let key = (weight, input, offsets[i]);
            let hit = cache
                .iter()
                .find(|(k, _)| {
                    k.0 == key.0
                        && k.1 == key.1
                        && k.2.fefet == key.2.fefet
                        && k.2.m1 == key.2.m1
                        && k.2.m2 == key.2.m2
                })
                .map(|(_, v)| *v);
            let (v_o, e) = match hit {
                Some(v) => v,
                None => {
                    let r =
                        self.single_cell_charge_weighted(weight, input, temp, &offsets[i], ws)?;
                    cache.push((key, r));
                    r
                }
            };
            cell_voltages.push(Volt(v_o));
            energy += e;
        }
        let v_sum: f64 = cell_voltages.iter().map(|v| v.value()).sum();
        let v_acc = self.config.sharing_gain() * v_sum;
        Ok(MacOutput {
            v_acc: Volt(v_acc),
            cell_voltages,
            energy: Joule(energy),
            latency: self.config.latency(),
            expected: expected_count(weights, inputs),
        })
    }

    /// The nominal analog output level for every MAC value `0..=n` at a
    /// temperature: two cell transients (product-1 and product-0) plus
    /// the closed-form Eq. (1). This is the fast path behind
    /// [`crate::metrics::RangeTable::measure`] and the array tuner.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn level_voltages(&self, temp: Celsius) -> Result<Vec<Volt>, CimError> {
        let n = self.config.cells_per_row;
        let mut ws = Workspace::with_solver(self.solver);
        let (v_on, _) =
            self.single_cell_charge(true, true, temp, &CellOffsets::NOMINAL, &mut ws)?;
        let (v_off, _) =
            self.single_cell_charge(true, false, temp, &CellOffsets::NOMINAL, &mut ws)?;
        let gain = self.config.sharing_gain();
        Ok((0..=n)
            .map(|k| Volt(gain * (k as f64 * v_on + (n - k) as f64 * v_off)))
            .collect())
    }

    /// Estimates the per-cell output-voltage standard deviations
    /// `(σ_on, σ_off)` induced by device variation, by first-order
    /// finite differences over each offset axis (FeFET, M1, M2) at its
    /// ±1σ points.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn cell_sigma(
        &self,
        temp: Celsius,
        variation: &ferrocim_device::variation::VariationModel,
    ) -> Result<(Volt, Volt), CimError> {
        let axes = [
            CellOffsets {
                fefet: variation.sigma_vt,
                ..CellOffsets::NOMINAL
            },
            CellOffsets {
                m1: variation.sigma_vt_mosfet,
                ..CellOffsets::NOMINAL
            },
            CellOffsets {
                m2: variation.sigma_vt_mosfet,
                ..CellOffsets::NOMINAL
            },
        ];
        let mut var = [0.0f64; 2];
        let mut ws = Workspace::with_solver(self.solver);
        for (slot, &on) in [true, false].iter().enumerate() {
            for plus in &axes {
                let minus = CellOffsets {
                    fefet: -plus.fefet,
                    m1: -plus.m1,
                    m2: -plus.m2,
                };
                let (vp, _) = self.single_cell_charge(true, on, temp, plus, &mut ws)?;
                let (vm, _) = self.single_cell_charge(true, on, temp, &minus, &mut ws)?;
                let delta = 0.5 * (vp - vm);
                var[slot] += delta * delta;
            }
        }
        Ok((Volt(var[0].sqrt()), Volt(var[1].sqrt())))
    }

    /// Simulates one cell charging its `C_o` for `t_charge`; returns the
    /// final cell voltage and the supply energy.
    fn single_cell_charge(
        &self,
        weight: bool,
        input: bool,
        temp: Celsius,
        offsets: &CellOffsets,
        ws: &mut Workspace,
    ) -> Result<(f64, f64), CimError> {
        self.single_cell_charge_weighted(CellWeight::Bit(weight), input, temp, offsets, ws)
    }

    /// [`CimArray::single_cell_charge`] for an arbitrary stored weight.
    fn single_cell_charge_weighted(
        &self,
        weight: CellWeight,
        input: bool,
        temp: Celsius,
        offsets: &CellOffsets,
        ws: &mut Workspace,
    ) -> Result<(f64, f64), CimError> {
        let bias = self.cell.bias();
        let mut ckt = Circuit::new();
        let bl = ckt.node("bl");
        let sl = ckt.node("sl");
        let wl = ckt.node("wl");
        let out = ckt.node("out");
        ckt.add(Element::vdc("VBL", bl, NodeId::GROUND, bias.v_bl))?;
        ckt.add(Element::vdc("VSL", sl, NodeId::GROUND, bias.v_sl))?;
        ckt.add(Element::vdc("VWL", wl, NodeId::GROUND, bias.wl_for(input)))?;
        ckt.add(Element::Capacitor {
            name: "CO".into(),
            a: out,
            b: sl,
            capacitance: self.config.c_o,
            initial: Some(Volt::ZERO),
        })?;
        let ctx = CellContext {
            index: 0,
            bl,
            sl,
            wl,
            out,
            weight,
            offsets,
        };
        self.cell.build_cell(&mut ckt, &ctx)?;
        let result = TransientAnalysis::over(&ckt, self.config.t_charge)
            .with_fixed_step(self.config.dt)
            .at(temp)
            .with_budget(self.budget.clone())
            .with_recorder(self.telemetry.clone())
            .with_health(self.health)
            .run_in(ws)?;
        Ok((
            result.final_voltage(out).value() - bias.v_sl.value(),
            result.total_energy_delivered().value(),
        ))
    }
}

/// The digital ground truth `Σ wᵢ·xᵢ`, counting a weight as '1' when
/// its polarization is positive.
fn expected_count(weights: &[CellWeight], inputs: &[bool]) -> usize {
    weights
        .iter()
        .zip(inputs)
        .filter(|(w, x)| w.bit() && **x)
        .count()
}

/// Builds the all-ones weight vector and an input vector with `k` active
/// bits — the operand pattern used to exercise `MAC = k`.
pub fn mac_operands(cells_per_row: usize, k: usize) -> (Vec<bool>, Vec<bool>) {
    assert!(
        k <= cells_per_row,
        "cannot activate {k} of {cells_per_row} cells"
    );
    let weights = vec![true; cells_per_row];
    let inputs = (0..cells_per_row).map(|i| i < k).collect();
    (weights, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::TwoTransistorOneFefet;

    const ROOM: Celsius = Celsius(27.0);

    fn small_array() -> CimArray<TwoTransistorOneFefet> {
        // 4 cells and a coarser timestep keep unit tests quick; the full
        // 8-cell row is exercised in the integration tests and benches.
        let config = ArrayConfig {
            cells_per_row: 4,
            dt: Second(50e-12),
            ..ArrayConfig::paper_default()
        };
        CimArray::new(TwoTransistorOneFefet::paper_default(), config).unwrap()
    }

    #[test]
    fn sharing_gain_matches_equation_one() {
        let c = ArrayConfig::paper_default();
        let expected = 1e-15 / (8.0 * 1e-15 + 8e-15);
        assert!((c.sharing_gain() - expected).abs() < 1e-18);
    }

    #[test]
    fn config_validation() {
        let mut c = ArrayConfig::paper_default();
        c.cells_per_row = 0;
        assert!(matches!(
            CimArray::new(TwoTransistorOneFefet::paper_default(), c),
            Err(CimError::InvalidConfig {
                name: "cells_per_row",
                ..
            })
        ));
        let mut c = ArrayConfig::paper_default();
        c.dt = Second(1e-8);
        assert!(CimArray::new(TwoTransistorOneFefet::paper_default(), c).is_err());
        let mut c = ArrayConfig::paper_default();
        c.c_o = Farad(-1.0);
        assert!(CimArray::new(TwoTransistorOneFefet::paper_default(), c).is_err());
    }

    fn analytic(inputs: &[bool], weights: &[bool]) -> MacRequest {
        MacRequest::new(inputs)
            .weights(weights)
            .at(ROOM)
            .path(MacPath::Analytic)
    }

    #[test]
    fn operand_length_is_checked() {
        let array = small_array();
        let err = array
            .run(&MacRequest::new(&[true; 4]).weights(&[true; 3]).at(ROOM))
            .unwrap_err();
        assert!(matches!(err, CimError::MismatchedOperands { .. }));
        // A request with no weights at all is rejected, not defaulted.
        let err = array.run(&MacRequest::new(&[true; 4])).unwrap_err();
        assert!(matches!(err, CimError::MismatchedOperands { .. }));
        // Wrong offsets length too.
        let err = array
            .run(
                &MacRequest::new(&[true; 4])
                    .weights(&[true; 4])
                    .offsets(&[CellOffsets::NOMINAL; 3]),
            )
            .unwrap_err();
        assert!(matches!(err, CimError::MismatchedOperands { .. }));
    }

    #[test]
    fn mac_output_is_monotone_in_count() {
        let array = small_array();
        let mut last = -1.0;
        for k in 0..=4 {
            let (w, x) = mac_operands(4, k);
            let out = array.run(&analytic(&x, &w)).unwrap();
            assert_eq!(out.expected, k);
            assert!(
                out.v_acc.value() > last,
                "V_acc must grow with MAC count: k={k}, v={}",
                out.v_acc.value()
            );
            last = out.v_acc.value();
        }
    }

    #[test]
    fn zero_mac_output_is_near_zero() {
        let array = small_array();
        let (w, x) = mac_operands(4, 0);
        let out = array.run(&analytic(&x, &w)).unwrap();
        let (wf, xf) = mac_operands(4, 4);
        let full = array.run(&analytic(&xf, &wf)).unwrap();
        assert!(
            out.v_acc.value() < 0.05 * full.v_acc.value(),
            "MAC=0 output {} vs full {}",
            out.v_acc.value(),
            full.v_acc.value()
        );
    }

    #[test]
    fn transient_and_analytic_agree() {
        let array = small_array();
        let (w, x) = mac_operands(4, 2);
        let fast = array.run(&analytic(&x, &w)).unwrap();
        let full = array
            .run(&MacRequest::new(&x).weights(&w).at(ROOM))
            .unwrap();
        let rel = (fast.v_acc.value() - full.v_acc.value()).abs() / full.v_acc.value().max(1e-6);
        assert!(
            rel < 0.08,
            "analytic {} vs transient {} (rel {rel})",
            fast.v_acc.value(),
            full.v_acc.value()
        );
    }

    #[test]
    fn weights_gate_the_inputs() {
        // input '1' on a cell storing '0' must contribute ~nothing.
        let array = small_array();
        let out_gated = array.run(&analytic(&[true; 4], &[false; 4])).unwrap();
        assert_eq!(out_gated.expected, 0);
        let (w, x) = mac_operands(4, 4);
        let out_full = array.run(&analytic(&x, &w)).unwrap();
        assert!(out_gated.v_acc.value() < 0.05 * out_full.v_acc.value());
    }

    #[test]
    fn energy_is_positive_and_fj_scale() {
        let array = small_array();
        let (w, x) = mac_operands(4, 4);
        let out = array
            .run(&MacRequest::new(&x).weights(&w).at(ROOM))
            .unwrap();
        let e = out.energy.value();
        assert!(e > 0.0, "energy {e}");
        assert!(e < 100e-15, "energy should be fJ-scale, got {e}");
    }

    #[test]
    fn run_in_reuses_a_workspace_bitwise() {
        let array = small_array();
        let (w, x) = mac_operands(4, 2);
        let request = MacRequest::new(&x).weights(&w).at(ROOM);
        let fresh = array.run(&request).unwrap();
        let mut ws = Workspace::new();
        let first = array.run_in(&request, &mut ws).unwrap();
        // Second run through the warm workspace must be bitwise equal.
        let second = array.run_in(&request, &mut ws).unwrap();
        assert_eq!(fresh, first);
        assert_eq!(first, second);
    }

    #[test]
    fn mac_operands_pattern() {
        let (w, x) = mac_operands(8, 3);
        assert_eq!(w, vec![true; 8]);
        assert_eq!(x.iter().filter(|b| **b).count(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot activate")]
    fn mac_operands_rejects_excess() {
        let _ = mac_operands(4, 5);
    }
}
