//! Cell-parameter tuning — the paper's "the cell parameters, such as the
//! W/L ratio, read latencies, and write latencies, are tuned to improve
//! the temperature resilience of the cell" step, made explicit.
//!
//! [`coordinate_search`] is a deterministic, derivative-free minimizer:
//! it refines one parameter at a time with a shrinking step, which is
//! robust for the smooth-but-nonconvex objectives circuit tuning
//! produces. [`TuneProblem`] wraps the 2T-1FeFET cell's knobs (device
//! W/L ratios and the M1 threshold flavor) with the worst-case
//! temperature-fluctuation objective plus a current-level penalty.

use crate::cells::{current_fluctuation, CellDesign, CellOffsets, TwoTransistorOneFefet};
use crate::CimError;
use ferrocim_units::{Celsius, Volt};

/// A bounded parameter for the coordinate search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Param {
    /// Human-readable knob name.
    pub name: &'static str,
    /// Initial value.
    pub start: f64,
    /// Lower bound.
    pub min: f64,
    /// Upper bound.
    pub max: f64,
}

/// Result of a tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneOutcome {
    /// The best parameter vector found (same order as the input params).
    pub best: Vec<f64>,
    /// Objective value at `best`.
    pub objective: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
}

/// Derivative-free bounded coordinate search.
///
/// Starting from each parameter's `start`, repeatedly tries moving one
/// coordinate by `±step·(max−min)` and keeps improvements; the step
/// halves whenever a full sweep makes no progress, until `min_step` is
/// reached or the evaluation budget is exhausted.
///
/// # Errors
///
/// Propagates the first error returned by the objective.
pub fn coordinate_search<E>(
    params: &[Param],
    mut objective: impl FnMut(&[f64]) -> Result<f64, E>,
    budget: usize,
) -> Result<TuneOutcome, E> {
    let mut x: Vec<f64> = params.iter().map(|p| p.start).collect();
    let mut best = objective(&x)?;
    let mut evals = 1usize;
    let mut step = 0.25;
    let min_step = 1e-3;
    while step >= min_step && evals < budget {
        let mut improved = false;
        for (i, p) in params.iter().enumerate() {
            for dir in [1.0, -1.0] {
                if evals >= budget {
                    break;
                }
                let delta = dir * step * (p.max - p.min);
                let candidate = (x[i] + delta).clamp(p.min, p.max);
                if (candidate - x[i]).abs() < 1e-15 {
                    continue;
                }
                let saved = x[i];
                x[i] = candidate;
                let val = objective(&x)?;
                evals += 1;
                if val < best {
                    best = val;
                    improved = true;
                } else {
                    x[i] = saved;
                }
            }
        }
        if !improved {
            step *= 0.5;
        }
    }
    Ok(TuneOutcome {
        best: x,
        objective: best,
        evaluations: evals,
    })
}

/// The 2T-1FeFET tuning problem: minimize the worst-case normalized
/// current fluctuation over a temperature grid, with a soft penalty
/// keeping the room-temperature output current inside a usable window.
#[derive(Debug, Clone)]
pub struct TuneProblem {
    /// Temperatures over which the worst-case fluctuation is taken.
    pub temps: Vec<Celsius>,
    /// Reference temperature for normalization.
    pub reference: Celsius,
    /// Lower edge of the acceptable room-temperature output current, A.
    pub i_min: f64,
    /// Upper edge of the acceptable room-temperature output current, A.
    pub i_max: f64,
    /// Minimum acceptable product-on / product-off current ratio.
    pub min_on_off_ratio: f64,
}

impl TuneProblem {
    /// The paper's configuration: 0–85 °C, reference 27 °C, output
    /// current between 2 nA and 200 nA (the fJ/op energy window).
    pub fn paper_default() -> Self {
        TuneProblem {
            temps: ferrocim_spice::sweep::temperature_sweep(12),
            reference: Celsius(27.0),
            i_min: 2e-9,
            i_max: 200e-9,
            min_on_off_ratio: 200.0,
        }
    }

    /// The four knobs: M1 W/L, M2 W/L, FeFET W/L, M1 `V_TH0` flavor.
    pub fn params(&self) -> Vec<Param> {
        vec![
            Param {
                name: "m1_wl",
                start: 12.0,
                min: 1.0,
                max: 60.0,
            },
            Param {
                name: "m2_wl",
                start: 4.0,
                min: 0.5,
                max: 120.0,
            },
            Param {
                name: "fefet_wl",
                start: 4.0,
                min: 0.5,
                max: 40.0,
            },
            Param {
                name: "m1_vth0",
                start: 0.30,
                min: 0.25,
                max: 0.55,
            },
        ]
    }

    /// Builds the candidate cell for a parameter vector.
    pub fn cell_for(&self, x: &[f64]) -> TwoTransistorOneFefet {
        let mut cell = TwoTransistorOneFefet::paper_default();
        cell.m1 = cell.m1.with_wl_ratio(x[0]).with_vth0(Volt(x[3]));
        cell.m2 = cell.m2.with_wl_ratio(x[1]);
        cell.fefet.channel = cell.fefet.channel.clone().with_wl_ratio(x[2]);
        cell
    }

    /// The tuning objective: worst-case fluctuation plus log-barrier
    /// penalties outside the current window and below the minimum
    /// product-on/product-off ratio. The ratio constraint is what keeps
    /// the optimizer honest: an ultra-low-`V_TH` M1 flattens the
    /// temperature curve but leaks when the product is '0', destroying
    /// the MAC levels.
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation failures.
    pub fn objective(&self, x: &[f64]) -> Result<f64, CimError> {
        let cell = self.cell_for(x);
        let fluct = current_fluctuation(&cell, &self.temps, self.reference)?;
        let i_ref = cell
            .read_current(true, true, self.reference, &CellOffsets::NOMINAL)?
            .value();
        let mut penalty = 0.0;
        if i_ref < self.i_min {
            penalty += (self.i_min / i_ref.max(1e-15)).ln();
        }
        if i_ref > self.i_max {
            penalty += (i_ref / self.i_max).ln();
        }
        // Worst-case off current across operand combinations and the
        // temperature extremes (leakage is worst when hot). The off cell
        // is probed at the in-array idle condition: its output parked at
        // the source-line level, not at the mid-charge probe voltage.
        let mut off_cell = cell.clone();
        off_cell.v_out_probe = off_cell.bias.v_sl;
        let mut i_off: f64 = 0.0;
        for &(w, inp) in &[(true, false), (false, true), (false, false)] {
            for &t in [self.temps.first(), self.temps.last()]
                .into_iter()
                .flatten()
            {
                let i = off_cell
                    .read_current(w, inp, t, &CellOffsets::NOMINAL)?
                    .value()
                    .abs();
                i_off = i_off.max(i);
            }
        }
        let ratio = i_ref / i_off.max(1e-18);
        if ratio < self.min_on_off_ratio {
            penalty += (self.min_on_off_ratio / ratio).ln();
        }
        Ok(fluct + penalty)
    }

    /// Starting points for the multi-start search. Circuit-tuning
    /// objectives are multi-modal (the feedback loop has distinct
    /// operating regimes), so several diverse seeds are explored.
    pub fn starts(&self) -> Vec<Vec<f64>> {
        vec![
            vec![12.0, 4.0, 4.0, 0.30],
            vec![2.0, 25.0, 1.0, 0.20],
            vec![30.0, 60.0, 2.0, 0.25],
            vec![5.0, 100.0, 4.0, 0.35],
            vec![1.0, 10.0, 0.5, 0.22],
            vec![2.0, 0.5, 40.0, 0.45],
            vec![1.0, 30.0, 0.5, 0.33],
            vec![1.5, 25.0, 0.6, 0.28],
        ]
    }

    /// Runs the multi-start coordinate search with the given evaluation
    /// budget (split across the starting points) and returns the best
    /// outcome found.
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation failures.
    pub fn run(&self, budget: usize) -> Result<TuneOutcome, CimError> {
        let starts = self.starts();
        let per_start = (budget / starts.len()).max(1);
        let mut best: Option<TuneOutcome> = None;
        let mut total_evals = 0;
        for start in starts {
            let params: Vec<Param> = self
                .params()
                .iter()
                .zip(&start)
                .map(|(p, &s)| Param { start: s, ..*p })
                .collect();
            let outcome = coordinate_search(&params, |x| self.objective(x), per_start)?;
            total_evals += outcome.evaluations;
            if best
                .as_ref()
                .is_none_or(|b| outcome.objective < b.objective)
            {
                best = Some(outcome);
            }
        }
        let mut best = best.ok_or(CimError::EmptySweep {
            what: "tuning starts",
        })?;
        best.evaluations = total_evals;
        Ok(best)
    }
}

/// Array-level tuning: maximize the worst-case Noise Margin Rate
/// (`NMR_min`, the paper's Eq. (3)) of the whole row over a temperature
/// sweep. Unlike the cell-level [`TuneProblem`], this objective folds in
/// every second-order effect at once — off-cell leakage, the
/// self-limiting of the cell output as `C_o` charges, and the
/// charge-sharing gain — because it measures the actual quantity the
/// paper's Fig. 8(a) reports.
#[derive(Debug, Clone)]
pub struct ArrayTuneProblem {
    /// Temperatures over which ranges are taken (the 0–85 °C sweep).
    pub temps: Vec<Celsius>,
    /// The array geometry/timing to evaluate candidates in.
    pub config: crate::ArrayConfig,
}

impl ArrayTuneProblem {
    /// The paper's configuration: the default 8-cell row over 0–85 °C
    /// (a coarse 6-point grid keeps tuning affordable; validation uses
    /// a fine grid).
    pub fn paper_default() -> Self {
        ArrayTuneProblem {
            temps: ferrocim_spice::sweep::temperature_sweep(6),
            config: crate::ArrayConfig::paper_default(),
        }
    }

    /// The five knobs: M1/M2/FeFET W/L ratios, the M1 threshold flavor,
    /// and the FeFET low-`V_TH` program level.
    pub fn params(&self) -> Vec<Param> {
        vec![
            Param {
                name: "m1_wl",
                start: 2.0,
                min: 1.0,
                max: 60.0,
            },
            Param {
                name: "m2_wl",
                start: 4.0,
                min: 0.5,
                max: 120.0,
            },
            Param {
                name: "fefet_wl",
                start: 4.0,
                min: 0.5,
                max: 40.0,
            },
            Param {
                name: "m1_vth0",
                start: 0.30,
                min: 0.22,
                max: 0.55,
            },
            Param {
                // Keeping the low edge above V_read = 0.35 V preserves the
                // paper's premise that reads are fully subthreshold.
                name: "fefet_low_vt",
                start: 0.45,
                min: 0.37,
                max: 0.55,
            },
            Param {
                // A high-V_TH-flavor M2 raises the output plateau (signal
                // swing) without disturbing the W/L ratio that sets the
                // temperature compensation.
                name: "m2_vth0",
                start: 0.40,
                min: 0.30,
                max: 0.65,
            },
        ]
    }

    /// Builds the candidate cell for a parameter vector.
    pub fn cell_for(&self, x: &[f64]) -> TwoTransistorOneFefet {
        let mut cell = TwoTransistorOneFefet::paper_default();
        cell.m1 = cell.m1.with_wl_ratio(x[0]).with_vth0(Volt(x[3]));
        cell.m2 = cell.m2.with_wl_ratio(x[1]).with_vth0(Volt(x[5]));
        cell.fefet.channel = cell.fefet.channel.clone().with_wl_ratio(x[2]);
        cell.fefet.low_vt = Volt(x[4]);
        cell
    }

    /// The objective: `−NMR_min` of the candidate row (lower is
    /// better), with level ranges inflated by ±2σ of the paper's device
    /// variation — so the optimum balances temperature compensation
    /// *and* signal swing against `σ_VT = 54 mV` (a cell that is
    /// perfectly temperature-flat but has a tiny plateau swing would be
    /// destroyed by variation; see Fig. 9).
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation failures.
    pub fn objective(&self, x: &[f64]) -> Result<f64, CimError> {
        let array = crate::CimArray::new(self.cell_for(x), self.config)?;
        let table = crate::metrics::RangeTable::measure_with_variation(
            &array,
            &self.temps,
            &ferrocim_device::variation::VariationModel::paper_default(),
            // z = 0.5: demand separation at half a sigma of variation,
            // which lands the Monte-Carlo error profile where the paper
            // reports it (max ≈ 25 % at sigma_VT = 54 mV, Fig. 9) while
            // still letting temperature compensation dominate.
            0.5,
        )?;
        Ok(-table.nmr_min().1)
    }

    /// Starting points for the multi-start search.
    pub fn starts(&self) -> Vec<Vec<f64>> {
        vec![
            vec![2.0, 4.0, 4.0, 0.30, 0.45, 0.40],
            vec![1.0, 30.0, 0.5, 0.25, 0.40, 0.40],
            vec![2.0, 0.5, 40.0, 0.45, 0.45, 0.40],
            vec![5.0, 60.0, 2.0, 0.35, 0.50, 0.55],
            vec![1.0, 10.0, 1.0, 0.28, 0.38, 0.60],
            vec![3.3, 52.0, 0.5, 0.22, 0.37, 0.56],
        ]
    }

    /// Runs the multi-start coordinate search and returns the best
    /// outcome (objective is `−NMR_min`).
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation failures.
    pub fn run(&self, budget: usize) -> Result<TuneOutcome, CimError> {
        let starts = self.starts();
        let per_start = (budget / starts.len()).max(1);
        let mut best: Option<TuneOutcome> = None;
        let mut total_evals = 0;
        for start in starts {
            let params: Vec<Param> = self
                .params()
                .iter()
                .zip(&start)
                .map(|(p, &s)| Param { start: s, ..*p })
                .collect();
            let outcome = coordinate_search(&params, |x| self.objective(x), per_start)?;
            total_evals += outcome.evaluations;
            if best
                .as_ref()
                .is_none_or(|b| outcome.objective < b.objective)
            {
                best = Some(outcome);
            }
        }
        let mut best = best.ok_or(CimError::EmptySweep {
            what: "tuning starts",
        })?;
        best.evaluations = total_evals;
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinate_search_minimizes_quadratic() {
        let params = [
            Param {
                name: "a",
                start: 0.0,
                min: -10.0,
                max: 10.0,
            },
            Param {
                name: "b",
                start: 5.0,
                min: -10.0,
                max: 10.0,
            },
        ];
        let out = coordinate_search::<()>(
            &params,
            |x| Ok((x[0] - 3.0).powi(2) + (x[1] + 2.0).powi(2)),
            10_000,
        )
        .unwrap();
        assert!((out.best[0] - 3.0).abs() < 0.05, "{:?}", out.best);
        assert!((out.best[1] + 2.0).abs() < 0.05, "{:?}", out.best);
        assert!(out.objective < 0.01);
    }

    #[test]
    fn coordinate_search_respects_bounds() {
        let params = [Param {
            name: "a",
            start: 0.5,
            min: 0.0,
            max: 1.0,
        }];
        // Unbounded optimum at x = 5; search must stop at the bound.
        let out = coordinate_search::<()>(&params, |x| Ok((x[0] - 5.0).powi(2)), 1_000).unwrap();
        assert!((out.best[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coordinate_search_propagates_errors() {
        let params = [Param {
            name: "a",
            start: 0.0,
            min: -1.0,
            max: 1.0,
        }];
        let result = coordinate_search(&params, |_| Err("boom"), 100);
        assert_eq!(result.unwrap_err(), "boom");
    }

    #[test]
    fn objective_penalizes_out_of_window_current() {
        let problem = TuneProblem {
            // Absurdly tight window nothing satisfies.
            i_min: 1.0,
            i_max: 2.0,
            min_on_off_ratio: 500.0,
            ..TuneProblem::paper_default()
        };
        let x: Vec<f64> = problem.params().iter().map(|p| p.start).collect();
        let with_penalty = problem.objective(&x).unwrap();
        let plain =
            current_fluctuation(&problem.cell_for(&x), &problem.temps, problem.reference).unwrap();
        assert!(with_penalty > plain + 1.0);
    }
}
