//! Operating-point (bias) definitions for CIM read operations.

use ferrocim_units::Volt;
use serde::{Deserialize, Serialize};

/// The rail and word-line voltages applied during a MAC read.
///
/// The paper's proposed 2T-1FeFET operating point is `BL = 1.2 V`,
/// `SL = 0.2 V`, `WL = 0.35 V` when the input bit is '1' (subthreshold
/// FeFET activation), and WL at the SL level when the input is '0'.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadBias {
    /// Bit-line voltage.
    pub v_bl: Volt,
    /// Source-line voltage.
    pub v_sl: Volt,
    /// Word-line voltage for an input bit of '1'.
    pub v_wl_on: Volt,
    /// Word-line voltage for an input bit of '0' (device off).
    pub v_wl_off: Volt,
}

impl ReadBias {
    /// The paper's subthreshold bias for the proposed 2T-1FeFET cell:
    /// `BL = 1.2 V`, `SL = 0.2 V`, `WL_on = 0.35 V` above SL reference.
    pub fn paper_subthreshold() -> Self {
        ReadBias {
            v_bl: Volt(1.2),
            v_sl: Volt(0.2),
            // WL drive referenced to ground; the FeFET source sits at
            // SL = 0.2 V, so a 0.55 V word line gives V_GS = 0.35 V.
            v_wl_on: Volt(0.55),
            v_wl_off: Volt(0.0),
        }
    }

    /// The baseline 1FeFET-1R read in the *saturation* region
    /// (`V_read = 1.3 V`, the operating point of the original design).
    pub fn baseline_saturation() -> Self {
        ReadBias {
            v_bl: Volt(1.0),
            v_sl: Volt(0.0),
            v_wl_on: Volt(1.3),
            v_wl_off: Volt(0.0),
        }
    }

    /// The baseline 1FeFET-1R read scaled into the *subthreshold* region
    /// (`V_read = 0.35 V`), the paper's Fig. 3(b)/Fig. 4 configuration.
    pub fn baseline_subthreshold() -> Self {
        ReadBias {
            v_bl: Volt(1.0),
            v_sl: Volt(0.0),
            v_wl_on: Volt(0.35),
            v_wl_off: Volt(0.0),
        }
    }

    /// The gate-to-source read voltage seen by the FeFET when the input
    /// is '1' (`v_wl_on − v_sl`).
    pub fn v_read(&self) -> Volt {
        self.v_wl_on - self.v_sl
    }

    /// The word-line voltage encoding one input bit.
    pub fn wl_for(&self, input: bool) -> Volt {
        if input {
            self.v_wl_on
        } else {
            self.v_wl_off
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bias_reads_at_350mv() {
        let b = ReadBias::paper_subthreshold();
        assert!((b.v_read().value() - 0.35).abs() < 1e-12);
        assert_eq!(b.v_bl, Volt(1.2));
        assert_eq!(b.v_sl, Volt(0.2));
    }

    #[test]
    fn baseline_biases_match_fig3() {
        assert!((ReadBias::baseline_saturation().v_read().value() - 1.3).abs() < 1e-12);
        assert!((ReadBias::baseline_subthreshold().v_read().value() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn wl_for_selects_by_input() {
        let b = ReadBias::paper_subthreshold();
        assert_eq!(b.wl_for(true), b.v_wl_on);
        assert_eq!(b.wl_for(false), b.v_wl_off);
    }
}
