//! A multi-row CIM crossbar: programmable weight storage plus row-wise
//! MAC execution with a shared readout.
//!
//! [`CimArray`] models one row of hardware; a [`Crossbar`] stacks `m`
//! rows of stored weights over the same cell design and executes
//! digital matrix–vector products — the unit of work a neural-network
//! layer maps onto (a `m × n` weight tile multiplied by an `n`-element
//! binary input vector per step). Rows share the bit/source lines and
//! the ADC, as in the paper's Fig. 2/Fig. 6 organization.

use crate::array::{CimArray, MacPath, MacRequest};
use crate::cells::{CellDesign, CellWeight};
use crate::transfer::Adc;
use crate::CimError;
use ferrocim_units::{Celsius, Joule, Volt};
use serde::{Deserialize, Serialize};

/// The result of one crossbar matrix–vector product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatVecOutput {
    /// Digital per-row MAC readouts.
    pub digital: Vec<usize>,
    /// The analog accumulation voltages the readouts were sliced from.
    pub analog: Vec<Volt>,
    /// Total energy across all row operations.
    pub energy: Joule,
}

/// A programmable `m × n` CIM weight tile.
#[derive(Debug, Clone)]
pub struct Crossbar<C> {
    array: CimArray<C>,
    rows: Vec<Vec<CellWeight>>,
    adc: Adc,
}

impl<C: CellDesign> Crossbar<C> {
    /// Creates a crossbar of `rows` rows over the given row hardware,
    /// with every weight erased ('0') and the readout calibrated over
    /// the 0–85 °C range.
    ///
    /// # Errors
    ///
    /// Propagates calibration-simulation failures, or
    /// [`CimError::InvalidConfig`] for a zero row count.
    pub fn new(array: CimArray<C>, rows: usize) -> Result<Self, CimError> {
        if rows == 0 {
            return Err(CimError::InvalidConfig {
                name: "rows",
                value: 0.0,
                requirement: "at least 1",
            });
        }
        let adc = Adc::calibrate_over(&array, &ferrocim_spice::sweep::temperature_sweep(8))?;
        let n = array.config().cells_per_row;
        Ok(Crossbar {
            array,
            rows: vec![vec![CellWeight::Bit(false); n]; rows],
            adc,
        })
    }

    /// The number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The number of cells (columns) per row.
    pub fn columns(&self) -> usize {
        self.array.config().cells_per_row
    }

    /// The row hardware.
    pub fn array(&self) -> &CimArray<C> {
        &self.array
    }

    /// The stored weights of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[CellWeight] {
        &self.rows[row]
    }

    /// Programs one row with binary weights.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::MismatchedOperands`] if `weights` length
    /// differs from the column count.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn program_row(&mut self, row: usize, weights: &[bool]) -> Result<(), CimError> {
        if weights.len() != self.columns() {
            return Err(CimError::MismatchedOperands {
                weights: weights.len(),
                inputs: self.columns(),
                cells_per_row: self.columns(),
            });
        }
        self.rows[row] = weights.iter().map(|&b| CellWeight::Bit(b)).collect();
        Ok(())
    }

    /// Programs one row with multi-level weights.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::MismatchedOperands`] on a length mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn program_row_levels(
        &mut self,
        row: usize,
        weights: &[CellWeight],
    ) -> Result<(), CimError> {
        if weights.len() != self.columns() {
            return Err(CimError::MismatchedOperands {
                weights: weights.len(),
                inputs: self.columns(),
                cells_per_row: self.columns(),
            });
        }
        self.rows[row] = weights.to_vec();
        Ok(())
    }

    /// Executes the matrix–vector product of every stored row with the
    /// binary input vector at the given temperature (nominal devices),
    /// returning digital readouts, analog voltages, and total energy.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::MismatchedOperands`] for a wrong input
    /// length, or propagates simulation failures.
    pub fn matvec(&self, inputs: &[bool], temp: Celsius) -> Result<MatVecOutput, CimError> {
        if inputs.len() != self.columns() {
            return Err(CimError::MismatchedOperands {
                weights: self.columns(),
                inputs: inputs.len(),
                cells_per_row: self.columns(),
            });
        }
        let mut digital = Vec::with_capacity(self.rows.len());
        let mut analog = Vec::with_capacity(self.rows.len());
        let mut energy = 0.0;
        let mut ws = ferrocim_spice::Workspace::new();
        for weights in &self.rows {
            let request = MacRequest::new(inputs)
                .weighted(weights)
                .at(temp)
                .path(MacPath::Analytic);
            let out = self.array.run_in(&request, &mut ws)?;
            digital.push(self.adc.quantize(out.v_acc));
            analog.push(out.v_acc);
            energy += out.energy.value();
        }
        Ok(MatVecOutput {
            digital,
            analog,
            energy: Joule(energy),
        })
    }

    /// Executes one matrix–vector product per input vector, fanning the
    /// `rows × inputs` row-MAC jobs across OS threads with per-thread
    /// solver workspaces and collapsing duplicate `(row, input)` jobs
    /// onto one simulation. Output `i` equals
    /// [`Crossbar::matvec`]`(&inputs[i], temp)` exactly.
    ///
    /// # Errors
    ///
    /// As [`Crossbar::matvec`].
    pub fn matvec_batch(
        &self,
        inputs: &[Vec<bool>],
        temp: Celsius,
    ) -> Result<Vec<MatVecOutput>, CimError>
    where
        C: Sync,
    {
        for input in inputs {
            if input.len() != self.columns() {
                return Err(CimError::MismatchedOperands {
                    weights: self.columns(),
                    inputs: input.len(),
                    cells_per_row: self.columns(),
                });
            }
        }
        // One job per (input vector, stored row); duplicates (repeated
        // input vectors or identically programmed rows) run once.
        let jobs: Vec<(usize, usize)> = (0..inputs.len())
            .flat_map(|i| (0..self.rows.len()).map(move |r| (i, r)))
            .collect();
        let mut unique: Vec<(usize, usize)> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(jobs.len());
        for &(i, r) in &jobs {
            let found = unique
                .iter()
                .position(|&(j, s)| inputs[j] == inputs[i] && self.rows[s] == self.rows[r]);
            slot_of.push(found.unwrap_or_else(|| {
                unique.push((i, r));
                unique.len() - 1
            }));
        }
        let solved = ferrocim_spice::fan_out(
            unique.len(),
            true,
            ferrocim_spice::Workspace::new,
            |ws, u| {
                let (i, r) = unique[u];
                let request = MacRequest::new(&inputs[i])
                    .weighted(&self.rows[r])
                    .at(temp)
                    .path(MacPath::Analytic);
                self.array.run_in(&request, ws)
            },
        );
        let mut row_macs = Vec::with_capacity(unique.len());
        for result in solved {
            row_macs.push(result?);
        }
        Ok(inputs
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let mut digital = Vec::with_capacity(self.rows.len());
                let mut analog = Vec::with_capacity(self.rows.len());
                let mut energy = 0.0;
                for r in 0..self.rows.len() {
                    let out = &row_macs[slot_of[i * self.rows.len() + r]];
                    digital.push(self.adc.quantize(out.v_acc));
                    analog.push(out.v_acc);
                    energy += out.energy.value();
                }
                MatVecOutput {
                    digital,
                    analog,
                    energy: Joule(energy),
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::TwoTransistorOneFefet;
    use crate::ArrayConfig;
    use ferrocim_units::Second;

    const ROOM: Celsius = Celsius(27.0);

    fn small_crossbar(rows: usize) -> Crossbar<TwoTransistorOneFefet> {
        let config = ArrayConfig {
            dt: Second(50e-12),
            ..ArrayConfig::paper_default()
        };
        let array = CimArray::new(TwoTransistorOneFefet::paper_default(), config).unwrap();
        Crossbar::new(array, rows).unwrap()
    }

    #[test]
    fn matvec_computes_binary_products_row_wise() {
        let mut xbar = small_crossbar(3);
        xbar.program_row(0, &[true; 8]).unwrap();
        xbar.program_row(1, &[true, false, true, false, true, false, true, false])
            .unwrap();
        // Row 2 stays erased.
        let inputs = [true, true, true, true, false, false, false, false];
        let out = xbar.matvec(&inputs, ROOM).unwrap();
        assert_eq!(out.digital, vec![4, 2, 0]);
        assert!(out.energy.value() > 0.0);
        assert!(out.analog[0] > out.analog[1]);
    }

    #[test]
    fn matvec_is_temperature_stable() {
        let mut xbar = small_crossbar(2);
        xbar.program_row(0, &[true, true, true, false, false, true, true, true])
            .unwrap();
        xbar.program_row(1, &[false, false, true, true, true, false, false, false])
            .unwrap();
        let inputs = [true; 8];
        let reference = xbar.matvec(&inputs, ROOM).unwrap().digital;
        for t in [0.0, 55.0, 85.0] {
            let got = xbar.matvec(&inputs, Celsius(t)).unwrap().digital;
            assert_eq!(got, reference, "readout drifted at {t} C");
        }
        assert_eq!(reference, vec![6, 3]);
    }

    #[test]
    fn multilevel_weights_scale_the_analog_output() {
        let mut xbar = small_crossbar(3);
        let full = vec![CellWeight::Level { level: 3, max: 3 }; 8];
        let two_thirds = vec![CellWeight::Level { level: 2, max: 3 }; 8];
        let third = vec![CellWeight::Level { level: 1, max: 3 }; 8];
        xbar.program_row_levels(0, &full).unwrap();
        xbar.program_row_levels(1, &two_thirds).unwrap();
        xbar.program_row_levels(2, &third).unwrap();
        let out = xbar.matvec(&[true; 8], ROOM).unwrap();
        // Analog outputs must be strictly ordered by the stored level.
        assert!(
            out.analog[0] > out.analog[1] && out.analog[1] > out.analog[2],
            "levels not ordered: {:?}",
            out.analog
        );
    }

    #[test]
    fn matvec_batch_matches_per_call_matvec() {
        let mut xbar = small_crossbar(2);
        xbar.program_row(0, &[true, true, true, false, false, true, true, true])
            .unwrap();
        xbar.program_row(1, &[false, false, true, true, true, false, false, false])
            .unwrap();
        let inputs: Vec<Vec<bool>> = vec![
            vec![true; 8],
            vec![true, false, true, false, true, false, true, false],
            vec![true; 8], // duplicate of job 0
        ];
        let batch = xbar.matvec_batch(&inputs, ROOM).unwrap();
        for (x, got) in inputs.iter().zip(&batch) {
            assert_eq!(got, &xbar.matvec(x, ROOM).unwrap());
        }
        assert_eq!(batch[0], batch[2]);
        assert!(matches!(
            xbar.matvec_batch(&[vec![true; 3]], ROOM),
            Err(CimError::MismatchedOperands { .. })
        ));
    }

    #[test]
    fn dimension_errors_are_typed() {
        let mut xbar = small_crossbar(1);
        assert!(matches!(
            xbar.program_row(0, &[true; 3]),
            Err(CimError::MismatchedOperands { .. })
        ));
        assert!(matches!(
            xbar.matvec(&[true; 5], ROOM),
            Err(CimError::MismatchedOperands { .. })
        ));
        let config = ArrayConfig::paper_default();
        let array = CimArray::new(TwoTransistorOneFefet::paper_default(), config).unwrap();
        assert!(matches!(
            Crossbar::new(array, 0),
            Err(CimError::InvalidConfig { .. })
        ));
    }
}
