//! A multi-row CIM crossbar: programmable weight storage plus row-wise
//! MAC execution with a shared readout.
//!
//! [`CimArray`] models one row of hardware; a [`Crossbar`] stacks `m`
//! rows of stored weights over the same cell design and executes
//! digital matrix–vector products — the unit of work a neural-network
//! layer maps onto (a `m × n` weight tile multiplied by an `n`-element
//! binary input vector per step). Rows share the bit/source lines and
//! the ADC, as in the paper's Fig. 2/Fig. 6 organization.

use crate::array::{CimArray, MacPath, MacRequest};
use crate::cells::{CellDesign, CellWeight};
use crate::fault::{CellFault, FaultPlan};
use crate::transfer::Adc;
use crate::CimError;
use ferrocim_spice::{
    apply_policy, try_fan_out, Budget, FailurePolicy, FanOutError, FanOutReport, JobError,
};
use ferrocim_telemetry::{Event, Telemetry};
use ferrocim_units::{Celsius, Joule, Volt};
use serde::{Deserialize, Serialize};

/// The result of one crossbar matrix–vector product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatVecOutput {
    /// Digital per-row MAC readouts.
    pub digital: Vec<usize>,
    /// The analog accumulation voltages the readouts were sliced from.
    pub analog: Vec<Volt>,
    /// Total energy across all row operations.
    pub energy: Joule,
}

/// A programmable `m × n` CIM weight tile.
#[derive(Debug, Clone)]
pub struct Crossbar<C> {
    array: CimArray<C>,
    rows: Vec<Vec<CellWeight>>,
    adc: Adc,
    faults: FaultPlan,
    /// Faulted hardware clones for rows the plan touches; fault-free
    /// rows stay `None` and share `array`.
    row_arrays: Vec<Option<CimArray<C>>>,
    /// Resource budget governing every matrix–vector product.
    budget: Budget,
    /// Telemetry handle shared with the row hardware.
    telemetry: Telemetry,
}

impl<C: CellDesign> Crossbar<C> {
    /// Creates a crossbar of `rows` rows over the given row hardware,
    /// with every weight erased ('0') and the readout calibrated over
    /// the 0–85 °C range.
    ///
    /// # Errors
    ///
    /// Propagates calibration-simulation failures, or
    /// [`CimError::InvalidConfig`] for a zero row count.
    pub fn new(array: CimArray<C>, rows: usize) -> Result<Self, CimError> {
        if rows == 0 {
            return Err(CimError::InvalidConfig {
                name: "rows",
                value: 0.0,
                requirement: "at least 1",
            });
        }
        let adc = Adc::calibrate_over(&array, &ferrocim_spice::sweep::temperature_sweep(8))?;
        let n = array.config().cells_per_row;
        Ok(Crossbar {
            faults: FaultPlan::none(rows, n),
            row_arrays: (0..rows).map(|_| None).collect(),
            budget: array.budget().clone(),
            telemetry: array.telemetry().clone(),
            array,
            rows: vec![vec![CellWeight::Bit(false); n]; rows],
            adc,
        })
    }

    /// Attaches a resource [`Budget`]: one step is charged per unique
    /// row-MAC job, every underlying solver iteration counts against
    /// the shared pool, and a deadline or cancellation aborts the
    /// product with a typed error. The budget is propagated to the row
    /// hardware (including faulted row clones), so solver-level charges
    /// land in the same pool as the per-job charges.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.array = self.array.with_budget(budget.clone());
        self.row_arrays = self
            .row_arrays
            .into_iter()
            .map(|ra| ra.map(|a| a.with_budget(budget.clone())))
            .collect();
        self.budget = budget;
        self
    }

    /// Attaches a telemetry handle: each matrix–vector product emits one
    /// [`Event::MacIssued`] covering its row-MAC jobs (batch paths also
    /// report how many unique simulations were actually solved), and
    /// the handle is propagated to the row hardware — including faulted
    /// row clones — so solver-level events land on the same recorder.
    pub fn with_recorder(mut self, telemetry: Telemetry) -> Self {
        self.array = self.array.with_recorder(telemetry.clone());
        self.row_arrays = self
            .row_arrays
            .into_iter()
            .map(|ra| ra.map(|a| a.with_recorder(telemetry.clone())))
            .collect();
        self.telemetry = telemetry;
        self
    }

    /// Selects the linear-solver backend (see
    /// [`ferrocim_spice::SolverConfig`]) for every row-MAC workspace,
    /// propagated to the row hardware — including faulted row clones —
    /// so each worker's workspace picks the same backend. The default
    /// is the row array's own selection (auto by size).
    pub fn with_solver(mut self, solver: ferrocim_spice::SolverConfig) -> Self {
        self.array = self.array.with_solver(solver);
        self.row_arrays = self
            .row_arrays
            .into_iter()
            .map(|ra| ra.map(|a| a.with_solver(solver)))
            .collect();
        self
    }

    /// Overrides the numerical-health policy (see
    /// [`ferrocim_spice::HealthPolicy`]) for every row-MAC solve,
    /// propagated to the row hardware — including faulted row clones.
    /// The default policy is on.
    pub fn with_health(mut self, health: ferrocim_spice::HealthPolicy) -> Self {
        self.array = self.array.with_health(health);
        self.row_arrays = self
            .row_arrays
            .into_iter()
            .map(|ra| ra.map(|a| a.with_health(health)))
            .collect();
        self
    }

    /// Installs a fault plan: every cell fault in `plan` is applied to
    /// the corresponding `(row, column)` cell of this crossbar, for
    /// both transient and analytic evaluation. Rows the plan leaves
    /// untouched keep sharing the original row hardware. Pass
    /// [`FaultPlan::none`] to clear previously installed faults.
    ///
    /// # Errors
    ///
    /// [`CimError::InvalidConfig`] when the plan's tile shape differs
    /// from this crossbar's `rows × columns`.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Result<Self, CimError>
    where
        C: Clone,
    {
        if plan.rows() != self.rows.len() || plan.cols() != self.columns() {
            return Err(CimError::InvalidConfig {
                name: "fault_plan_shape",
                value: plan.rows() as f64,
                requirement: "a tile shape matching the crossbar",
            });
        }
        self.row_arrays = (0..self.rows.len())
            .map(|r| {
                if plan.row_has_faults(r) {
                    self.array
                        .clone()
                        .with_faults(&plan.row_faults(r))
                        .map(Some)
                } else {
                    Ok(None)
                }
            })
            .collect::<Result<_, _>>()?;
        self.faults = plan;
        Ok(self)
    }

    /// The installed fault plan (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The hardware used to evaluate one row: the shared fault-free
    /// array, or the row's faulted clone.
    fn row_array(&self, row: usize) -> &CimArray<C> {
        self.row_arrays[row].as_ref().unwrap_or(&self.array)
    }

    /// The per-column faults of one row, as installed.
    fn row_fault_vec(&self, row: usize) -> Vec<Option<CellFault>> {
        self.faults.row_faults(row)
    }

    /// The number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The number of cells (columns) per row.
    pub fn columns(&self) -> usize {
        self.array.config().cells_per_row
    }

    /// The row hardware.
    pub fn array(&self) -> &CimArray<C> {
        &self.array
    }

    /// The stored weights of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[CellWeight] {
        &self.rows[row]
    }

    /// Programs one row with binary weights.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::MismatchedOperands`] if `weights` length
    /// differs from the column count.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn program_row(&mut self, row: usize, weights: &[bool]) -> Result<(), CimError> {
        if weights.len() != self.columns() {
            return Err(CimError::MismatchedOperands {
                weights: weights.len(),
                inputs: self.columns(),
                cells_per_row: self.columns(),
            });
        }
        self.rows[row] = weights.iter().map(|&b| CellWeight::Bit(b)).collect();
        Ok(())
    }

    /// Programs one row with multi-level weights.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::MismatchedOperands`] on a length mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn program_row_levels(
        &mut self,
        row: usize,
        weights: &[CellWeight],
    ) -> Result<(), CimError> {
        if weights.len() != self.columns() {
            return Err(CimError::MismatchedOperands {
                weights: weights.len(),
                inputs: self.columns(),
                cells_per_row: self.columns(),
            });
        }
        self.rows[row] = weights.to_vec();
        Ok(())
    }

    /// Executes the matrix–vector product of every stored row with the
    /// binary input vector at the given temperature (nominal devices),
    /// returning digital readouts, analog voltages, and total energy.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::MismatchedOperands`] for a wrong input
    /// length, or propagates simulation failures.
    pub fn matvec(&self, inputs: &[bool], temp: Celsius) -> Result<MatVecOutput, CimError> {
        if inputs.len() != self.columns() {
            return Err(CimError::MismatchedOperands {
                weights: self.columns(),
                inputs: inputs.len(),
                cells_per_row: self.columns(),
            });
        }
        let row_jobs = self.rows.len() as u64;
        let _span = self.telemetry.span("cim.matvec");
        self.telemetry.emit(|| Event::MacIssued {
            jobs: row_jobs,
            solves: row_jobs,
        });
        let mut digital = Vec::with_capacity(self.rows.len());
        let mut analog = Vec::with_capacity(self.rows.len());
        let mut energy = 0.0;
        let mut ws = ferrocim_spice::Workspace::with_solver(self.array.solver_config());
        for (r, weights) in self.rows.iter().enumerate() {
            self.budget.check()?;
            self.budget.charge_steps(1)?;
            let request = MacRequest::new(inputs)
                .weighted(weights)
                .at(temp)
                .path(MacPath::Analytic);
            let out = self.row_array(r).run_in(&request, &mut ws)?;
            digital.push(self.adc.quantize(out.v_acc));
            analog.push(out.v_acc);
            energy += out.energy.value();
        }
        Ok(MatVecOutput {
            digital,
            analog,
            energy: Joule(energy),
        })
    }

    /// Executes one matrix–vector product per input vector, fanning the
    /// `rows × inputs` row-MAC jobs across OS threads with per-thread
    /// solver workspaces and collapsing duplicate `(row, input)` jobs
    /// onto one simulation. Output `i` equals
    /// [`Crossbar::matvec`]`(&inputs[i], temp)` exactly.
    ///
    /// # Errors
    ///
    /// As [`Crossbar::matvec`].
    pub fn matvec_batch(
        &self,
        inputs: &[Vec<bool>],
        temp: Celsius,
    ) -> Result<Vec<MatVecOutput>, CimError>
    where
        C: Sync,
    {
        for input in inputs {
            if input.len() != self.columns() {
                return Err(CimError::MismatchedOperands {
                    weights: self.columns(),
                    inputs: input.len(),
                    cells_per_row: self.columns(),
                });
            }
        }
        let (unique, slot_of) = self.dedupe_row_jobs(inputs);
        let job_count = (inputs.len() * self.rows.len()) as u64;
        let solve_count = unique.len() as u64;
        let batch_span = self.telemetry.span("cim.mac_batch");
        let batch_id = batch_span.id();
        self.telemetry.emit(|| Event::MacIssued {
            jobs: job_count,
            solves: solve_count,
        });
        let solved = ferrocim_spice::fan_out(
            unique.len(),
            true,
            || ferrocim_spice::Workspace::with_solver(self.array.solver_config()),
            |ws, u| {
                let _solve_span = self.telemetry.span_under("cim.row_solve", batch_id);
                self.budget.check()?;
                self.budget.charge_steps(1)?;
                let (i, r) = unique[u];
                let request = MacRequest::new(&inputs[i])
                    .weighted(&self.rows[r])
                    .at(temp)
                    .path(MacPath::Analytic);
                self.row_array(r).run_in(&request, ws)
            },
        );
        let mut row_macs = Vec::with_capacity(unique.len());
        for result in solved {
            row_macs.push(result?);
        }
        Ok(inputs
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let mut digital = Vec::with_capacity(self.rows.len());
                let mut analog = Vec::with_capacity(self.rows.len());
                let mut energy = 0.0;
                for r in 0..self.rows.len() {
                    let out = &row_macs[slot_of[i * self.rows.len() + r]];
                    digital.push(self.adc.quantize(out.v_acc));
                    analog.push(out.v_acc);
                    energy += out.energy.value();
                }
                MatVecOutput {
                    digital,
                    analog,
                    energy: Joule(energy),
                }
            })
            .collect())
    }

    /// Deduplicates the `inputs × rows` row-MAC jobs: two jobs collapse
    /// when their input vectors, stored weights, and per-row faults all
    /// match. Returns the unique `(input, row)` jobs and, for every
    /// original job in input-major order, its unique-slot index.
    fn dedupe_row_jobs(&self, inputs: &[Vec<bool>]) -> (Vec<(usize, usize)>, Vec<usize>) {
        let row_faults: Vec<Vec<Option<CellFault>>> = (0..self.rows.len())
            .map(|r| self.row_fault_vec(r))
            .collect();
        let mut unique: Vec<(usize, usize)> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(inputs.len() * self.rows.len());
        for i in 0..inputs.len() {
            for r in 0..self.rows.len() {
                let found = unique.iter().position(|&(j, s)| {
                    inputs[j] == inputs[i]
                        && self.rows[s] == self.rows[r]
                        && row_faults[s] == row_faults[r]
                });
                slot_of.push(found.unwrap_or_else(|| {
                    unique.push((i, r));
                    unique.len() - 1
                }));
            }
        }
        (unique, slot_of)
    }

    /// Fault-tolerant variant of [`Crossbar::matvec_batch`]: each input
    /// vector is one job, which succeeds only when every one of its row
    /// MACs succeeds (failures include both typed errors and panics
    /// inside the solver). `policy` decides whether the batch aborts on
    /// the first failed input, reports failures per input, or
    /// substitutes a fallback output.
    ///
    /// # Errors
    ///
    /// [`FanOutError::Job`] under [`FailurePolicy::FailFast`] when any
    /// input fails; [`FanOutError::TooManyFailures`] under
    /// [`FailurePolicy::SkipAndReport`] when the failure budget is
    /// exceeded. Under [`FailurePolicy::Substitute`] the call never
    /// fails.
    pub fn try_matvec_batch(
        &self,
        inputs: &[Vec<bool>],
        temp: Celsius,
        policy: &FailurePolicy<MatVecOutput>,
    ) -> Result<FanOutReport<MatVecOutput, CimError>, FanOutError<CimError>>
    where
        C: Sync,
    {
        let (unique, slot_of) = self.dedupe_row_jobs(inputs);
        let job_count = (inputs.len() * self.rows.len()) as u64;
        let solve_count = unique.len() as u64;
        let batch_span = self.telemetry.span("cim.mac_batch");
        let batch_id = batch_span.id();
        self.telemetry.emit(|| Event::MacIssued {
            jobs: job_count,
            solves: solve_count,
        });
        let solved = try_fan_out(
            unique.len(),
            true,
            &FailurePolicy::SkipAndReport {
                max_failures: usize::MAX,
            },
            || ferrocim_spice::Workspace::with_solver(self.array.solver_config()),
            |ws, u| {
                let _solve_span = self.telemetry.span_under("cim.row_solve", batch_id);
                self.budget.check()?;
                self.budget.charge_steps(1)?;
                let (i, r) = unique[u];
                if inputs[i].len() != self.columns() {
                    return Err(CimError::MismatchedOperands {
                        weights: self.columns(),
                        inputs: inputs[i].len(),
                        cells_per_row: self.columns(),
                    });
                }
                let request = MacRequest::new(&inputs[i])
                    .weighted(&self.rows[r])
                    .at(temp)
                    .path(MacPath::Analytic);
                self.row_array(r).run_in(&request, ws)
            },
        )?;
        // One *input vector* is one job from the policy's point of
        // view: it succeeds only when all of its row MACs succeeded,
        // and it fails with the first row failure otherwise.
        let mut results: Vec<Result<MatVecOutput, JobError<CimError>>> =
            Vec::with_capacity(inputs.len());
        for i in 0..inputs.len() {
            let mut digital = Vec::with_capacity(self.rows.len());
            let mut analog = Vec::with_capacity(self.rows.len());
            let mut energy = 0.0;
            let mut error: Option<JobError<CimError>> = None;
            for r in 0..self.rows.len() {
                match &solved.results[slot_of[i * self.rows.len() + r]] {
                    Ok(out) => {
                        digital.push(self.adc.quantize(out.v_acc));
                        analog.push(out.v_acc);
                        energy += out.energy.value();
                    }
                    Err(e) => {
                        error = Some(e.clone());
                        break;
                    }
                }
            }
            results.push(match error {
                Some(e) => Err(e),
                None => Ok(MatVecOutput {
                    digital,
                    analog,
                    energy: Joule(energy),
                }),
            });
        }
        let failures = results.iter().filter(|r| r.is_err()).count();
        let report = apply_policy(results, failures, policy)?;
        if matches!(policy, FailurePolicy::Substitute(_)) && report.failures > 0 {
            let substituted = report.failures as u64;
            self.telemetry.emit(|| Event::FaultSubstituted {
                substitute: substituted,
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::TwoTransistorOneFefet;
    use crate::ArrayConfig;
    use ferrocim_units::Second;

    const ROOM: Celsius = Celsius(27.0);

    fn small_crossbar(rows: usize) -> Crossbar<TwoTransistorOneFefet> {
        let config = ArrayConfig {
            dt: Second(50e-12),
            ..ArrayConfig::paper_default()
        };
        let array = CimArray::new(TwoTransistorOneFefet::paper_default(), config).unwrap();
        Crossbar::new(array, rows).unwrap()
    }

    #[test]
    fn matvec_computes_binary_products_row_wise() {
        let mut xbar = small_crossbar(3);
        xbar.program_row(0, &[true; 8]).unwrap();
        xbar.program_row(1, &[true, false, true, false, true, false, true, false])
            .unwrap();
        // Row 2 stays erased.
        let inputs = [true, true, true, true, false, false, false, false];
        let out = xbar.matvec(&inputs, ROOM).unwrap();
        assert_eq!(out.digital, vec![4, 2, 0]);
        assert!(out.energy.value() > 0.0);
        assert!(out.analog[0] > out.analog[1]);
    }

    #[test]
    fn matvec_is_temperature_stable() {
        let mut xbar = small_crossbar(2);
        xbar.program_row(0, &[true, true, true, false, false, true, true, true])
            .unwrap();
        xbar.program_row(1, &[false, false, true, true, true, false, false, false])
            .unwrap();
        let inputs = [true; 8];
        let reference = xbar.matvec(&inputs, ROOM).unwrap().digital;
        for t in [0.0, 55.0, 85.0] {
            let got = xbar.matvec(&inputs, Celsius(t)).unwrap().digital;
            assert_eq!(got, reference, "readout drifted at {t} C");
        }
        assert_eq!(reference, vec![6, 3]);
    }

    #[test]
    fn multilevel_weights_scale_the_analog_output() {
        let mut xbar = small_crossbar(3);
        let full = vec![CellWeight::Level { level: 3, max: 3 }; 8];
        let two_thirds = vec![CellWeight::Level { level: 2, max: 3 }; 8];
        let third = vec![CellWeight::Level { level: 1, max: 3 }; 8];
        xbar.program_row_levels(0, &full).unwrap();
        xbar.program_row_levels(1, &two_thirds).unwrap();
        xbar.program_row_levels(2, &third).unwrap();
        let out = xbar.matvec(&[true; 8], ROOM).unwrap();
        // Analog outputs must be strictly ordered by the stored level.
        assert!(
            out.analog[0] > out.analog[1] && out.analog[1] > out.analog[2],
            "levels not ordered: {:?}",
            out.analog
        );
    }

    #[test]
    fn matvec_batch_matches_per_call_matvec() {
        let mut xbar = small_crossbar(2);
        xbar.program_row(0, &[true, true, true, false, false, true, true, true])
            .unwrap();
        xbar.program_row(1, &[false, false, true, true, true, false, false, false])
            .unwrap();
        let inputs: Vec<Vec<bool>> = vec![
            vec![true; 8],
            vec![true, false, true, false, true, false, true, false],
            vec![true; 8], // duplicate of job 0
        ];
        let batch = xbar.matvec_batch(&inputs, ROOM).unwrap();
        for (x, got) in inputs.iter().zip(&batch) {
            assert_eq!(got, &xbar.matvec(x, ROOM).unwrap());
        }
        assert_eq!(batch[0], batch[2]);
        assert!(matches!(
            xbar.matvec_batch(&[vec![true; 3]], ROOM),
            Err(CimError::MismatchedOperands { .. })
        ));
    }

    #[test]
    fn fault_plan_perturbs_only_faulted_rows() {
        let mut xbar = small_crossbar(2);
        xbar.program_row(0, &[true; 8]).unwrap();
        xbar.program_row(1, &[true; 8]).unwrap();
        let clean = xbar.matvec(&[true; 8], ROOM).unwrap();
        let plan = FaultPlan::none(2, 8)
            .with_fault(1, 0, CellFault::StuckAtHvt)
            .unwrap()
            .with_fault(1, 1, CellFault::DeadWordline)
            .unwrap();
        let faulted = xbar.clone().with_fault_plan(plan).unwrap();
        assert_eq!(faulted.fault_plan().fault_count(), 2);
        let out = faulted.matvec(&[true; 8], ROOM).unwrap();
        // Row 0 is untouched; row 1 loses exactly the two killed products.
        assert_eq!(out.digital[0], clean.digital[0]);
        assert_eq!(out.digital[1], clean.digital[1] - 2);
        // The batched path (whose dedup key includes faults — rows 0 and
        // 1 store identical weights but may not collapse) agrees.
        let batch = faulted.matvec_batch(&[vec![true; 8]], ROOM).unwrap();
        assert_eq!(batch[0], out);
        // And the fault-tolerant path returns the identical clean result.
        let report = faulted
            .try_matvec_batch(&[vec![true; 8]], ROOM, &FailurePolicy::FailFast)
            .unwrap();
        assert!(report.is_clean());
        assert_eq!(report.results[0].as_ref().unwrap(), &out);
    }

    #[test]
    fn fault_plan_shape_is_checked() {
        let xbar = small_crossbar(2);
        assert!(matches!(
            xbar.clone().with_fault_plan(FaultPlan::none(3, 8)),
            Err(CimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            xbar.with_fault_plan(FaultPlan::none(2, 4)),
            Err(CimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn try_matvec_batch_isolates_bad_inputs() {
        let mut xbar = small_crossbar(2);
        xbar.program_row(0, &[true; 8]).unwrap();
        let inputs = vec![vec![true; 8], vec![true; 3], vec![false; 8]];
        let report = xbar
            .try_matvec_batch(
                &inputs,
                ROOM,
                &FailurePolicy::SkipAndReport { max_failures: 1 },
            )
            .unwrap();
        assert_eq!(report.failures, 1);
        assert!(matches!(
            report.results[1],
            Err(JobError::Failed(CimError::MismatchedOperands { .. }))
        ));
        assert_eq!(
            report.results[0].as_ref().unwrap(),
            &xbar.matvec(&inputs[0], ROOM).unwrap()
        );
        assert_eq!(
            report.results[2].as_ref().unwrap(),
            &xbar.matvec(&inputs[2], ROOM).unwrap()
        );
        assert!(matches!(
            xbar.try_matvec_batch(&inputs, ROOM, &FailurePolicy::FailFast),
            Err(FanOutError::Job { index: 1, .. })
        ));
    }

    #[test]
    fn dimension_errors_are_typed() {
        let mut xbar = small_crossbar(1);
        assert!(matches!(
            xbar.program_row(0, &[true; 3]),
            Err(CimError::MismatchedOperands { .. })
        ));
        assert!(matches!(
            xbar.matvec(&[true; 5], ROOM),
            Err(CimError::MismatchedOperands { .. })
        ));
        let config = ArrayConfig::paper_default();
        let array = CimArray::new(TwoTransistorOneFefet::paper_default(), config).unwrap();
        assert!(matches!(
            Crossbar::new(array, 0),
            Err(CimError::InvalidConfig { .. })
        ));
    }
}
