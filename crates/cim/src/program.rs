//! Write-verify programming: closing the loop on device variation.
//!
//! The paper's Fig. 9 accepts the raw `σ_VT = 54 mV` device-to-device
//! spread; its reference \[9\] (SWIM, DAC'22) shows that a few
//! program-verify iterations on the cells that matter recovers most of
//! the induced error. This module implements that scheme for the
//! simulated cells: after programming, the cell's read current is
//! compared against the nominal target, and trim pulses adjust the
//! FeFET polarization until the output falls inside a tolerance band
//! (or the iteration budget runs out).
//!
//! The verify loop operates on the *cell output current* — the
//! externally observable quantity a real peripheral verify circuit
//! senses — so it corrects the aggregate effect of all three device
//! offsets, not just the FeFET's.

use crate::cells::{CellDesign, CellOffsets, CellWeight};
use crate::CimError;
use ferrocim_units::{Celsius, Volt};
use serde::{Deserialize, Serialize};

/// Configuration of the write-verify loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WriteVerifyConfig {
    /// Relative tolerance on the cell read current (e.g. 0.05 = ±5 %).
    pub tolerance: f64,
    /// Maximum verify iterations per cell.
    pub max_iterations: usize,
    /// Verify temperature (the trim condition; 27 °C in practice).
    pub temp: Celsius,
    /// Polarization trim step per iteration (fraction of full scale).
    pub trim_step: f64,
}

impl Default for WriteVerifyConfig {
    fn default() -> Self {
        WriteVerifyConfig {
            tolerance: 0.05,
            max_iterations: 8,
            temp: Celsius::ROOM,
            trim_step: 0.05,
        }
    }
}

/// The outcome of write-verifying one cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerifyOutcome {
    /// The trimmed equivalent threshold offset: the verify loop's
    /// polarization trim expressed as the residual `V_TH` offset the
    /// array simulation should use for this cell.
    pub residual_offset: Volt,
    /// Iterations spent.
    pub iterations: usize,
    /// Whether the cell converged inside the tolerance band.
    pub converged: bool,
}

/// Write-verifies one '1'-storing cell: measures its read current under
/// its variation offsets and trims an equivalent threshold correction
/// until the output is within `tolerance` of the nominal cell.
///
/// Returns the residual per-cell offsets to use in array simulations
/// (the FeFET offset is reduced by the trim; M1/M2 offsets are
/// untouchable by programming and pass through).
///
/// # Errors
///
/// Propagates circuit-simulation failures.
pub fn write_verify<C: CellDesign>(
    cell: &C,
    offsets: &CellOffsets,
    config: &WriteVerifyConfig,
) -> Result<(CellOffsets, VerifyOutcome), CimError> {
    let target = cell
        .read_current(true, true, config.temp, &CellOffsets::NOMINAL)?
        .value();
    // The trimmable quantity: the FeFET's programmed polarization,
    // equivalent to shifting its threshold inside the memory window.
    // We express the trim directly as a threshold correction.
    let mut trimmed = *offsets;
    let mut iterations = 0;
    let mut converged = false;
    // Full-scale trim range: the polarization step maps to a threshold
    // step of (memory window / 2) · trim_step ≈ tens of mV.
    let trim_volt = 0.65 * config.trim_step; // half-window of the paper FeFET
    while iterations < config.max_iterations {
        let measured = cell
            .read_current(true, true, config.temp, &trimmed)?
            .value();
        let error = measured / target - 1.0;
        if error.abs() <= config.tolerance {
            converged = true;
            break;
        }
        iterations += 1;
        // Too much current → raise the threshold (trim toward erase).
        let step = trim_volt * error.signum();
        trimmed.fefet = Volt(trimmed.fefet.value() + step * error.abs().min(1.0));
    }
    let residual = Volt(trimmed.fefet.value() - offsets.fefet.value());
    Ok((
        trimmed,
        VerifyOutcome {
            residual_offset: residual,
            iterations,
            converged,
        },
    ))
}

/// Write-verifies a whole row of weights: '1' cells go through the
/// verify loop; '0' cells are left as-is (their off current is already
/// orders of magnitude below a level step).
///
/// # Errors
///
/// Propagates circuit-simulation failures.
pub fn write_verify_row<C: CellDesign>(
    cell: &C,
    weights: &[CellWeight],
    offsets: &[CellOffsets],
    config: &WriteVerifyConfig,
) -> Result<(Vec<CellOffsets>, Vec<VerifyOutcome>), CimError> {
    assert_eq!(weights.len(), offsets.len(), "row length mismatch");
    let mut out_offsets = Vec::with_capacity(offsets.len());
    let mut outcomes = Vec::with_capacity(offsets.len());
    for (w, o) in weights.iter().zip(offsets) {
        if w.bit() {
            let (trimmed, outcome) = write_verify(cell, o, config)?;
            out_offsets.push(trimmed);
            outcomes.push(outcome);
        } else {
            out_offsets.push(*o);
            outcomes.push(VerifyOutcome {
                residual_offset: Volt::ZERO,
                iterations: 0,
                converged: true,
            });
        }
    }
    Ok((out_offsets, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::TwoTransistorOneFefet;

    #[test]
    fn verify_trims_a_fast_cell_back_into_band() {
        let cell = TwoTransistorOneFefet::paper_default();
        let fast = CellOffsets {
            fefet: Volt(-0.054), // -1 sigma: conducts too strongly
            ..CellOffsets::NOMINAL
        };
        let config = WriteVerifyConfig::default();
        let before = cell
            .read_current(true, true, config.temp, &fast)
            .unwrap()
            .value();
        let target = cell
            .read_current(true, true, config.temp, &CellOffsets::NOMINAL)
            .unwrap()
            .value();
        assert!(
            (before / target - 1.0).abs() > config.tolerance,
            "precondition: the fast cell must start out of band"
        );
        let (trimmed, outcome) = write_verify(&cell, &fast, &config).unwrap();
        assert!(outcome.converged, "did not converge: {outcome:?}");
        let after = cell
            .read_current(true, true, config.temp, &trimmed)
            .unwrap()
            .value();
        assert!(
            (after / target - 1.0).abs() <= config.tolerance,
            "after trim: {after} vs target {target}"
        );
    }

    #[test]
    fn verify_leaves_nominal_cells_untouched() {
        let cell = TwoTransistorOneFefet::paper_default();
        let (trimmed, outcome) =
            write_verify(&cell, &CellOffsets::NOMINAL, &WriteVerifyConfig::default()).unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.iterations, 0);
        assert_eq!(trimmed.fefet, Volt::ZERO);
    }

    #[test]
    fn row_verify_skips_zero_weights() {
        let cell = TwoTransistorOneFefet::paper_default();
        let weights = [CellWeight::Bit(true), CellWeight::Bit(false)];
        let offsets = [
            CellOffsets {
                fefet: Volt(0.08),
                ..CellOffsets::NOMINAL
            },
            CellOffsets {
                fefet: Volt(0.08),
                ..CellOffsets::NOMINAL
            },
        ];
        let (trimmed, outcomes) =
            write_verify_row(&cell, &weights, &offsets, &WriteVerifyConfig::default()).unwrap();
        assert!(outcomes[0].iterations > 0, "the '1' cell is trimmed");
        assert_eq!(outcomes[1].iterations, 0, "the '0' cell is skipped");
        assert_eq!(trimmed[1].fefet, Volt(0.08), "offset untouched");
    }

    #[test]
    fn verify_reduces_current_spread_across_sigma_range() {
        let cell = TwoTransistorOneFefet::paper_default();
        let config = WriteVerifyConfig::default();
        let target = cell
            .read_current(true, true, config.temp, &CellOffsets::NOMINAL)
            .unwrap()
            .value();
        let mut worst_before = 0.0f64;
        let mut worst_after = 0.0f64;
        for mv in [-108.0, -54.0, 54.0, 108.0] {
            let offs = CellOffsets {
                fefet: Volt(mv * 1e-3),
                ..CellOffsets::NOMINAL
            };
            let before = cell
                .read_current(true, true, config.temp, &offs)
                .unwrap()
                .value();
            let (trimmed, _) = write_verify(&cell, &offs, &config).unwrap();
            let after = cell
                .read_current(true, true, config.temp, &trimmed)
                .unwrap()
                .value();
            worst_before = worst_before.max((before / target - 1.0).abs());
            worst_after = worst_after.max((after / target - 1.0).abs());
        }
        assert!(
            worst_after < 0.3 * worst_before,
            "verify must shrink the spread: {worst_before} -> {worst_after}"
        );
    }
}
