//! Device/cell fault injection for robustness experiments.
//!
//! Real FeFET arrays ship with defects: cells whose ferroelectric is
//! stuck in one polarization, word lines that never assert, devices
//! with open or shorted channels. A [`FaultPlan`] describes a set of
//! such faults over a `(rows × cells_per_row)` tile, deterministically
//! derived from a seed, and is applied by [`crate::CimArray`] /
//! [`crate::Crossbar`] when building or evaluating row netlists — so
//! accuracy-vs-fault-rate curves are a first-class experiment rather
//! than an ad-hoc patch of the weight matrix.

use crate::CimError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A single-cell hardware fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellFault {
    /// The FeFET is stuck in the low-`V_TH` state: the cell behaves as
    /// if it stored '1' regardless of what was programmed.
    StuckAtLvt,
    /// The FeFET is stuck in the high-`V_TH` state: the cell behaves as
    /// if it stored '0'.
    StuckAtHvt,
    /// The cell's word line never asserts: the input is always '0'.
    DeadWordline,
    /// The cell's devices are disconnected from the bit line: the cell
    /// output capacitor never charges.
    OpenDevice,
    /// A damaged device shorts the cell output to the bit line through
    /// a residual resistance: the output saturates high.
    ShortDevice,
}

impl CellFault {
    /// A short human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CellFault::StuckAtLvt => "stuck-at-LVT",
            CellFault::StuckAtHvt => "stuck-at-HVT",
            CellFault::DeadWordline => "dead-wordline",
            CellFault::OpenDevice => "open-device",
            CellFault::ShortDevice => "short-device",
        }
    }
}

/// The five fault kinds, in the order [`FaultPlan::random`] samples
/// them.
const FAULT_KINDS: [CellFault; 5] = [
    CellFault::StuckAtLvt,
    CellFault::StuckAtHvt,
    CellFault::DeadWordline,
    CellFault::OpenDevice,
    CellFault::ShortDevice,
];

/// A deterministic map of cell faults over a `(rows × cols)` tile.
///
/// Plans are value types: build one with [`FaultPlan::none`] /
/// [`FaultPlan::random`] / [`FaultPlan::with_fault`] and install it
/// into a [`crate::Crossbar`] (or a single-row [`crate::CimArray`] via
/// `with_faults`). Two plans with the same dimensions, seed, and rate
/// are identical — fault experiments reproduce bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    rows: usize,
    cols: usize,
    /// Sorted by `(row, col)`, one entry per faulted cell.
    faults: Vec<((usize, usize), CellFault)>,
}

impl FaultPlan {
    /// An empty (fault-free) plan for a `(rows × cols)` tile.
    pub fn none(rows: usize, cols: usize) -> FaultPlan {
        FaultPlan {
            rows,
            cols,
            faults: Vec::new(),
        }
    }

    /// Samples a plan where every cell independently faults with
    /// probability `rate`, the fault kind drawn uniformly from the five
    /// [`CellFault`] variants. Deterministic: the same `(rows, cols,
    /// rate, seed)` always produces the same plan, regardless of any
    /// other RNG activity in the process.
    ///
    /// # Errors
    ///
    /// [`CimError::InvalidConfig`] when `rate` is outside `[0, 1]`.
    pub fn random(rows: usize, cols: usize, rate: f64, seed: u64) -> Result<FaultPlan, CimError> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(CimError::InvalidConfig {
                name: "fault_rate",
                value: rate,
                requirement: "within [0, 1]",
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::none(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                // Draw both values unconditionally so the stream
                // position of cell (r, c) is independent of the rate.
                let hit = rng.random::<f64>() < rate;
                let kind = FAULT_KINDS[rng.random_range(0..FAULT_KINDS.len())];
                if hit {
                    // Iteration order is already sorted by (r, c).
                    plan.faults.push(((r, c), kind));
                }
            }
        }
        Ok(plan)
    }

    /// Adds (or overwrites) one fault at `(row, col)`.
    ///
    /// # Errors
    ///
    /// [`CimError::InvalidConfig`] when the coordinate is outside the
    /// plan's tile.
    pub fn with_fault(
        mut self,
        row: usize,
        col: usize,
        fault: CellFault,
    ) -> Result<Self, CimError> {
        if row >= self.rows || col >= self.cols {
            return Err(CimError::InvalidConfig {
                name: "fault_coordinate",
                value: if row >= self.rows {
                    row as f64
                } else {
                    col as f64
                },
                requirement: "within the plan's tile",
            });
        }
        match self.faults.binary_search_by_key(&(row, col), |&(k, _)| k) {
            Ok(i) => self.faults[i].1 = fault,
            Err(i) => self.faults.insert(i, ((row, col), fault)),
        }
        Ok(self)
    }

    /// The plan's row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The plan's column count (cells per row).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The fault at `(row, col)`, if any.
    pub fn fault_at(&self, row: usize, col: usize) -> Option<CellFault> {
        self.faults
            .binary_search_by_key(&(row, col), |&(k, _)| k)
            .ok()
            .map(|i| self.faults[i].1)
    }

    /// Total number of faulted cells.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// True when row `row` has at least one faulted cell.
    pub fn row_has_faults(&self, row: usize) -> bool {
        let start = self.faults.partition_point(|&((r, _), _)| r < row);
        self.faults.get(start).is_some_and(|&((r, _), _)| r == row)
    }

    /// The per-column fault vector of one row (length
    /// [`FaultPlan::cols`]), as consumed by `CimArray::with_faults`.
    pub fn row_faults(&self, row: usize) -> Vec<Option<CellFault>> {
        let mut out = vec![None; self.cols];
        let start = self.faults.partition_point(|&((r, _), _)| r < row);
        for &((r, c), fault) in &self.faults[start..] {
            if r != row {
                break;
            }
            out[c] = Some(fault);
        }
        out
    }

    /// Iterates over all faults as `((row, col), fault)` in `(row, col)`
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), CellFault)> + '_ {
        self.faults.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let a = FaultPlan::random(8, 8, 0.2, 42).unwrap();
        let b = FaultPlan::random(8, 8, 0.2, 42).unwrap();
        assert_eq!(a, b);
        let c = FaultPlan::random(8, 8, 0.2, 43).unwrap();
        assert_ne!(a, c, "different seeds should (generically) differ");
    }

    #[test]
    fn rate_bounds_are_enforced() {
        assert!(FaultPlan::random(4, 4, -0.1, 0).is_err());
        assert!(FaultPlan::random(4, 4, 1.5, 0).is_err());
        assert!(FaultPlan::random(4, 4, f64::NAN, 0).is_err());
        assert_eq!(FaultPlan::random(4, 4, 0.0, 0).unwrap().fault_count(), 0);
        assert_eq!(FaultPlan::random(4, 4, 1.0, 0).unwrap().fault_count(), 16);
    }

    #[test]
    fn row_queries_match_the_map() {
        let plan = FaultPlan::none(3, 4)
            .with_fault(1, 2, CellFault::OpenDevice)
            .unwrap()
            .with_fault(1, 0, CellFault::StuckAtLvt)
            .unwrap();
        assert!(!plan.row_has_faults(0));
        assert!(plan.row_has_faults(1));
        assert_eq!(
            plan.row_faults(1),
            vec![
                Some(CellFault::StuckAtLvt),
                None,
                Some(CellFault::OpenDevice),
                None
            ]
        );
        assert_eq!(plan.fault_at(1, 2), Some(CellFault::OpenDevice));
        assert_eq!(plan.fault_at(0, 0), None);
        assert_eq!(plan.fault_count(), 2);
    }

    #[test]
    fn out_of_tile_faults_are_rejected() {
        assert!(FaultPlan::none(2, 2)
            .with_fault(2, 0, CellFault::StuckAtHvt)
            .is_err());
        assert!(FaultPlan::none(2, 2)
            .with_fault(0, 2, CellFault::StuckAtHvt)
            .is_err());
    }
}
